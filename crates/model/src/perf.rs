//! The analytical performance model (§V-B).
//!
//! `IPC = #Insts × ActivityRatio`, where the activity ratio is limited
//! either by memory bandwidth or by dependences. The memory activity ratio
//! is the minimum over memories of bandwidth-supplied / bandwidth-requested;
//! the dependence ratio divides the chains that can hide a dependence by
//! its schedule-derived latency.

use std::collections::{BTreeMap, HashMap};

use dsagen_adg::{Adg, CtrlSpec, NodeId, NodeKind};
use dsagen_dfg::{CompiledKernel, CompiledRegion, Stream, StreamDir, StreamSource};
use dsagen_scheduler::{Evaluation, Problem, Schedule};

/// Tunables for the performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Clock frequency in GHz (the paper targets 1 GHz, §VII).
    pub clock_ghz: f64,
    /// Pipeline-fill cycles charged once per region execution.
    pub startup_cycles: f64,
    /// Barrier/fence cost between non-pipelined regions.
    pub barrier_cycles: f64,
    /// Cycles to load one configuration word (multiplied by the config-path
    /// length supplied per estimate).
    pub config_word_cycles: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            clock_ghz: 1.0,
            startup_cycles: 24.0,
            barrier_cycles: 64.0,
            config_word_cycles: 1.0,
        }
    }
}

/// Per-region performance breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPerf {
    /// Total cycles for the region's whole execution.
    pub cycles: f64,
    /// Compute-limited cycles (`instances × effective II`).
    pub compute_cycles: f64,
    /// The binding memory's cycles.
    pub memory_cycles: f64,
    /// Recurrence-limited cycles.
    pub recurrence_cycles: f64,
    /// Control-core cycles (scalar fallbacks + stream commands).
    pub ctrl_cycles: f64,
    /// Activity ratio actually achieved (≤ 1).
    pub activity: f64,
}

/// A kernel-level performance estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEstimate {
    /// Total cycles including barriers and configuration.
    pub cycles: f64,
    /// Per-region breakdown.
    pub regions: Vec<RegionPerf>,
    /// Aggregate instructions-per-cycle across the kernel.
    pub ipc: f64,
}

impl PerfEstimate {
    /// Execution time in microseconds at the model's clock.
    #[must_use]
    pub fn micros(&self, model: &PerfModel) -> f64 {
        self.cycles / (model.clock_ghz * 1000.0)
    }

    /// Throughput figure used in the DSE objective: instructions per cycle.
    #[must_use]
    pub fn perf(&self) -> f64 {
        self.ipc.max(1e-9)
    }
}

impl PerfModel {
    /// Estimates one scheduled kernel version on `adg`.
    ///
    /// `config_path_len` is the longest configuration path of the hardware
    /// (0 if unknown); it charges the §VI configuration time once.
    #[must_use]
    pub fn estimate(
        &self,
        adg: &Adg,
        kernel: &CompiledKernel,
        schedule: &Schedule,
        eval: &Evaluation,
        config_path_len: u32,
    ) -> PerfEstimate {
        let problem = Problem::new(adg, kernel);
        let stream_mems = schedule.stream_memories(&problem);
        let ctrl = control_spec(adg);

        let mut regions = Vec::with_capacity(kernel.regions.len());
        for (ri, region) in kernel.regions.iter().enumerate() {
            let reval = eval.regions.get(ri);
            let perf = self.region_perf(adg, region, ri, reval, &stream_mems, &ctrl);
            regions.push(perf);
        }

        // Pipelined neighbours overlap; barriers separate the rest.
        let mut cycles = self.config_word_cycles * f64::from(config_path_len);
        let mut i = 0;
        while i < kernel.regions.len() {
            let mut group_max = regions[i].cycles;
            let mut j = i;
            while j + 1 < kernel.regions.len() && kernel.regions[j].pipelined_with_next {
                j += 1;
                group_max = group_max.max(regions[j].cycles);
            }
            cycles += group_max + self.startup_cycles;
            if j + 1 < kernel.regions.len() {
                cycles += self.barrier_cycles;
            }
            i = j + 1;
        }

        let total_insts: f64 = kernel
            .regions
            .iter()
            .map(|r| r.dfg.inst_count() as f64 * r.instances)
            .sum();
        let ipc = if cycles > 0.0 { total_insts / cycles } else { 0.0 };
        PerfEstimate {
            cycles,
            regions,
            ipc,
        }
    }

    fn region_perf(
        &self,
        adg: &Adg,
        region: &CompiledRegion,
        ri: usize,
        reval: Option<&dsagen_scheduler::RegionEval>,
        stream_mems: &BTreeMap<(usize, bool, usize), NodeId>,
        ctrl: &CtrlSpec,
    ) -> RegionPerf {
        let instances = region.instances.max(1.0);

        // 1. Compute limit: effective initiation interval (multiplexing +
        //    unabsorbed operand mismatch, §III-B).
        let (max_ii, mismatch, rec_lats) = match reval {
            Some(r) => (
                r.max_ii,
                r.mismatch_excess,
                r.recurrence_latencies.clone(),
            ),
            None => (1.0, 0.0, region
                .dfg
                .recurrences()
                .iter()
                .map(|r| match region.dfg.op(r.through) {
                    dsagen_dfg::DfgOp::Accum { op, .. } => f64::from(op.latency()),
                    _ => 24.0,
                })
                .collect()),
        };
        let ii_eff = max_ii.max(1.0) + mismatch;
        let compute_cycles = instances * ii_eff;

        // 2. Memory limit: per memory, total request cycles.
        let mut mem_cycles: HashMap<NodeId, f64> = HashMap::new();
        for (is_input, s) in region
            .in_streams
            .iter()
            .map(|s| (true, s))
            .chain(region.out_streams.iter().map(|s| (false, s)))
        {
            if !matches!(s.source, StreamSource::Memory(_)) {
                continue;
            }
            let Some(mem) = stream_mems.get(&(ri, is_input, s.port)) else {
                continue;
            };
            let Ok(NodeKind::Memory(spec)) = adg.kind(*mem) else {
                continue;
            };
            *mem_cycles.entry(*mem).or_insert(0.0) += stream_cycles(s, spec);
        }
        let memory_cycles = mem_cycles.values().copied().fold(0.0, f64::max);

        // 3. Dependence limit: each recurrence forces `latency / chains`
        //    cycles per instance flowing through it (§V-B).
        let recurrence_cycles = region
            .dfg
            .recurrences()
            .iter()
            .zip(rec_lats.iter().chain(std::iter::repeat(&1.0)))
            .map(|(rec, lat)| instances * lat / rec.independent_chains.max(1.0))
            .fold(0.0, f64::max);

        // 4. Control-core limit: scalar fallbacks and stream commands.
        let ctrl_cycles = region.ctrl_ops * f64::from(ctrl.scalar_op_cycles)
            + region.stream_commands() as f64 * f64::from(ctrl.command_issue_cycles);

        let cycles = compute_cycles
            .max(memory_cycles)
            .max(recurrence_cycles)
            .max(ctrl_cycles)
            * region.exec_freq.max(1e-9);
        let activity = (instances / cycles.max(1e-9)).min(1.0);
        RegionPerf {
            cycles,
            compute_cycles,
            memory_cycles,
            recurrence_cycles,
            ctrl_cycles,
            activity,
        }
    }
}

/// Request cycles a stream costs its memory: linear streams coalesce into
/// line requests served one per cycle; indirect streams pay one request per
/// element, served in parallel across banks (SPU-style banking, §III-A).
fn stream_cycles(s: &Stream, spec: &dsagen_adg::MemSpec) -> f64 {
    let line = spec.width_bytes.max(1);
    if s.pattern.indirect || s.dir == StreamDir::AtomicUpdate {
        s.pattern.total_elems() / f64::from(spec.banks.max(1))
    } else if spec.controllers.coalescing && s.pattern.stride_bytes != 0 {
        // Coalescing controller (§III-C extension): strided requests to
        // the same line merge, so only distinct lines are fetched.
        (s.pattern.total_elems() * f64::from(s.elem_bytes) / f64::from(line)).ceil()
    } else {
        s.pattern.line_requests_lanes(line, s.elem_bytes, s.lanes)
    }
}

fn control_spec(adg: &Adg) -> CtrlSpec {
    adg.control()
        .and_then(|c| match adg.kind(c) {
            Ok(NodeKind::Control(spec)) => Some(*spec),
            _ => None,
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_scheduler::{schedule as run_scheduler, SchedulerConfig};

    use super::*;

    fn scheduled_dot(
        unroll: u16,
    ) -> (Adg, CompiledKernel, Schedule, Evaluation) {
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 4096, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 4096, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(4096), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck = compile_kernel(
            &kernel,
            &TransformConfig {
                unroll,
                ..TransformConfig::fallback()
            },
            &adg.features(),
        )
        .unwrap();
        let result = run_scheduler(&adg, &ck, &SchedulerConfig::default());
        assert!(result.is_legal());
        (adg, ck, result.schedule, result.eval)
    }

    #[test]
    fn dot_cycles_near_instances() {
        let (adg, ck, s, ev) = scheduled_dot(1);
        let est = PerfModel::default().estimate(&adg, &ck, &s, &ev, 0);
        // One instance per cycle plus startup ⇒ about 4096 cycles.
        assert!(est.cycles >= 4096.0);
        assert!(est.cycles < 4096.0 * 2.0, "cycles {}", est.cycles);
        assert!(est.ipc > 1.0);
    }

    #[test]
    fn unrolling_improves_dot() {
        let (adg1, ck1, s1, ev1) = scheduled_dot(1);
        let (adg4, ck4, s4, ev4) = scheduled_dot(4);
        let m = PerfModel::default();
        let e1 = m.estimate(&adg1, &ck1, &s1, &ev1, 0);
        let e4 = m.estimate(&adg4, &ck4, &s4, &ev4, 0);
        assert!(
            e4.cycles < e1.cycles / 2.0,
            "unroll-4 {} vs scalar {}",
            e4.cycles,
            e1.cycles
        );
    }

    #[test]
    fn fp_recurrence_limits_scalar_dot() {
        // FAdd accumulation has a 3-cycle recurrence; the scalar version is
        // recurrence-bound.
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("fdot");
        let a = k.array("a", BitWidth::B64, 1024, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(1024), true);
        let va = r.load(a, AffineExpr::var(i));
        let acc = r.reduce(Opcode::FAdd, va, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        let result = run_scheduler(&adg, &ck, &SchedulerConfig::default());
        let est = PerfModel::default().estimate(&adg, &ck, &result.schedule, &result.eval, 0);
        assert!(est.regions[0].recurrence_cycles >= 3.0 * 1024.0);
        assert!(est.cycles >= 3.0 * 1024.0);
    }

    #[test]
    fn scalar_fallback_is_ctrl_bound() {
        // Indirect gather without indirect hardware: control core does the
        // work, and the model must show it.
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("gather");
        let a = k.array("a", BitWidth::B64, 4096, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 1024, MemClass::MainMemory);
        let s = k.array("s", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(1024), true);
        let v = r.load_indirect(a, b, AffineExpr::var(i));
        let acc = r.reduce(Opcode::Add, v, i);
        r.store(s, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        let result = run_scheduler(&adg, &ck, &SchedulerConfig::default());
        let est = PerfModel::default().estimate(&adg, &ck, &result.schedule, &result.eval, 0);
        assert!(est.regions[0].ctrl_cycles >= 4.0 * 1024.0);
        assert_eq!(
            est.regions[0].cycles.max(est.regions[0].ctrl_cycles),
            est.regions[0].cycles
        );
    }

    #[test]
    fn config_path_length_adds_cycles() {
        let (adg, ck, s, ev) = scheduled_dot(1);
        let m = PerfModel::default();
        let short = m.estimate(&adg, &ck, &s, &ev, 0);
        let long = m.estimate(&adg, &ck, &s, &ev, 500);
        assert!(long.cycles > short.cycles + 400.0);
    }

    #[test]
    fn strided_stream_is_memory_bound() {
        // Column-major traversal: stride n elements → per-element requests.
        let adg = presets::softbrain();
        let n = 64u64;
        let mut k = KernelBuilder::new("colsum");
        let a = k.array("a", BitWidth::B64, n * n, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, n, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let j = r.for_loop(TripCount::fixed(n), false);
        // a[j*n + i] — innermost j strides by n.
        let v = r.load(
            a,
            AffineExpr::var(j).scaled(n as i64).plus(&AffineExpr::var(i)),
        );
        let acc = r.reduce(Opcode::Add, v, j);
        r.store(c, AffineExpr::var(i), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        let result = run_scheduler(&adg, &ck, &SchedulerConfig::default());
        let est = PerfModel::default().estimate(&adg, &ck, &result.schedule, &result.eval, 0);
        // 4096 elements, one line request each → ≥ 4096 memory cycles.
        assert!(est.regions[0].memory_cycles >= 4096.0);
    }
}
