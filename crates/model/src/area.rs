//! Power/area modeling (§V-C).
//!
//! The paper builds an analytical regression model from a dataset of
//! synthesized hardware modules (Synopsys DC, UMC 28 nm, 1 GHz) and uses it
//! inside the DSE, validating it against full-fabric synthesis (Fig 15).
//!
//! **Substitution** (see DESIGN.md): without an EDA flow, the "synthesis"
//! ground truth here is a synthetic component-level cost function with
//! realistic 28 nm magnitudes, mild nonlinearities, deterministic
//! pseudo-noise, and a whole-fabric timing-closure overhead. The regression
//! model is fitted to per-component samples of that ground truth — exactly
//! the paper's methodology — so the estimate-vs-synthesis gap (4–7%, from
//! the fabric-level overhead the per-component fit cannot see) is
//! reproduced by the same mechanism the paper reports.

use dsagen_adg::{Adg, NodeId, NodeKind, OpSet, Opcode};
use serde::{Deserialize, Serialize};

/// Number of features in a component's feature vector.
pub const N_FEATURES: usize = 14;

/// An area/power estimate in physical units.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HwCost {
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

impl HwCost {
    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: HwCost) -> HwCost {
        HwCost {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Scaled by a factor.
    #[must_use]
    pub fn scaled(self, k: f64) -> HwCost {
        HwCost {
            area_mm2: self.area_mm2 * k,
            power_mw: self.power_mw * k,
        }
    }
}

/// Feature vector of one hardware component, the regression model's input
/// (the paper samples "number of I/O links, data width, register file size
/// etc.", §V-C).
#[must_use]
pub fn component_features(adg: &Adg, id: NodeId) -> [f64; N_FEATURES] {
    let mut f = [0.0; N_FEATURES];
    f[0] = 1.0; // intercept
    let Ok(kind) = adg.kind(id) else { return f };
    let in_deg = adg.in_edges(id).count() as f64;
    let out_deg = adg.out_edges(id).count() as f64;
    match kind {
        NodeKind::Pe(pe) => {
            let w = f64::from(pe.bitwidth.bits()) / 64.0;
            let (alu, mul, div, fp) = fu_counts(pe.ops);
            f[1] = 1.0; // is-PE
            f[2] = w;
            f[3] = alu * w;
            f[4] = mul * w;
            f[5] = div * w;
            f[6] = fp * w;
            f[7] = if pe.scheduling.is_dynamic() {
                f64::from(pe.input_buffer_depth) * w
            } else {
                0.0
            };
            f[8] = f64::from(pe.sharing.instruction_slots());
            f[9] = if pe.decomposable { alu + mul } else { 0.0 };
            f[10] = in_deg + out_deg;
        }
        NodeKind::Switch(sw) => {
            let w = f64::from(sw.bitwidth.bits()) / 64.0;
            let lanes = f64::from(sw.lanes());
            f[11] = in_deg * out_deg * w * lanes.sqrt();
            f[10] = in_deg + out_deg;
            f[8] = f64::from(sw.sharing.instruction_slots());
        }
        NodeKind::Delay(d) => {
            f[12] = f64::from(d.depth) * f64::from(d.bitwidth.bytes());
        }
        NodeKind::Sync(sy) => {
            f[12] = sy.capacity_bytes() as f64;
            f[10] = in_deg + out_deg;
        }
        NodeKind::Memory(m) => {
            let kb = if m.kind == dsagen_adg::MemKind::MainMemory {
                0.0 // interface logic only; the L2 itself is not ours
            } else {
                m.capacity_bytes as f64 / 1024.0
            };
            f[13] = kb;
            f[10] = in_deg + out_deg;
            f[8] = f64::from(m.num_streams);
            f[9] = f64::from(m.banks)
                + if m.controllers.indirect { 8.0 } else { 0.0 }
                + if m.controllers.atomic_update {
                    2.0 * f64::from(m.banks)
                } else {
                    0.0
                }
                // Coalescing adds a request merge buffer per stream slot
                // (§III-C extension).
                + if m.controllers.coalescing {
                    4.0 + 0.5 * f64::from(m.num_streams)
                } else {
                    0.0
                };
        }
        NodeKind::Control(_) => {
            f[1] = 0.0;
            // The control core is a fixed block; modeled by the intercept
            // group below via a dedicated flag.
            f[2] = 64.0; // sentinel weight for the core
        }
    }
    f
}

/// Distinct functional-unit groups a PE's opcode set requires. Compound
/// multi-function FUs (§V-C) mean each *family* costs once, not each
/// opcode.
fn fu_counts(ops: OpSet) -> (f64, f64, f64, f64) {
    let alu = if !ops.intersection(OpSet::integer_alu()).is_empty() {
        1.0
    } else {
        0.0
    };
    let has_mul = ops.contains(Opcode::Mul) || ops.contains(Opcode::Mac);
    let has_div = ops.contains(Opcode::Div) || ops.contains(Opcode::Rem);
    let fp = if ops.has_floating_point() { 1.0 } else { 0.0 };
    (
        alu,
        if has_mul { 1.0 } else { 0.0 },
        if has_div { 1.0 } else { 0.0 },
        fp,
    )
}

/// The hidden "synthesis" cost of one component (area mm², power mW):
/// linear structure with realistic 28 nm magnitudes, plus mild
/// nonlinearities and ±3% deterministic noise — the stand-in for a
/// Synopsys DC run on the module.
#[must_use]
pub fn synthesize_component(adg: &Adg, id: NodeId) -> HwCost {
    let f = component_features(adg, id);
    let Ok(kind) = adg.kind(id) else {
        return HwCost::default();
    };
    if let NodeKind::Control(ctrl) = kind {
        // Fixed blocks: a RISC-V-class programmable core, or the far
        // cheaper FSM sequencer of §III-C.
        return if ctrl.is_programmable() {
            HwCost {
                area_mm2: 0.05,
                power_mw: 40.0,
            }
        } else {
            HwCost {
                area_mm2: 0.006,
                power_mw: 4.0,
            }
        };
    }
    // Secret "true" coefficients (per feature, area mm² / power mW).
    const AREA: [f64; N_FEATURES] = [
        0.0001, 0.0006, 0.0002, 0.0006, 0.0040, 0.0060, 0.0095, 0.0004, 0.00025, 0.0008, 0.00008,
        0.00035, 0.000012, 0.0009,
    ];
    const POWER: [f64; N_FEATURES] = [
        0.05, 0.3, 0.1, 0.25, 1.6, 1.8, 3.5, 0.22, 0.1, 0.3, 0.04, 0.18, 0.004, 0.35,
    ];
    let mut area = 0.0;
    let mut power = 0.0;
    for i in 0..N_FEATURES {
        area += AREA[i] * f[i];
        power += POWER[i] * f[i];
    }
    // Mild nonlinearity: crossbars grow slightly super-linearly.
    area += 0.00002 * f[11] * f[11].sqrt();
    power += 0.01 * f[11] * f[11].sqrt();
    // Deterministic pseudo-noise ±3% keyed on the feature vector.
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for v in f {
        h = h
            .rotate_left(13)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(v.to_bits());
    }
    let noise = 1.0 + 0.03 * (((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
    HwCost {
        area_mm2: (area * noise).max(0.0),
        power_mw: (power * noise).max(0.0),
    }
}

/// Whole-fabric timing-closure overhead: "extra structures are required to
/// meet timing for the whole fabric" beyond per-component synthesis
/// (§VIII-B Model Validation). This is why the regression estimate lands
/// 4–7% *below* synthesis.
pub const FABRIC_OVERHEAD: f64 = 0.055;

/// The "synthesis" result for a whole ADG: per-component ground truth plus
/// the fabric-level overhead.
#[must_use]
pub fn synthesize_adg(adg: &Adg) -> HwCost {
    let mut total = HwCost::default();
    for node in adg.nodes() {
        total = total.plus(synthesize_component(adg, node.id()));
    }
    total.scaled(1.0 + FABRIC_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;

    use super::*;

    #[test]
    fn softbrain_magnitudes_are_plausible() {
        let cost = synthesize_adg(&presets::softbrain());
        assert!(
            (0.1..5.0).contains(&cost.area_mm2),
            "area {}",
            cost.area_mm2
        );
        assert!(
            (50.0..1500.0).contains(&cost.power_mw),
            "power {}",
            cost.power_mw
        );
    }

    #[test]
    fn dynamic_fabric_costs_more_than_static() {
        // Same 4×4 geometry: SPU's dynamic PEs + banked indirect scratchpad
        // versus the all-static baseline.
        let static_mesh = synthesize_adg(&presets::baseline_4x4(false, false, false));
        let spu = synthesize_adg(&presets::spu());
        assert!(spu.area_mm2 > static_mesh.area_mm2);
        assert!(spu.power_mw > static_mesh.power_mw);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize_adg(&presets::revel());
        let b = synthesize_adg(&presets::revel());
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_components_cost_less() {
        let cca = synthesize_adg(&presets::cca());
        let soft = synthesize_adg(&presets::softbrain());
        assert!(cca.area_mm2 < soft.area_mm2);
    }

    #[test]
    fn control_core_is_fixed_block() {
        let adg = presets::softbrain();
        let ctrl = adg.control().unwrap();
        let c = synthesize_component(&adg, ctrl);
        assert_eq!(c.area_mm2, 0.05);
        assert_eq!(c.power_mw, 40.0);
    }

    #[test]
    fn feature_vector_shapes() {
        let adg = presets::spu();
        for node in adg.nodes() {
            let f = component_features(&adg, node.id());
            assert_eq!(f[0], 1.0);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }
}
