//! Least-squares fitting of the area/power regression model (§V-C: "a
//! dataset of all hardware modules with a sampling of possible parameters
//! … was synthesized to build the analytical model").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsagen_adg::{
    Adg, BitWidth, DelaySpec, MemControllers, MemSpec, NodeId, OpSet, PeSpec, Scheduling, Sharing,
    SwitchSpec, SyncSpec,
};

use crate::area::{component_features, synthesize_component, HwCost, N_FEATURES};

/// The fitted regression model: one coefficient vector for area, one for
/// power.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerModel {
    coef_area: [f64; N_FEATURES],
    coef_power: [f64; N_FEATURES],
}

impl AreaPowerModel {
    /// Fits the model on a sampled component dataset (deterministic for a
    /// given seed).
    #[must_use]
    pub fn fit(seed: u64) -> Self {
        let (xs, areas, powers) = sample_dataset(seed);
        AreaPowerModel {
            coef_area: least_squares(&xs, &areas),
            coef_power: least_squares(&xs, &powers),
        }
    }

    /// Estimated cost of one component.
    #[must_use]
    pub fn estimate_component(&self, adg: &Adg, id: NodeId) -> HwCost {
        if let Ok(dsagen_adg::NodeKind::Control(ctrl)) = adg.kind(id) {
            // Fixed blocks are carried over directly (not regressed).
            return if ctrl.is_programmable() {
                HwCost {
                    area_mm2: 0.05,
                    power_mw: 40.0,
                }
            } else {
                HwCost {
                    area_mm2: 0.006,
                    power_mw: 4.0,
                }
            };
        }
        let f = component_features(adg, id);
        let mut area = 0.0;
        let mut power = 0.0;
        for (i, fi) in f.iter().enumerate() {
            area += self.coef_area[i] * fi;
            power += self.coef_power[i] * fi;
        }
        HwCost {
            area_mm2: area.max(0.0),
            power_mw: power.max(0.0),
        }
    }

    /// Estimated cost of a whole ADG — the quick evaluation the DSE uses in
    /// place of synthesis (§V-C).
    #[must_use]
    pub fn estimate_adg(&self, adg: &Adg) -> HwCost {
        let mut total = HwCost::default();
        for node in adg.nodes() {
            total = total.plus(self.estimate_component(adg, node.id()));
        }
        total
    }

    /// Estimated cost split by component class (`"pe"`, `"switch"`,
    /// `"sync"`, `"delay"`, `"mem"`, `"ctrl"`) — where the area actually
    /// goes, for reports and the design-space tour.
    #[must_use]
    pub fn estimate_breakdown(
        &self,
        adg: &Adg,
    ) -> std::collections::BTreeMap<&'static str, HwCost> {
        let mut out: std::collections::BTreeMap<&'static str, HwCost> =
            std::collections::BTreeMap::new();
        for node in adg.nodes() {
            let cost = self.estimate_component(adg, node.id());
            let slot = out.entry(node.kind.kind_name()).or_default();
            *slot = slot.plus(cost);
        }
        out
    }
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        AreaPowerModel::fit(0xC0_FFEE)
    }
}

/// Builds one-component graphs across the parameter space and records
/// (features, synthesized area, synthesized power).
#[allow(clippy::type_complexity)]
fn sample_dataset(seed: u64) -> (Vec<[f64; N_FEATURES]>, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::new();
    let mut areas = Vec::new();
    let mut powers = Vec::new();

    let widths = [BitWidth::B16, BitWidth::B32, BitWidth::B64];
    let op_menus = [
        OpSet::integer_alu(),
        OpSet::integer_alu().union(OpSet::integer_mul()),
        OpSet::integer_alu().union(OpSet::floating_point()),
        OpSet::all(),
    ];

    let mut record = |adg: &Adg, id: NodeId| {
        let c = synthesize_component(adg, id);
        xs.push(component_features(adg, id));
        areas.push(c.area_mm2);
        powers.push(c.power_mw);
    };

    // PEs across scheduling × sharing × ops × width × fan.
    for &w in &widths {
        for ops in op_menus {
            for scheduling in [Scheduling::Static, Scheduling::Dynamic] {
                for slots in [1u8, 4, 8, 16] {
                    let sharing = if slots == 1 {
                        Sharing::Dedicated
                    } else {
                        Sharing::Shared {
                            max_instructions: slots,
                        }
                    };
                    let mut adg = Adg::new("sample");
                    let spec = PeSpec::new(scheduling, sharing, ops)
                        .with_bitwidth(w)
                        .with_decomposable(rng.gen_bool(0.5));
                    let pe = adg.add_pe(spec);
                    // Random fan-in/out so degree features vary.
                    for _ in 0..rng.gen_range(1..=4usize) {
                        let sw = adg.add_switch(SwitchSpec::new(w));
                        adg.add_link(sw, pe).unwrap();
                        adg.add_link(pe, sw).unwrap();
                    }
                    record(&adg, pe);
                }
            }
        }
    }
    // Switches across degree × width × decomposability.
    for &w in &widths {
        for degree in [2usize, 3, 4, 6, 8] {
            for decomp in [None, Some(BitWidth::B8)] {
                let mut adg = Adg::new("sample");
                let mut spec = SwitchSpec::new(w);
                if let Some(d) = decomp {
                    if d < w {
                        spec = spec.with_decompose_to(d);
                    }
                }
                let sw = adg.add_switch(spec);
                for _ in 0..degree {
                    let o = adg.add_switch(SwitchSpec::new(w));
                    adg.add_link(o, sw).unwrap();
                    adg.add_link(sw, o).unwrap();
                }
                record(&adg, sw);
            }
        }
    }
    // Sync and delay elements across depth × lanes.
    for depth in [2u16, 4, 8, 16, 32, 64] {
        for lanes in [1u8, 2, 4, 8] {
            let mut adg = Adg::new("sample");
            let sy = adg.add_sync(SyncSpec::new(depth).with_lanes(lanes));
            record(&adg, sy);
        }
        let mut adg = Adg::new("sample");
        let d = adg.add_delay(DelaySpec::new(depth.min(255) as u8));
        record(&adg, d);
    }
    // Memories across capacity × banks × controllers.
    for kb in [4u64, 8, 16, 32, 64] {
        for banks in [1u8, 2, 4, 8, 16] {
            for ctrl in [MemControllers::linear_only(), MemControllers::full()] {
                let mut adg = Adg::new("sample");
                let m = adg.add_memory(
                    MemSpec::scratchpad(kb << 10, 64)
                        .with_banks(banks)
                        .with_controllers(ctrl),
                );
                record(&adg, m);
            }
        }
    }

    (xs, areas, powers)
}

/// Ordinary least squares via normal equations + Gaussian elimination with
/// partial pivoting and ridge damping for stability.
fn least_squares(xs: &[[f64; N_FEATURES]], ys: &[f64]) -> [f64; N_FEATURES] {
    let n = N_FEATURES;
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut atb = vec![0.0f64; n];
    for (x, y) in xs.iter().zip(ys) {
        for i in 0..n {
            atb[i] += x[i] * y;
            for j in 0..n {
                ata[i][j] += x[i] * x[j];
            }
        }
    }
    // Ridge: keeps unused feature columns harmless.
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-9;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|a, b| {
                ata[*a][col]
                    .abs()
                    .partial_cmp(&ata[*b][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty range");
        ata.swap(col, pivot);
        atb.swap(col, pivot);
        let diag = ata[col][col];
        if diag.abs() < 1e-15 {
            continue;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = ata[row][col] / diag;
            let pivot_row = ata[col].clone();
            for (a, p) in ata[row][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *a -= factor * p;
            }
            atb[row] -= factor * atb[col];
        }
    }
    let mut out = [0.0; N_FEATURES];
    for i in 0..n {
        if ata[i][i].abs() > 1e-15 {
            out[i] = atb[i] / ata[i][i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;

    use super::*;
    use crate::area::synthesize_adg;

    #[test]
    fn fit_is_deterministic() {
        let a = AreaPowerModel::fit(7);
        let b = AreaPowerModel::fit(7);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_tracks_synthesis_within_10_percent() {
        let model = AreaPowerModel::default();
        for adg in [
            presets::softbrain(),
            presets::spu(),
            presets::triggered(),
            presets::revel(),
            presets::maeri(),
            presets::dse_initial(),
        ] {
            let est = model.estimate_adg(&adg);
            let syn = synthesize_adg(&adg);
            let area_err = (syn.area_mm2 - est.area_mm2) / syn.area_mm2;
            let power_err = (syn.power_mw - est.power_mw) / syn.power_mw;
            assert!(
                (0.0..0.12).contains(&area_err),
                "{}: est {:.4} syn {:.4} err {:.3}",
                adg.name(),
                est.area_mm2,
                syn.area_mm2,
                area_err
            );
            assert!(
                (-0.02..0.12).contains(&power_err),
                "{}: power err {:.3}",
                adg.name(),
                power_err
            );
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = AreaPowerModel::default();
        let adg = presets::spu();
        let total = model.estimate_adg(&adg);
        let parts = model.estimate_breakdown(&adg);
        let sum_area: f64 = parts.values().map(|c| c.area_mm2).sum();
        let sum_power: f64 = parts.values().map(|c| c.power_mw).sum();
        assert!((sum_area - total.area_mm2).abs() < 1e-9);
        assert!((sum_power - total.power_mw).abs() < 1e-9);
        assert!(parts.contains_key("pe") && parts.contains_key("switch"));
    }

    #[test]
    fn estimates_are_nonnegative_and_monotone_in_size() {
        let model = AreaPowerModel::default();
        let small = model.estimate_adg(&presets::cca());
        let big = model.estimate_adg(&presets::dse_initial());
        assert!(small.area_mm2 > 0.0);
        assert!(big.area_mm2 > small.area_mm2);
    }
}
