//! Technology-scaled reference points for prior accelerators (Fig 15's
//! "Scaled" bars).
//!
//! The paper compares DSE-generated hardware against numbers "obtained from
//! prior paper by technology scaling"; these constants mirror those
//! reference magnitudes (28 nm-equivalent mm² / mW). They are inputs to the
//! comparison, not something we synthesize.

use crate::HwCost;

/// Softbrain (ISCA 2017), scaled to 28 nm. The paper notes a discrepancy
/// between its estimate and this scaled figure, partly because Softbrain
/// "assumed delay structures could be eliminated by the compiler", which
/// later work found untrue (§VIII-B footnote).
#[must_use]
pub fn softbrain() -> HwCost {
    HwCost {
        area_mm2: 0.58,
        power_mw: 160.0,
    }
}

/// SPU (MICRO 2019), scaled to 28 nm.
#[must_use]
pub fn spu() -> HwCost {
    HwCost {
        area_mm2: 1.53,
        power_mw: 480.0,
    }
}

/// DianNao (ASPLOS 2014), scaled from 65 nm. A fixed-function DSA; the
/// paper reports DSAGEN_DenseNN at 2.4× its area and 2.6× its power —
/// overhead attributed to reconfigurability (§VIII-B).
#[must_use]
pub fn diannao() -> HwCost {
    HwCost {
        area_mm2: 0.42,
        power_mw: 120.0,
    }
}

/// SCNN (ISCA 2017), scaled to 28 nm; DSAGEN_SparseCNN lands at ~1.3× its
/// area and power.
#[must_use]
pub fn scnn() -> HwCost {
    HwCost {
        area_mm2: 0.75,
        power_mw: 230.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_points_are_positive_and_ordered() {
        // SPU is the biggest programmable design; DianNao the leanest DSA.
        assert!(spu().area_mm2 > softbrain().area_mm2);
        assert!(diannao().area_mm2 < softbrain().area_mm2);
        for c in [softbrain(), spu(), diannao(), scnn()] {
            assert!(c.area_mm2 > 0.0 && c.power_mw > 0.0);
        }
    }
}
