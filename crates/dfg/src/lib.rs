//! Decoupled-dataflow IR and modular compilation for DSAGEN (§IV).
//!
//! The compilation pipeline mirrors the paper's flow:
//!
//! 1. Kernels are written in a source-level IR ([`KernelBuilder`]) that
//!    corresponds to C annotated with `#pragma dsa config / decouple /
//!    offload` — loop nests over arrays with affine or indirect indices,
//!    merge-join loops, reductions, and predicated selects.
//! 2. [`enumerate_configs`] proposes [`TransformConfig`]s — combinations of
//!    the modular, hardware-gated transformations of §IV-E (vectorization
//!    degree, stream-join, indirect streams, atomic update) plus the
//!    generic §IV-D forwarding optimizations. A scalar fallback is always
//!    included so compilation cannot fail.
//! 3. [`compile_kernel`] lowers a kernel under one configuration into a
//!    [`CompiledKernel`]: per-region [`Stream`]s (the decoupled access
//!    half) and a [`Dfg`] (the compute half), plus control-core fallback
//!    costs and [`Requirements`] that gate which ADGs the version can map
//!    onto.
//!
//! The spatial scheduler (`dsagen-scheduler`) places the `Dfg` onto an ADG;
//! the performance model (`dsagen-model`) and simulator (`dsagen-sim`)
//! consume the streams and rate facts.
//!
//! # Example
//!
//! ```
//! use dsagen_adg::{presets, BitWidth, Opcode};
//! use dsagen_dfg::*;
//!
//! // acc += a[i] * b[i]
//! let mut k = KernelBuilder::new("dot");
//! let a = k.array("a", BitWidth::B64, 1024, MemClass::MainMemory);
//! let b = k.array("b", BitWidth::B64, 1024, MemClass::MainMemory);
//! let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
//! let mut r = k.region("body", 1.0);
//! let i = r.for_loop(TripCount::fixed(1024), true);
//! let va = r.load(a, AffineExpr::var(i));
//! let vb = r.load(b, AffineExpr::var(i));
//! let prod = r.bin(Opcode::Mul, va, vb);
//! let acc = r.reduce(Opcode::Add, prod, i);
//! r.store(c, AffineExpr::constant(0), acc);
//! k.finish_region(r);
//! let kernel = k.build()?;
//!
//! let adg = presets::softbrain();
//! let features = adg.features();
//! let mut viable = Vec::new();
//! for cfg in enumerate_configs(&kernel, &features, 8) {
//!     let version = compile_kernel(&kernel, &cfg, &features)?;
//!     if version.requires.satisfied_by(&features) {
//!         viable.push(version);
//!     }
//! }
//! // The scalar fallback always survives the requirements filter.
//! assert!(!viable.is_empty());
//! # Ok::<(), dsagen_dfg::DfgError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
#[allow(clippy::module_inception)]
mod dfg;
mod error;
mod expr;
pub mod interp;
mod source;
mod stream;
mod transform;

pub use compile::{compile_kernel, CompiledKernel, CompiledRegion};
pub use dfg::{Dfg, DfgOp, OpId, Recurrence};
pub use error::DfgError;
pub use expr::{AffineExpr, LoopVar, TripCount};
pub use source::{
    ArrayDecl, ArrayId, ExprId, Index, JoinSide, Kernel, KernelBuilder, Loop, LoopKind, MemClass,
    Region, RegionBuilder, SrcExpr, SrcStmt,
};
pub use stream::{Stream, StreamDir, StreamPattern, StreamSource};
pub use transform::{enumerate_configs, KernelIdioms, Requirements, TransformConfig};
