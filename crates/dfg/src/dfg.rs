//! The compiled dataflow graph: the compute half of a decoupled region.

use std::fmt;
use std::hash::{Hash, Hasher};

use dsagen_adg::{BitWidth, Opcode};
use serde::{Deserialize, Serialize};

/// Identifier of an operation within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One node of a compiled dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DfgOp {
    /// A value arriving from input port `port` (an in-stream).
    Input {
        /// Sync-element input port index.
        port: usize,
    },
    /// A compile-time constant.
    Const(i64),
    /// A compute operation mapped onto a PE.
    Compute {
        /// The operation.
        op: Opcode,
        /// Operand values, in operand order.
        ins: Vec<OpId>,
    },
    /// A loop-carried accumulation (`acc = acc ⊕ input`, reset every
    /// `reset_every` firings). Forms a recurrence whose latency the
    /// schedule determines (§V-B).
    Accum {
        /// Combining operation.
        op: Opcode,
        /// Accumulated value.
        input: OpId,
        /// Firings between resets (the reduced loop's trip count).
        reset_every: u64,
    },
    /// A stream-join: compares two sorted key streams and controls operand
    /// consumption — pops the lesser side, computes on matches (§IV-E,
    /// Fig 8c). Only dynamically-scheduled PEs with stream-join support can
    /// host this (§III-A).
    StreamJoin {
        /// Left key.
        left: OpId,
        /// Right key.
        right: OpId,
    },
    /// A value leaving through output port `port` (an out-stream).
    Output {
        /// Sync-element output port index.
        port: usize,
        /// The value sent out.
        input: OpId,
    },
}

impl DfgOp {
    /// Operand ids, in order.
    #[must_use]
    pub fn operands(&self) -> Vec<OpId> {
        match self {
            DfgOp::Input { .. } | DfgOp::Const(_) => Vec::new(),
            DfgOp::Compute { ins, .. } => ins.clone(),
            DfgOp::Accum { input, .. } => vec![*input],
            DfgOp::StreamJoin { left, right } => vec![*left, *right],
            DfgOp::Output { input, .. } => vec![*input],
        }
    }

    /// The opcode a PE must support to host this node, if it needs a PE.
    /// Inputs/outputs map to sync ports, not PEs.
    #[must_use]
    pub fn required_opcode(&self) -> Option<Opcode> {
        match self {
            DfgOp::Compute { op, .. } | DfgOp::Accum { op, .. } => Some(*op),
            // Joins perform a comparison; they additionally need the
            // stream-join capability flag.
            DfgOp::StreamJoin { .. } => Some(Opcode::CmpLt),
            DfgOp::Input { .. } | DfgOp::Const(_) | DfgOp::Output { .. } => None,
        }
    }

    /// Whether this node must be placed on a PE (as opposed to a port).
    #[must_use]
    pub fn needs_pe(&self) -> bool {
        self.required_opcode().is_some()
    }

    /// Pipeline latency of the node once placed (1 for non-compute nodes).
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.required_opcode().map_or(1, Opcode::latency)
    }
}

/// A loop-carried dependence recorded for the performance model: its
/// latency comes from the spatial schedule; its impact is divided by the
/// number of independent chains that can hide it (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recurrence {
    /// The node the dependence cycles through.
    pub through: OpId,
    /// Independent chains available to hide the dependence (e.g. parallel
    /// accumulators after unrolling, or interleaved outer iterations).
    pub independent_chains: f64,
}

/// A compiled dataflow graph.
///
/// Nodes are stored in topological order by construction (operands must
/// exist before their consumers), so iteration in id order is a valid
/// dataflow order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dfg {
    ops: Vec<(DfgOp, BitWidth)>,
    recurrences: Vec<Recurrence>,
}

impl Dfg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Dfg::default()
    }

    /// Appends a node; operands must already exist.
    ///
    /// # Panics
    ///
    /// Panics if an operand id is not yet in the graph (construction is
    /// topological by contract).
    pub fn push(&mut self, op: DfgOp, width: BitWidth) -> OpId {
        for operand in op.operands() {
            assert!(
                operand.0 < self.ops.len(),
                "operand {operand} not yet defined"
            );
        }
        self.ops.push((op, width));
        OpId(self.ops.len() - 1)
    }

    /// Records a loop-carried recurrence.
    pub fn add_recurrence(&mut self, rec: Recurrence) {
        self.recurrences.push(rec);
    }

    /// The node for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not minted by this graph.
    #[must_use]
    pub fn op(&self, id: OpId) -> &DfgOp {
        &self.ops[id.0].0
    }

    /// The width of a node's result.
    ///
    /// # Panics
    ///
    /// Panics if the id was not minted by this graph.
    #[must_use]
    pub fn width(&self, id: OpId) -> BitWidth {
        self.ops[id.0].1
    }

    /// Iterates over nodes in topological (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &DfgOp)> {
        self.ops.iter().enumerate().map(|(i, (op, _))| (OpId(i), op))
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Recorded recurrences.
    #[must_use]
    pub fn recurrences(&self) -> &[Recurrence] {
        &self.recurrences
    }

    /// Count of nodes that must occupy a PE.
    #[must_use]
    pub fn pe_op_count(&self) -> usize {
        self.iter().filter(|(_, op)| op.needs_pe()).count()
    }

    /// Count of instructions (PE ops) — the `#Insts` of the performance
    /// model's `IPC = #Insts × ActivityRatio` (§V-B).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.pe_op_count()
    }

    /// Whether the graph contains a stream-join node.
    #[must_use]
    pub fn has_stream_join(&self) -> bool {
        self.iter().any(|(_, op)| matches!(op, DfgOp::StreamJoin { .. }))
    }

    /// The consumers of each node (adjacency, one entry per use).
    #[must_use]
    pub fn consumers(&self) -> Vec<Vec<OpId>> {
        let mut out = vec![Vec::new(); self.ops.len()];
        for (id, op) in self.iter() {
            for operand in op.operands() {
                out[operand.0].push(id);
            }
        }
        out
    }

    /// The length (in nodes) of the longest input→output path, a proxy for
    /// pipeline depth.
    #[must_use]
    pub fn critical_path_len(&self) -> u32 {
        let mut depth = vec![0u32; self.ops.len()];
        for (id, op) in self.iter() {
            let in_depth = op
                .operands()
                .iter()
                .map(|o| depth[o.0])
                .max()
                .unwrap_or(0);
            depth[id.0] = in_depth + op.latency();
        }
        depth.iter().copied().max().unwrap_or(0)
    }

    /// Input ports referenced by the graph, ascending.
    #[must_use]
    pub fn input_ports(&self) -> Vec<usize> {
        let mut ports: Vec<usize> = self
            .iter()
            .filter_map(|(_, op)| match op {
                DfgOp::Input { port } => Some(*port),
                _ => None,
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    }

    /// Output ports referenced by the graph, ascending.
    #[must_use]
    pub fn output_ports(&self) -> Vec<usize> {
        let mut ports: Vec<usize> = self
            .iter()
            .filter_map(|(_, op)| match op {
                DfgOp::Output { port, .. } => Some(*port),
                _ => None,
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    }

    /// Feeds the graph's full content — every op (with an explicit variant
    /// tag), its width, and every recurrence — into `h` in id order.
    pub fn hash_content<H: Hasher>(&self, h: &mut H) {
        h.write_usize(self.ops.len());
        for (op, width) in &self.ops {
            op.hash_content(h);
            width.hash(h);
        }
        h.write_usize(self.recurrences.len());
        for rec in &self.recurrences {
            rec.through.hash(h);
            // f64 has no Hash; the bit pattern is the content.
            h.write_u64(rec.independent_chains.to_bits());
        }
    }

    /// A stable 64-bit content hash of the graph.
    ///
    /// Two graphs with the same ops (in the same topological id order),
    /// widths, and recurrences hash equal; any structural difference —
    /// an opcode, an operand id, a port, a constant, a width — changes the
    /// digest. Computed with [`dsagen_adg::StableHasher`], so the value is
    /// identical across runs and platforms and is safe as a memoization
    /// key (the DSE schedule cache keys on `(adg fingerprint, dfg hash)`).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = dsagen_adg::StableHasher::new();
        self.hash_content(&mut h);
        h.finish()
    }
}

impl DfgOp {
    /// Feeds this op's variant tag and fields into `h` — an explicit,
    /// stable encoding (independent of `#[derive(Hash)]` discriminant
    /// details) used by [`Dfg::content_hash`].
    pub fn hash_content<H: Hasher>(&self, h: &mut H) {
        match self {
            DfgOp::Input { port } => {
                h.write_u8(0);
                h.write_usize(*port);
            }
            DfgOp::Const(v) => {
                h.write_u8(1);
                h.write_i64(*v);
            }
            DfgOp::Compute { op, ins } => {
                h.write_u8(2);
                op.hash(h);
                h.write_usize(ins.len());
                for i in ins {
                    i.hash(h);
                }
            }
            DfgOp::Accum {
                op,
                input,
                reset_every,
            } => {
                h.write_u8(3);
                op.hash(h);
                input.hash(h);
                h.write_u64(*reset_every);
            }
            DfgOp::StreamJoin { left, right } => {
                h.write_u8(4);
                left.hash(h);
                right.hash(h);
            }
            DfgOp::Output { port, input } => {
                h.write_u8(5);
                h.write_usize(*port);
                input.hash(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac_graph() -> Dfg {
        let mut g = Dfg::new();
        let a = g.push(DfgOp::Input { port: 0 }, BitWidth::B64);
        let b = g.push(DfgOp::Input { port: 1 }, BitWidth::B64);
        let m = g.push(
            DfgOp::Compute {
                op: Opcode::Mul,
                ins: vec![a, b],
            },
            BitWidth::B64,
        );
        let acc = g.push(
            DfgOp::Accum {
                op: Opcode::Add,
                input: m,
                reset_every: 64,
            },
            BitWidth::B64,
        );
        g.add_recurrence(Recurrence {
            through: acc,
            independent_chains: 1.0,
        });
        g.push(DfgOp::Output { port: 0, input: acc }, BitWidth::B64);
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = mac_graph();
        assert_eq!(g.len(), 5);
        assert_eq!(g.pe_op_count(), 2);
        assert_eq!(g.inst_count(), 2);
        assert_eq!(g.recurrences().len(), 1);
        assert!(!g.has_stream_join());
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_references_panic() {
        let mut g = Dfg::new();
        g.push(
            DfgOp::Compute {
                op: Opcode::Not,
                ins: vec![OpId(7)],
            },
            BitWidth::B64,
        );
    }

    #[test]
    fn consumers_adjacency() {
        let g = mac_graph();
        let cons = g.consumers();
        assert_eq!(cons[0], vec![OpId(2)]);
        assert_eq!(cons[2], vec![OpId(3)]);
        assert_eq!(cons[3], vec![OpId(4)]);
        assert!(cons[4].is_empty());
    }

    #[test]
    fn critical_path_includes_latency() {
        let g = mac_graph();
        // input(1) → mul(3) → accum(1) → output(1) = 6
        assert_eq!(g.critical_path_len(), 6);
    }

    #[test]
    fn port_listing() {
        let g = mac_graph();
        assert_eq!(g.input_ports(), vec![0, 1]);
        assert_eq!(g.output_ports(), vec![0]);
    }

    #[test]
    fn stream_join_detection() {
        let mut g = Dfg::new();
        let a = g.push(DfgOp::Input { port: 0 }, BitWidth::B64);
        let b = g.push(DfgOp::Input { port: 1 }, BitWidth::B64);
        g.push(DfgOp::StreamJoin { left: a, right: b }, BitWidth::B64);
        assert!(g.has_stream_join());
        assert_eq!(g.op(OpId(2)).required_opcode(), Some(Opcode::CmpLt));
    }
}
