//! Affine index expressions over loop variables.
//!
//! The compiler's memory analysis (the LLVM-SCEV equivalent of §IV-C)
//! operates on these: an access `a[i*n + j]` is the affine expression
//! `n·i + 1·j`, from which per-loop strides — and hence stream patterns —
//! are read off directly.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A loop variable, identified by its depth in the enclosing loop nest
/// (0 = outermost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LoopVar(pub usize);

impl fmt::Display for LoopVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// An affine expression `c + Σ kᵥ·v` over loop variables, in element units.
///
/// # Example
///
/// ```
/// use dsagen_dfg::{AffineExpr, LoopVar};
///
/// // a[i*64 + j]
/// let idx = AffineExpr::var(LoopVar(0)).scaled(64).plus(&AffineExpr::var(LoopVar(1)));
/// assert_eq!(idx.stride_of(LoopVar(0)), 64);
/// assert_eq!(idx.stride_of(LoopVar(1)), 1);
/// assert_eq!(idx.eval(&[2, 5]), 133);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AffineExpr {
    constant: i64,
    /// Sorted by loop variable, at most one term per variable.
    terms: Vec<(LoopVar, i64)>,
}

impl AffineExpr {
    /// The constant expression `c`.
    #[must_use]
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            constant: c,
            terms: Vec::new(),
        }
    }

    /// The expression `1·v`.
    #[must_use]
    pub fn var(v: LoopVar) -> Self {
        AffineExpr {
            constant: 0,
            terms: vec![(v, 1)],
        }
    }

    /// The zero expression.
    #[must_use]
    pub fn zero() -> Self {
        AffineExpr::default()
    }

    /// This expression scaled by `k`.
    #[must_use]
    pub fn scaled(mut self, k: i64) -> Self {
        self.constant *= k;
        for (_, coef) in &mut self.terms {
            *coef *= k;
        }
        self.normalize();
        self
    }

    /// The sum of this expression and `other`.
    #[must_use]
    pub fn plus(mut self, other: &AffineExpr) -> Self {
        self.constant += other.constant;
        for (v, k) in &other.terms {
            match self.terms.iter_mut().find(|(w, _)| w == v) {
                Some((_, coef)) => *coef += k,
                None => self.terms.push((*v, *k)),
            }
        }
        self.normalize();
        self
    }

    /// This expression plus a constant.
    #[must_use]
    pub fn plus_const(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    fn normalize(&mut self) {
        self.terms.retain(|(_, k)| *k != 0);
        self.terms.sort_by_key(|(v, _)| *v);
    }

    /// The constant term.
    #[must_use]
    pub fn base(&self) -> i64 {
        self.constant
    }

    /// The coefficient of loop variable `v` (its element stride).
    #[must_use]
    pub fn stride_of(&self, v: LoopVar) -> i64 {
        self.terms
            .iter()
            .find(|(w, _)| *w == v)
            .map_or(0, |(_, k)| *k)
    }

    /// All variables with nonzero coefficients, outermost first.
    pub fn vars(&self) -> impl Iterator<Item = LoopVar> + '_ {
        self.terms.iter().map(|(v, _)| *v)
    }

    /// The deepest (innermost) loop variable the expression depends on.
    #[must_use]
    pub fn innermost_var(&self) -> Option<LoopVar> {
        self.terms.iter().map(|(v, _)| *v).max()
    }

    /// Whether the expression is invariant in every loop (constant).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// If `self` and `other` differ only in their constant term, returns
    /// `self.base() − other.base()`. Used by the compiler to group loads of
    /// the same array at small constant offsets (stencil/filter taps) into
    /// one sliding-window vector port.
    #[must_use]
    pub fn offset_from(&self, other: &AffineExpr) -> Option<i64> {
        if self.terms == other.terms {
            Some(self.constant - other.constant)
        } else {
            None
        }
    }

    /// Evaluates the expression for concrete loop-variable values
    /// (`values[d]` is the value of depth-`d` variable; missing depths
    /// evaluate as 0).
    #[must_use]
    pub fn eval(&self, values: &[i64]) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, k)| k * values.get(v.0).copied().unwrap_or(0))
                .sum::<i64>()
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if self.constant != 0 || self.terms.is_empty() {
            write!(f, "{}", self.constant)?;
            wrote = true;
        }
        for (v, k) in &self.terms {
            if wrote {
                write!(f, "+")?;
            }
            if *k == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{k}*{v}")?;
            }
            wrote = true;
        }
        Ok(())
    }
}

/// A (possibly outer-loop-dependent) trip count: `base + per_outer·outer`.
///
/// Inductive trip counts express the triangular iteration spaces of qr and
/// cholesky, which the linear memory controller's "inductive 2d streams"
/// support directly (§III-A "Memories").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TripCount {
    /// Iterations when the controlling outer variable is 0.
    pub base: i64,
    /// Change in iterations per unit of the controlling outer variable.
    pub per_outer: i64,
}

impl TripCount {
    /// A fixed trip count.
    #[must_use]
    pub fn fixed(n: u64) -> Self {
        TripCount {
            base: n as i64,
            per_outer: 0,
        }
    }

    /// An inductive trip count `base + per_outer·outer`.
    #[must_use]
    pub fn inductive(base: i64, per_outer: i64) -> Self {
        TripCount { base, per_outer }
    }

    /// Whether the trip count varies with an outer loop.
    #[must_use]
    pub fn is_inductive(&self) -> bool {
        self.per_outer != 0
    }

    /// Trip count for a concrete outer-variable value (clamped at 0).
    #[must_use]
    pub fn at(&self, outer: i64) -> u64 {
        (self.base + self.per_outer * outer).max(0) as u64
    }

    /// Average trip count over `outer_trip` outer iterations.
    #[must_use]
    pub fn average_over(&self, outer_trip: u64) -> f64 {
        if outer_trip == 0 {
            return 0.0;
        }
        let total: i64 = (0..outer_trip as i64)
            .map(|o| (self.base + self.per_outer * o).max(0))
            .sum();
        total as f64 / outer_trip as f64
    }

    /// Total iterations summed over `outer_trip` outer iterations.
    #[must_use]
    pub fn total_over(&self, outer_trip: u64) -> u64 {
        (0..outer_trip as i64)
            .map(|o| (self.base + self.per_outer * o).max(0) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        // n*i + j + 3 with n=8
        let e = AffineExpr::var(LoopVar(0))
            .scaled(8)
            .plus(&AffineExpr::var(LoopVar(1)))
            .plus_const(3);
        assert_eq!(e.base(), 3);
        assert_eq!(e.stride_of(LoopVar(0)), 8);
        assert_eq!(e.stride_of(LoopVar(1)), 1);
        assert_eq!(e.stride_of(LoopVar(2)), 0);
        assert_eq!(e.eval(&[1, 2]), 13);
    }

    #[test]
    fn zero_coefficients_vanish() {
        let e = AffineExpr::var(LoopVar(0)).plus(&AffineExpr::var(LoopVar(0)).scaled(-1));
        assert!(e.is_constant());
        assert_eq!(e.eval(&[100]), 0);
    }

    #[test]
    fn innermost_var_is_max_depth() {
        let e = AffineExpr::var(LoopVar(2)).plus(&AffineExpr::var(LoopVar(0)));
        assert_eq!(e.innermost_var(), Some(LoopVar(2)));
        assert_eq!(AffineExpr::constant(5).innermost_var(), None);
    }

    #[test]
    fn scaling_distributes() {
        let e = AffineExpr::var(LoopVar(0)).plus_const(2).scaled(3);
        assert_eq!(e.base(), 6);
        assert_eq!(e.stride_of(LoopVar(0)), 3);
    }

    #[test]
    fn display_readable() {
        let e = AffineExpr::var(LoopVar(0))
            .scaled(4)
            .plus(&AffineExpr::var(LoopVar(1)));
        assert_eq!(e.to_string(), "4*i0+i1");
        assert_eq!(AffineExpr::zero().to_string(), "0");
    }

    #[test]
    fn inductive_trip_counts() {
        // for (j = i; j < 32; ++j): trip = 32 - i
        let t = TripCount::inductive(32, -1);
        assert_eq!(t.at(0), 32);
        assert_eq!(t.at(31), 1);
        assert_eq!(t.at(40), 0);
        assert_eq!(t.total_over(32), (1..=32).sum::<u64>());
        assert!((t.average_over(32) - 16.5).abs() < 1e-9);
    }

    #[test]
    fn fixed_trip_counts() {
        let t = TripCount::fixed(10);
        assert!(!t.is_inductive());
        assert_eq!(t.at(5), 10);
        assert_eq!(t.total_over(3), 30);
    }
}
