//! Compiled memory streams: the decoupled access half of a region.
//!
//! After decoupling (§IV-C), every memory access in an offload region is a
//! coarse-grained *stream* — the compiler hoists address generation out of
//! the dataflow graph and encodes it as a pattern executed by a memory's
//! stream controller.

use serde::{Deserialize, Serialize};

use crate::MemClass;

/// Where a stream's data comes from or goes to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamSource {
    /// A decoupled memory (scratchpad or main-memory interface).
    Memory(MemClass),
    /// Forwarded on-fabric from another region's output port — the
    /// producer-consumer and repetitive-update optimizations (§IV-D).
    Forward {
        /// Producing region index within the kernel.
        from_region: usize,
        /// Producing output port within that region.
        from_port: usize,
    },
    /// Generated element-by-element by the control core — the scalar
    /// fallback path when a stream idiom is unsupported (§IV-C).
    ControlCore,
}

impl StreamSource {
    /// Whether the stream touches a memory at all.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, StreamSource::Memory(_))
    }
}

/// Direction and semantics of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamDir {
    /// Memory → fabric.
    Read,
    /// Fabric → memory.
    Write,
    /// Fabric → memory read-modify-write in the bank (atomic update,
    /// `a[b[i]] op= v`; requires the atomic-update controller).
    AtomicUpdate,
}

/// The address pattern of a stream, summarized for modeling and simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamPattern {
    /// Average elements delivered per issued stream command.
    pub elems_per_command: f64,
    /// Number of stream commands the control core issues over the whole
    /// region execution (outer loops that don't fold into the 2-D pattern
    /// each cost a command).
    pub commands: u64,
    /// Innermost stride in bytes; 0 means the same element repeats
    /// (loop-invariant operand), `elem_bytes` means contiguous.
    pub stride_bytes: i64,
    /// Whether the inner length varies with the outer loop (inductive 2-D
    /// pattern, e.g. triangular solvers).
    pub inductive: bool,
    /// Whether addresses come from an index stream (`a[b[i]]`).
    pub indirect: bool,
}

impl StreamPattern {
    /// A simple linear pattern: one command, `elems` elements, given stride.
    #[must_use]
    pub fn linear(elems: f64, stride_bytes: i64) -> Self {
        StreamPattern {
            elems_per_command: elems,
            commands: 1,
            stride_bytes,
            inductive: false,
            indirect: false,
        }
    }

    /// Total elements transferred over the region execution.
    #[must_use]
    pub fn total_elems(&self) -> f64 {
        self.elems_per_command * self.commands as f64
    }

    /// The number of memory-line requests needed to deliver the stream,
    /// given a line width and the stream's vector lane count. Contiguous
    /// streams coalesce into full lines; strided streams need one request
    /// per *lane group* (unrolled lanes fetch consecutive elements, so a
    /// group shares a request) — but never fewer than one per distinct
    /// line touched. Small non-unit strides thus still pay per group:
    /// exactly the fft pathology of §VIII-A ("the stride of data access
    /// becomes so small that the compiled version may generate too many
    /// requests to the same line").
    #[must_use]
    pub fn line_requests(&self, line_bytes: u32, elem_bytes: u32) -> f64 {
        self.line_requests_lanes(line_bytes, elem_bytes, 1)
    }

    /// [`StreamPattern::line_requests`] with an explicit lane-group size.
    #[must_use]
    pub fn line_requests_lanes(&self, line_bytes: u32, elem_bytes: u32, lanes: u16) -> f64 {
        let elems = self.total_elems();
        let group = f64::from(lanes.max(1));
        if self.indirect {
            return elems; // gather: one request per element
        }
        if self.stride_bytes == 0 {
            return self.commands as f64; // repeated element: one fill per command
        }
        if self.stride_bytes.unsigned_abs() as u32 == elem_bytes {
            // Contiguous: perfectly coalesced.
            (elems * f64::from(elem_bytes) / f64::from(line_bytes)).ceil()
        } else {
            // Strided: one request per lane group, the group's lanes being
            // consecutive elements (bounded below by full-line coalescing).
            let coalesced = elems * f64::from(elem_bytes) / f64::from(line_bytes);
            (elems / group).max(coalesced).ceil()
        }
    }
}

/// One compiled stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stream {
    /// The sync-element port this stream feeds (reads) or drains (writes).
    /// Index streams that feed the memory controller rather than the fabric
    /// have [`Stream::to_fabric`] `false` and a port of the paired stream.
    pub port: usize,
    /// Read, write, or atomic update.
    pub dir: StreamDir,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Vector lanes delivered per fabric firing (the unrolling degree).
    pub lanes: u16,
    /// The address pattern.
    pub pattern: StreamPattern,
    /// Data source/sink.
    pub source: StreamSource,
    /// Whether the stream's data enters the fabric (false for index
    /// streams consumed by an indirect controller).
    pub to_fabric: bool,
}

impl Stream {
    /// Total bytes moved by this stream.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.pattern.total_elems() * f64::from(self.elem_bytes)
    }

    /// Bytes needed per dataflow-graph firing.
    #[must_use]
    pub fn bytes_per_firing(&self) -> f64 {
        f64::from(self.lanes) * f64::from(self.elem_bytes)
    }

    /// Feeds the stream's full content into `h` with explicit variant tags
    /// and bit-exact floats — part of `CompiledKernel::content_hash`.
    pub fn hash_content<H: std::hash::Hasher>(&self, h: &mut H) {
        h.write_usize(self.port);
        h.write_u8(match self.dir {
            StreamDir::Read => 0,
            StreamDir::Write => 1,
            StreamDir::AtomicUpdate => 2,
        });
        h.write_u32(self.elem_bytes);
        h.write_u16(self.lanes);
        h.write_u64(self.pattern.elems_per_command.to_bits());
        h.write_u64(self.pattern.commands);
        h.write_i64(self.pattern.stride_bytes);
        h.write_u8(u8::from(self.pattern.inductive) | (u8::from(self.pattern.indirect) << 1));
        match self.source {
            StreamSource::Memory(MemClass::MainMemory) => h.write_u8(0),
            StreamSource::Memory(MemClass::Scratchpad) => h.write_u8(1),
            StreamSource::Forward {
                from_region,
                from_port,
            } => {
                h.write_u8(2);
                h.write_usize(from_region);
                h.write_usize(from_port);
            }
            StreamSource::ControlCore => h.write_u8(3),
        }
        h.write_u8(u8::from(self.to_fabric));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_pattern_totals() {
        let p = StreamPattern::linear(1024.0, 8);
        assert_eq!(p.total_elems(), 1024.0);
        assert_eq!(p.commands, 1);
    }

    #[test]
    fn contiguous_coalesces_into_lines() {
        let p = StreamPattern::linear(1024.0, 8);
        assert_eq!(p.line_requests(64, 8), 128.0);
    }

    #[test]
    fn strided_pays_per_element() {
        let p = StreamPattern::linear(1024.0, 512);
        assert_eq!(p.line_requests(64, 8), 1024.0);
        // Small non-unit stride also pays per element (fft pathology).
        let small = StreamPattern::linear(1024.0, 16);
        assert_eq!(small.line_requests(64, 8), 1024.0);
    }

    #[test]
    fn repeated_element_is_one_fill_per_command() {
        let mut p = StreamPattern::linear(1024.0, 0);
        p.commands = 4;
        p.elems_per_command = 256.0;
        assert_eq!(p.line_requests(64, 8), 4.0);
    }

    #[test]
    fn indirect_pays_per_element() {
        let mut p = StreamPattern::linear(100.0, 8);
        p.indirect = true;
        assert_eq!(p.line_requests(64, 8), 100.0);
    }

    #[test]
    fn stream_byte_accounting() {
        let s = Stream {
            port: 0,
            dir: StreamDir::Read,
            elem_bytes: 8,
            lanes: 4,
            pattern: StreamPattern::linear(256.0, 8),
            source: StreamSource::Memory(MemClass::MainMemory),
            to_fabric: true,
        };
        assert_eq!(s.total_bytes(), 2048.0);
        assert_eq!(s.bytes_per_firing(), 32.0);
    }
}
