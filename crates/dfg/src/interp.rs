//! Functional (value-level) interpreter for source kernels.
//!
//! Executes a [`Kernel`] exactly per the IR's semantics — loop nests,
//! affine/indirect accesses, reductions, predicated selects, merge joins,
//! in-place updates, and producer-consumer yields — over real data. The
//! timing simulator (`dsagen-sim`) answers *how fast*; this answers *what*,
//! and is used to validate that every evaluation workload computes what its
//! reference implementation computes.
//!
//! Statement firing semantics: a statement executes once per complete
//! iteration of the loops its index (and value) actually varies over — a
//! store indexed by `(i, j)` under an inner `k` reduction fires once per
//! `(i, j)`, reading the completed accumulation. [`SrcExpr::Consume`]
//! values are indexed by the consumer's outermost loop variable.
//!
//! # Example
//!
//! ```
//! use dsagen_adg::{BitWidth, Opcode};
//! use dsagen_dfg::{interp, AffineExpr, KernelBuilder, MemClass, TripCount};
//! use std::collections::BTreeMap;
//!
//! // acc += a[i] * b[i]
//! let mut k = KernelBuilder::new("dot");
//! let a = k.array("a", BitWidth::B64, 4, MemClass::MainMemory);
//! let b = k.array("b", BitWidth::B64, 4, MemClass::MainMemory);
//! let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
//! let mut r = k.region("body", 1.0);
//! let i = r.for_loop(TripCount::fixed(4), true);
//! let va = r.load(a, AffineExpr::var(i));
//! let vb = r.load(b, AffineExpr::var(i));
//! let p = r.bin(Opcode::FMul, va, vb);
//! let acc = r.reduce(Opcode::FAdd, p, i);
//! r.store(c, AffineExpr::constant(0), acc);
//! k.finish_region(r);
//! let kernel = k.build()?;
//!
//! let mut inputs = BTreeMap::new();
//! inputs.insert("a".to_string(), vec![1.0, 2.0, 3.0, 4.0]);
//! inputs.insert("b".to_string(), vec![10.0, 20.0, 30.0, 40.0]);
//! let out = interp::execute(&kernel, &inputs)?;
//! assert_eq!(out["c"][0], 300.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use dsagen_adg::Opcode;

use crate::{
    ArrayId, ExprId, Index, Kernel, LoopKind, LoopVar, Region, SrcExpr, SrcStmt,
};

/// A functional-execution failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// An access evaluated outside its array's declared bounds.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Evaluated index.
        index: i64,
        /// Declared length.
        len: u64,
    },
    /// A load inside a join loop referenced an array on neither side.
    JoinSideUnknown {
        /// Array name.
        array: String,
    },
    /// A consume ran out of yielded values.
    ConsumeUnderflow {
        /// Producing region index.
        region: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { array, index, len } => {
                write!(f, "access to '{array}[{index}]' outside length {len}")
            }
            ExecError::JoinSideUnknown { array } => {
                write!(f, "array '{array}' is indexed by the join variable but belongs to neither side")
            }
            ExecError::ConsumeUnderflow { region } => {
                write!(f, "consume exhausted the yields of region {region}")
            }
        }
    }
}

impl Error for ExecError {}

/// Executes `kernel` over `inputs` (arrays by declared name; missing arrays
/// start zeroed) and returns the final contents of every array.
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses, unknown join sides, or
/// consume/yield mismatches — all of which indicate a malformed kernel, so
/// this doubles as a semantic validator.
pub fn execute(
    kernel: &Kernel,
    inputs: &BTreeMap<String, Vec<f64>>,
) -> Result<BTreeMap<String, Vec<f64>>, ExecError> {
    let mut mem: Vec<Vec<f64>> = kernel
        .arrays
        .iter()
        .map(|decl| {
            let mut v = inputs.get(&decl.name).cloned().unwrap_or_default();
            v.resize(decl.len as usize, 0.0);
            v
        })
        .collect();
    let mut yields: Vec<Vec<Vec<f64>>> = Vec::with_capacity(kernel.regions.len());

    for region in &kernel.regions {
        let n_yields = region
            .stmts
            .iter()
            .filter(|s| matches!(s, SrcStmt::Yield { .. }))
            .count();
        let mut my_yields = vec![Vec::new(); n_yields];
        let mut exec = RegionExec {
            kernel,
            region,
            mem: &mut mem,
            yields: &yields,
            my_yields: &mut my_yields,
            acc: BTreeMap::new(),
            join: None,
        };
        exec.run()?;
        yields.push(my_yields);
    }

    Ok(kernel
        .arrays
        .iter()
        .zip(mem)
        .map(|(decl, data)| (decl.name.clone(), data))
        .collect())
}

/// Join-loop pointer state during one region execution.
struct JoinState {
    depth: usize,
    i0: i64,
    i1: i64,
}

struct RegionExec<'a> {
    kernel: &'a Kernel,
    region: &'a Region,
    mem: &'a mut Vec<Vec<f64>>,
    yields: &'a [Vec<Vec<f64>>],
    my_yields: &'a mut Vec<Vec<f64>>,
    /// Running accumulator per Reduce expression.
    acc: BTreeMap<usize, f64>,
    join: Option<JoinState>,
}

impl RegionExec<'_> {
    fn run(&mut self) -> Result<(), ExecError> {
        let depth = self.region.depth();
        self.walk(0, &mut vec![0i64; depth])
    }

    /// Recursively walks loop levels; at the innermost level evaluates the
    /// body and fires the statements whose rate boundary completes.
    fn walk(&mut self, level: usize, idx: &mut Vec<i64>) -> Result<(), ExecError> {
        if level == self.region.depth() {
            return self.body(idx);
        }
        // Entering loop `level`'s block: reducers over exactly this level
        // start a fresh accumulation.
        self.reset_accumulators(level);
        match self.region.loops[level].kind.clone() {
            LoopKind::For { trip } => {
                let outer = if level == 0 { 0 } else { idx[level - 1] };
                let count = trip.at(outer);
                for i in 0..count as i64 {
                    idx[level] = i;
                    self.walk(level + 1, idx)?;
                }
                // Zero-trip loops still need deeper statements skipped —
                // nothing to do, by construction.
                Ok(())
            }
            LoopKind::Join { a, b, .. } => {
                // Two-pointer sorted merge (§IV-E, Fig 8a).
                let ka = self.array_data(a.key)?.to_vec();
                let kb = self.array_data(b.key)?.to_vec();
                self.join = Some(JoinState {
                    depth: level,
                    i0: 0,
                    i1: 0,
                });
                let (la, lb) = (a.len.min(ka.len() as u64), b.len.min(kb.len() as u64));
                loop {
                    let js = self.join.as_ref().expect("join state set above");
                    let (i0, i1) = (js.i0, js.i1);
                    if i0 >= la as i64 || i1 >= lb as i64 {
                        break;
                    }
                    let (k0, k1) = (ka[i0 as usize], kb[i1 as usize]);
                    if k0 == k1 {
                        // Match: the body computes, both pointers advance.
                        idx[level] = i0;
                        self.walk(level + 1, idx)?;
                        let js = self.join.as_mut().expect("set");
                        js.i0 += 1;
                        js.i1 += 1;
                    } else if k0 < k1 {
                        self.join.as_mut().expect("set").i0 += 1;
                    } else {
                        self.join.as_mut().expect("set").i1 += 1;
                    }
                }
                self.join = None;
                // Join regions fire their post-loop statements once.
                Ok(())
            }
        }
    }

    /// Resets accumulators reducing over exactly `level` — called once when
    /// that loop's block begins (deeper reducers reset when their own loop
    /// block begins).
    fn reset_accumulators(&mut self, level: usize) {
        let ids: Vec<usize> = self
            .region
            .iter_exprs()
            .filter_map(|(id, e)| match e {
                SrcExpr::Reduce { level: l, .. } if l.0 == level => Some(id.0),
                _ => None,
            })
            .collect();
        for id in ids {
            self.acc.remove(&id);
        }
    }

    /// Evaluates the DAG once at the current index tuple, accumulates
    /// reductions, and fires boundary statements.
    fn body(&mut self, idx: &[i64]) -> Result<(), ExecError> {
        // Accumulate every reduction this iteration.
        let reduce_ids: Vec<(usize, Opcode, ExprId)> = self
            .region
            .iter_exprs()
            .filter_map(|(id, e)| match e {
                SrcExpr::Reduce { op, body, .. } => Some((id.0, *op, *body)),
                _ => None,
            })
            .collect();
        for (id, op, body) in reduce_ids {
            let v = self.eval(body, idx)?;
            let cur = self.acc.get(&id).copied();
            let next = match cur {
                None => v,
                Some(c) => match op {
                    Opcode::Add | Opcode::FAdd => c + v,
                    Opcode::Mul | Opcode::FMul => c * v,
                    Opcode::Min | Opcode::FMin => c.min(v),
                    Opcode::Max | Opcode::FMax => c.max(v),
                    other => other.eval_scalar(&match other.arity() {
                        2 => vec![c, v],
                        _ => vec![c],
                    }),
                },
            };
            self.acc.insert(id, next);
        }

        // Fire statements whose rate boundary completes here. All values
        // and addresses are evaluated against the *pre-iteration* memory
        // state (streams are hoisted; a store in this firing is not
        // visible to this firing's loads), then the writes land together.
        let stmts = self.region.stmts.clone();
        let mut writes: Vec<(usize, usize, f64)> = Vec::new();
        let mut yield_cursor = 0usize;
        for stmt in &stmts {
            let stmt_level = self.stmt_level(stmt);
            let fires = self.deeper_loops_complete(stmt_level, idx);
            match stmt {
                SrcStmt::Store { array, index, value } => {
                    if fires {
                        let v = self.eval(*value, idx)?;
                        let at = self.resolve(*array, index, idx)?;
                        writes.push((array.0, at, v));
                    }
                }
                SrcStmt::Update { array, index, op, value } => {
                    if fires {
                        let v = self.eval(*value, idx)?;
                        let at = self.resolve(*array, index, idx)?;
                        let old = self.mem[array.0][at];
                        let new = match op {
                            Opcode::Add | Opcode::FAdd => old + v,
                            Opcode::Sub | Opcode::FSub => old - v,
                            other => other.eval_scalar(&[old, v]),
                        };
                        writes.push((array.0, at, new));
                    }
                }
                SrcStmt::Yield { value } => {
                    if fires {
                        let v = self.eval(*value, idx)?;
                        self.my_yields[yield_cursor].push(v);
                    }
                    yield_cursor += 1;
                }
            }
        }
        for (array, at, v) in writes {
            self.mem[array][at] = v;
        }
        Ok(())
    }

    /// The deepest loop a statement's effect varies over.
    fn stmt_level(&self, stmt: &SrcStmt) -> usize {
        let expr_level = |id: ExprId| self.region.rate_level(id).map_or(0, |v| v.0);
        match stmt {
            SrcStmt::Store { index, value, .. } | SrcStmt::Update { index, value, .. } => {
                let idx_level = index
                    .driving_expr()
                    .innermost_var()
                    .map_or(0, |v| v.0);
                idx_level.max(expr_level(*value))
            }
            SrcStmt::Yield { value } => expr_level(*value),
        }
    }

    /// Whether every loop deeper than `level` is at its final iteration —
    /// the statement's rate boundary.
    fn deeper_loops_complete(&self, level: usize, idx: &[i64]) -> bool {
        for d in (level + 1)..self.region.depth() {
            match &self.region.loops[d].kind {
                LoopKind::For { trip } => {
                    let outer = if d == 0 { 0 } else { idx[d - 1] };
                    if idx[d] + 1 < trip.at(outer) as i64 {
                        return false;
                    }
                }
                // A join loop at a deeper level: its statements fire per
                // match; treat any iteration as boundary.
                LoopKind::Join { .. } => {}
            }
        }
        true
    }

    fn array_data(&self, id: ArrayId) -> Result<&[f64], ExecError> {
        Ok(&self.mem[id.0])
    }

    /// Resolves an index to a bounds-checked element offset.
    fn resolve(&self, array: ArrayId, index: &Index, idx: &[i64]) -> Result<usize, ExecError> {
        let decl = self.kernel.array(array);
        let at = match index {
            Index::Affine(e) => self.join_aware_eval(array, e, idx)?,
            Index::Indirect {
                index_array,
                index_expr,
            } => {
                let pos = self.join_aware_eval(*index_array, index_expr, idx)?;
                let inner = self.kernel.array(*index_array);
                let pos_checked = check(pos, inner.len, &inner.name)?;
                self.mem[index_array.0][pos_checked] as i64
            }
        };
        check(at, decl.len, &decl.name)
    }

    /// Evaluates an affine index, substituting join pointers for the join
    /// variable based on which side `array` belongs to.
    fn join_aware_eval(
        &self,
        array: ArrayId,
        e: &crate::AffineExpr,
        idx: &[i64],
    ) -> Result<i64, ExecError> {
        let Some(js) = &self.join else {
            return Ok(e.eval(idx));
        };
        let jvar = LoopVar(js.depth);
        if e.stride_of(jvar) == 0 {
            return Ok(e.eval(idx));
        }
        // Which side does the array belong to?
        let Some((_, LoopKind::Join { a, b, .. })) = self.region.join_loop() else {
            return Ok(e.eval(idx));
        };
        let ptr = if a.key == array || a.payloads.contains(&array) {
            js.i0
        } else if b.key == array || b.payloads.contains(&array) {
            js.i1
        } else {
            return Err(ExecError::JoinSideUnknown {
                array: self.kernel.array(array).name.clone(),
            });
        };
        let mut vals = idx.to_vec();
        vals[js.depth] = ptr;
        Ok(e.eval(&vals))
    }

    fn eval(&mut self, id: ExprId, idx: &[i64]) -> Result<f64, ExecError> {
        match self.region.expr(id).clone() {
            SrcExpr::Load { array, index } => {
                let at = self.resolve(array, &index, idx)?;
                Ok(self.mem[array.0][at])
            }
            SrcExpr::Imm(v) => Ok(v as f64),
            SrcExpr::Un { op, a } => {
                let x = self.eval(a, idx)?;
                Ok(op.eval_scalar(&[x]))
            }
            SrcExpr::Bin { op, a, b } => {
                let x = self.eval(a, idx)?;
                let y = self.eval(b, idx)?;
                Ok(op.eval_scalar(&[x, y]))
            }
            SrcExpr::Mux { cond, t, f } => {
                let c = self.eval(cond, idx)?;
                if c != 0.0 {
                    self.eval(t, idx)
                } else {
                    self.eval(f, idx)
                }
            }
            SrcExpr::Reduce { .. } => Ok(self.acc.get(&id.0).copied().unwrap_or(0.0)),
            SrcExpr::Consume { region, yield_idx } => {
                let k = idx.first().copied().unwrap_or(0) as usize;
                self.yields
                    .get(region)
                    .and_then(|r| r.get(yield_idx))
                    .and_then(|vals| vals.get(k))
                    .copied()
                    .ok_or(ExecError::ConsumeUnderflow { region })
            }
        }
    }
}

fn check(at: i64, len: u64, name: &str) -> Result<usize, ExecError> {
    if at < 0 || at as u64 >= len {
        return Err(ExecError::OutOfBounds {
            array: name.to_string(),
            index: at,
            len,
        });
    }
    Ok(at as usize)
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{BitWidth, Opcode};

    use super::*;
    use crate::{AffineExpr, JoinSide, KernelBuilder, MemClass, TripCount};

    fn run(kernel: &Kernel, inputs: &[(&str, Vec<f64>)]) -> BTreeMap<String, Vec<f64>> {
        let map: BTreeMap<String, Vec<f64>> = inputs
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect();
        execute(kernel, &map).expect("executes")
    }

    #[test]
    fn axpy_semantics() {
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 4, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 4, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(4), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let two = r.imm(2);
        let m = r.bin(Opcode::FMul, va, two);
        let s = r.bin(Opcode::FAdd, m, vb);
        r.store(b, AffineExpr::var(i), s);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let out = run(
            &kernel,
            &[("a", vec![1.0, 2.0, 3.0, 4.0]), ("b", vec![10.0; 4])],
        );
        assert_eq!(out["b"], vec![12.0, 14.0, 16.0, 18.0]);
    }

    #[test]
    fn nested_reduction_fires_store_at_outer_rate() {
        // c[i] = Σ_j a[i*3 + j]
        let mut k = KernelBuilder::new("rowsum");
        let a = k.array("a", BitWidth::B64, 6, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 2, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(2), false);
        let j = r.for_loop(TripCount::fixed(3), false);
        let v = r.load(a, AffineExpr::var(i).scaled(3).plus(&AffineExpr::var(j)));
        let s = r.reduce(Opcode::FAdd, v, j);
        r.store(c, AffineExpr::var(i), s);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let out = run(&kernel, &[("a", vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0])]);
        assert_eq!(out["c"], vec![6.0, 60.0]);
    }

    #[test]
    fn mux_predication() {
        // b[i] = a[i] < 3 ? a[i] : 0
        let mut k = KernelBuilder::new("clip");
        let a = k.array("a", BitWidth::B64, 4, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 4, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(4), true);
        let v = r.load(a, AffineExpr::var(i));
        let three = r.imm(3);
        let zero = r.imm(0);
        let c = r.bin(Opcode::CmpLt, v, three);
        let sel = r.mux(c, v, zero);
        r.store(b, AffineExpr::var(i), sel);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let out = run(&kernel, &[("a", vec![1.0, 5.0, 2.0, 9.0])]);
        assert_eq!(out["b"], vec![1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn indirect_histogram() {
        let mut k = KernelBuilder::new("hist");
        let h = k.array("h", BitWidth::B64, 4, MemClass::Scratchpad);
        let s = k.array("s", BitWidth::B64, 6, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(6), true);
        let one = r.imm(1);
        r.update_indirect(h, s, AffineExpr::var(i), Opcode::Add, one);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let out = run(&kernel, &[("s", vec![0.0, 1.0, 1.0, 3.0, 3.0, 3.0])]);
        assert_eq!(out["h"], vec![1.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn sorted_merge_join() {
        // Matched keys: 2, 5 → Σ v0*v1 at matches.
        let mut k = KernelBuilder::new("join");
        let k0 = k.array("k0", BitWidth::B64, 4, MemClass::MainMemory);
        let v0 = k.array("v0", BitWidth::B64, 4, MemClass::MainMemory);
        let k1 = k.array("k1", BitWidth::B64, 4, MemClass::MainMemory);
        let v1 = k.array("v1", BitWidth::B64, 4, MemClass::MainMemory);
        let out = k.array("out", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("merge", 1.0);
        let j = r.join_loop(
            JoinSide { key: k0, payloads: vec![v0], len: 4 },
            JoinSide { key: k1, payloads: vec![v1], len: 4 },
            0.5,
        );
        let a = r.load(v0, AffineExpr::var(j));
        let b = r.load(v1, AffineExpr::var(j));
        let p = r.bin(Opcode::FMul, a, b);
        let acc = r.reduce(Opcode::FAdd, p, j);
        r.store(out, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let result = run(
            &kernel,
            &[
                ("k0", vec![1.0, 2.0, 5.0, 7.0]),
                ("v0", vec![10.0, 20.0, 30.0, 40.0]),
                ("k1", vec![2.0, 3.0, 5.0, 9.0]),
                ("v1", vec![1.0, 2.0, 3.0, 4.0]),
            ],
        );
        // matches: key 2 → 20*1; key 5 → 30*3 → total 110.
        assert_eq!(result["out"], vec![110.0]);
    }

    #[test]
    fn producer_consumer_yields() {
        // Region 0 yields Σ_j a[i*2+j] per i; region 1 stores v*10 per i.
        let mut k = KernelBuilder::new("pc");
        let a = k.array("a", BitWidth::B64, 4, MemClass::MainMemory);
        let d = k.array("d", BitWidth::B64, 2, MemClass::MainMemory);
        let mut r0 = k.region("produce", 1.0);
        let i0 = r0.for_loop(TripCount::fixed(2), false);
        let j0 = r0.for_loop(TripCount::fixed(2), false);
        let v = r0.load(a, AffineExpr::var(i0).scaled(2).plus(&AffineExpr::var(j0)));
        let s = r0.reduce(Opcode::FAdd, v, j0);
        r0.yield_value(s);
        let r0i = k.finish_region(r0);
        let mut r1 = k.region("consume", 1.0);
        let i1 = r1.for_loop(TripCount::fixed(2), false);
        let c = r1.consume(r0i, 0);
        let ten = r1.imm(10);
        let m = r1.bin(Opcode::FMul, c, ten);
        r1.store(d, AffineExpr::var(i1), m);
        k.finish_region(r1);
        let kernel = k.build().unwrap();
        let out = run(&kernel, &[("a", vec![1.0, 2.0, 3.0, 4.0])]);
        assert_eq!(out["d"], vec![30.0, 70.0]);
    }

    #[test]
    fn inductive_triangular_loops() {
        // For i in 0..3: for j in 0..(3-i): t[i] += 1 → t = [3,2,1]
        let mut k = KernelBuilder::new("tri");
        let t = k.array("t", BitWidth::B64, 3, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(3), false);
        let j = r.for_loop(TripCount::inductive(3, -1), false);
        let one = r.imm(1);
        let red = r.reduce(Opcode::FAdd, one, j);
        r.store(t, AffineExpr::var(i), red);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let out = run(&kernel, &[]);
        assert_eq!(out["t"], vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn consume_underflow_is_reported() {
        // Region 1 consumes more values than region 0 yields.
        let mut k = KernelBuilder::new("under");
        let a = k.array("a", BitWidth::B64, 4, MemClass::MainMemory);
        let mut r0 = k.region("produce", 1.0);
        let i0 = r0.for_loop(TripCount::fixed(1), false);
        let v = r0.load(a, AffineExpr::var(i0));
        r0.yield_value(v);
        let r0i = k.finish_region(r0);
        let mut r1 = k.region("consume", 1.0);
        let i1 = r1.for_loop(TripCount::fixed(4), false);
        let c = r1.consume(r0i, 0);
        r1.store(a, AffineExpr::var(i1), c);
        k.finish_region(r1);
        let kernel = k.build().unwrap();
        let e = execute(&kernel, &BTreeMap::new()).expect_err("must underflow");
        assert!(matches!(e, ExecError::ConsumeUnderflow { region: 0 }));
    }

    #[test]
    fn zero_trip_inductive_loop_is_skipped() {
        // for i in 0..2: for j in 0..(1-i): t[i] += 1 → t = [1, 0, 9]
        let mut k = KernelBuilder::new("zero");
        let t = k.array("t", BitWidth::B64, 3, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(2), false);
        let j = r.for_loop(TripCount::inductive(1, -1), false);
        let one = r.imm(1);
        let red = r.reduce(Opcode::FAdd, one, j);
        r.store(t, AffineExpr::var(i), red);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let out = execute(
            &kernel,
            &BTreeMap::from([(String::from("t"), vec![9.0, 9.0, 9.0])]),
        )
        .unwrap();
        // i=0 stores 1; i=1's inner loop is zero-trip so nothing fires.
        assert_eq!(out["t"], vec![1.0, 9.0, 9.0]);
    }

    #[test]
    fn update_statement_rates() {
        // c[j] += a[i]*b[j] over i in 0..2, j in 0..3 (Fig 7b shape).
        let mut k = KernelBuilder::new("repupd");
        let a = k.array("a", BitWidth::B64, 2, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 3, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 3, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(2), false);
        let j = r.for_loop(TripCount::fixed(3), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(j));
        let p = r.bin(Opcode::FMul, va, vb);
        r.update(c, AffineExpr::var(j), Opcode::FAdd, p);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let out = execute(
            &kernel,
            &BTreeMap::from([
                (String::from("a"), vec![2.0, 10.0]),
                (String::from("b"), vec![1.0, 2.0, 3.0]),
            ]),
        )
        .unwrap();
        // c[j] = (2+10)*b[j]
        assert_eq!(out["c"], vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut k = KernelBuilder::new("oob");
        let a = k.array("a", BitWidth::B64, 2, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(4), true);
        let v = r.load(a, AffineExpr::var(i));
        r.store(a, AffineExpr::var(i), v);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let e = execute(&kernel, &BTreeMap::new()).expect_err("must detect OOB");
        assert!(matches!(e, ExecError::OutOfBounds { .. }));
    }
}
