//! Source-level kernel IR: annotated loop nests over arrays.
//!
//! This is the compiler's input — the moral equivalent of the paper's C
//! functions annotated with `#pragma dsa config/decouple/offload` (§IV-B).
//! A [`Kernel`] is one `config` scope; each [`Region`] is one `offload`
//! region (a loop nest whose innermost body is a dataflow expression DAG);
//! [`Kernel::decoupled`] is the `decouple` pragma (all memory dependences
//! are carried by data dependences, so streams may be hoisted).

use std::fmt;

use dsagen_adg::{BitWidth, Opcode};
use serde::{Deserialize, Serialize};

use crate::{AffineExpr, DfgError, LoopVar, TripCount};

/// Where an array's backing storage lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemClass {
    /// The shared cache hierarchy (L2 interface).
    MainMemory,
    /// The accelerator's scratchpad.
    Scratchpad,
}

/// Identifier of an array declared in a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArrayId(pub(crate) usize);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An array declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Element width.
    pub elem: BitWidth,
    /// Length in elements.
    pub len: u64,
    /// Backing storage.
    pub location: MemClass,
}

impl ArrayDecl {
    /// Total size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.len * u64::from(self.elem.bytes())
    }
}

/// An array index: affine in the loop variables, or indirect through
/// another array (`a[b[expr]]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Index {
    /// Affine index.
    Affine(AffineExpr),
    /// Indirect index: the value of `index_array[index_expr]`.
    Indirect {
        /// The array holding indices.
        index_array: ArrayId,
        /// Affine position within the index array.
        index_expr: AffineExpr,
    },
}

impl Index {
    /// The affine expression that generates addresses: the index itself for
    /// affine accesses, the index-*array* position for indirect ones.
    #[must_use]
    pub fn driving_expr(&self) -> &AffineExpr {
        match self {
            Index::Affine(e) => e,
            Index::Indirect { index_expr, .. } => index_expr,
        }
    }

    /// Whether this access is indirect.
    #[must_use]
    pub fn is_indirect(&self) -> bool {
        matches!(self, Index::Indirect { .. })
    }
}

/// Identifier of an expression within one region's DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExprId(pub(crate) usize);

/// A node in a region's expression DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SrcExpr {
    /// A memory load.
    Load {
        /// Source array.
        array: ArrayId,
        /// Access index.
        index: Index,
    },
    /// An integer immediate.
    Imm(i64),
    /// A unary operation.
    Un {
        /// Operation (arity 1).
        op: Opcode,
        /// Operand.
        a: ExprId,
    },
    /// A binary operation.
    Bin {
        /// Operation (arity 2).
        op: Opcode,
        /// Left operand.
        a: ExprId,
        /// Right operand.
        b: ExprId,
    },
    /// Predicated selection — the data-dependence form of an if/else
    /// (§IV-C, Fig 6: "both branches will be executed, and a selector will
    /// select the proper value").
    Mux {
        /// Predicate.
        cond: ExprId,
        /// Value when true.
        t: ExprId,
        /// Value when false.
        f: ExprId,
    },
    /// A reduction of `body` over loop `level` (e.g. `acc += body` in the
    /// loop at depth `level`). Creates a loop-carried recurrence.
    Reduce {
        /// Combining operation.
        op: Opcode,
        /// Reduced value.
        body: ExprId,
        /// Loop level being reduced over.
        level: LoopVar,
    },
    /// A scalar produced by an earlier region's [`SrcStmt::Yield`] —
    /// the producer-consumer idiom of §IV-D (Fig 7a).
    Consume {
        /// Producing region index within the kernel.
        region: usize,
        /// Which of that region's yields.
        yield_idx: usize,
    },
}

/// A side-effecting statement in a region body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SrcStmt {
    /// `array[index] = value`.
    Store {
        /// Destination array.
        array: ArrayId,
        /// Access index.
        index: Index,
        /// Stored value.
        value: ExprId,
    },
    /// `array[index] op= value` — an in-place (possibly atomic) update,
    /// e.g. histogramming `h[b[i]] += 1`.
    Update {
        /// Destination array.
        array: ArrayId,
        /// Access index.
        index: Index,
        /// Combining operation.
        op: Opcode,
        /// Update value.
        value: ExprId,
    },
    /// Yields a scalar (one value per region execution) for consumption by
    /// a later region via [`SrcExpr::Consume`].
    Yield {
        /// Yielded value.
        value: ExprId,
    },
}

/// One side of a two-pointer merge join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSide {
    /// Sorted key array.
    pub key: ArrayId,
    /// Payload arrays advanced in lockstep with the key.
    pub payloads: Vec<ArrayId>,
    /// Number of elements on this side.
    pub len: u64,
}

/// The kind of one loop in a region's nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoopKind {
    /// A counted `for` loop.
    For {
        /// Trip count (possibly inductive in the enclosing loop).
        trip: TripCount,
    },
    /// A two-pointer merge join over sorted keys — the control-dependent
    /// memory-access idiom of §IV-E (Fig 8: sparse inner product). Loads of
    /// the side arrays indexed by this loop's variable denote
    /// stream-consumption on that side.
    Join {
        /// Left side.
        a: JoinSide,
        /// Right side.
        b: JoinSide,
        /// Fraction of iterations where the keys match (both advance and
        /// the body computes).
        match_ratio: f64,
    },
}

/// One loop in a region's nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// What kind of loop.
    pub kind: LoopKind,
    /// Whether iterations are independent (legal to unroll/vectorize).
    pub parallel: bool,
}

impl Loop {
    /// Expected number of iterations (for joins: the merge length
    /// `len_a + len_b − matches`).
    #[must_use]
    pub fn expected_trip(&self, outer_trip: u64) -> f64 {
        match &self.kind {
            LoopKind::For { trip } => trip.average_over(outer_trip.max(1)),
            LoopKind::Join { a, b, match_ratio } => {
                let total = (a.len + b.len) as f64;
                // Each matching iteration advances both pointers at once.
                total / (1.0 + match_ratio)
            }
        }
    }
}

/// An offload region: a loop nest with a dataflow body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region name (diagnostics).
    pub name: String,
    /// Loop nest, outermost first.
    pub loops: Vec<Loop>,
    /// Expression DAG (arena; ids index into this).
    pub exprs: Vec<SrcExpr>,
    /// Side-effecting statements.
    pub stmts: Vec<SrcStmt>,
    /// Relative execution frequency (the `BlockFrequencyInfo` equivalent of
    /// §V-B, used to weight regions in the performance model).
    pub exec_freq: f64,
}

impl Region {
    /// Number of loops.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The loop variable of the innermost loop.
    ///
    /// # Panics
    ///
    /// Panics if the region has no loops.
    #[must_use]
    pub fn innermost(&self) -> LoopVar {
        assert!(!self.loops.is_empty(), "region has no loops");
        LoopVar(self.loops.len() - 1)
    }

    /// The expression node for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by the builder).
    #[must_use]
    pub fn expr(&self, id: ExprId) -> &SrcExpr {
        &self.exprs[id.0]
    }

    /// The join loop's depth and kind, if the nest contains one.
    #[must_use]
    pub fn join_loop(&self) -> Option<(usize, &LoopKind)> {
        self.loops
            .iter()
            .enumerate()
            .find(|(_, l)| matches!(l.kind, LoopKind::Join { .. }))
            .map(|(d, l)| (d, &l.kind))
    }

    /// The deepest loop variable an expression transitively depends on
    /// (`None` for fully loop-invariant expressions). Determines the
    /// expression's firing rate: expressions pinned above the innermost
    /// loop are low-rate and favor shared PEs (§IV-C "Spatial Scheduling").
    #[must_use]
    pub fn rate_level(&self, id: ExprId) -> Option<LoopVar> {
        match self.expr(id) {
            SrcExpr::Load { index, .. } => index.driving_expr().innermost_var(),
            SrcExpr::Imm(_) | SrcExpr::Consume { .. } => None,
            SrcExpr::Un { a, .. } => self.rate_level(*a),
            SrcExpr::Bin { a, b, .. } => self.rate_level(*a).max(self.rate_level(*b)),
            SrcExpr::Mux { cond, t, f } => self
                .rate_level(*cond)
                .max(self.rate_level(*t))
                .max(self.rate_level(*f)),
            // A reduction consumes at `level`'s rate but *produces* at the
            // rate of the loop just above it.
            SrcExpr::Reduce { level, .. } => {
                if level.0 == 0 {
                    None
                } else {
                    Some(LoopVar(level.0 - 1))
                }
            }
        }
    }

    /// Iterates over every (id, expr) pair.
    pub fn iter_exprs(&self) -> impl Iterator<Item = (ExprId, &SrcExpr)> {
        self.exprs.iter().enumerate().map(|(i, e)| (ExprId(i), e))
    }

    /// Count of compute operations (Un/Bin/Mux/Reduce — loads, immediates
    /// and consumes are not compute).
    #[must_use]
    pub fn compute_op_count(&self) -> usize {
        self.exprs
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SrcExpr::Un { .. } | SrcExpr::Bin { .. } | SrcExpr::Mux { .. } | SrcExpr::Reduce { .. }
                )
            })
            .count()
    }

    /// Whether any access in the region is indirect.
    #[must_use]
    pub fn has_indirect_access(&self) -> bool {
        let expr_indirect = self.exprs.iter().any(|e| match e {
            SrcExpr::Load { index, .. } => index.is_indirect(),
            _ => false,
        });
        let stmt_indirect = self.stmts.iter().any(|s| match s {
            SrcStmt::Store { index, .. } | SrcStmt::Update { index, .. } => index.is_indirect(),
            SrcStmt::Yield { .. } => false,
        });
        expr_indirect || stmt_indirect
    }

    /// Whether the region contains an in-place `Update` statement.
    #[must_use]
    pub fn has_update(&self) -> bool {
        self.stmts.iter().any(|s| matches!(s, SrcStmt::Update { .. }))
    }

    fn validate(&self, region_idx: usize, arrays: &[ArrayDecl]) -> Result<(), DfgError> {
        let depth = self.loops.len();
        if depth == 0 {
            return Err(DfgError::Malformed {
                region: self.name.clone(),
                what: "region has no loops".into(),
            });
        }
        let check_array = |a: ArrayId| -> Result<(), DfgError> {
            if a.0 >= arrays.len() {
                return Err(DfgError::Malformed {
                    region: self.name.clone(),
                    what: format!("unknown array {a}"),
                });
            }
            Ok(())
        };
        let check_index = |idx: &Index| -> Result<(), DfgError> {
            if let Index::Indirect { index_array, .. } = idx {
                check_array(*index_array)?;
            }
            if idx
                .driving_expr()
                .vars()
                .any(|v| v.0 >= depth)
            {
                return Err(DfgError::Malformed {
                    region: self.name.clone(),
                    what: "index references a loop variable deeper than the nest".into(),
                });
            }
            Ok(())
        };
        for (i, e) in self.exprs.iter().enumerate() {
            let check_ref = |x: ExprId| -> Result<(), DfgError> {
                if x.0 >= i {
                    return Err(DfgError::Malformed {
                        region: self.name.clone(),
                        what: format!("expression e{i} references a later expression"),
                    });
                }
                Ok(())
            };
            match e {
                SrcExpr::Load { array, index } => {
                    check_array(*array)?;
                    check_index(index)?;
                }
                SrcExpr::Imm(_) => {}
                SrcExpr::Un { op, a } => {
                    if op.arity() != 1 {
                        return Err(DfgError::Malformed {
                            region: self.name.clone(),
                            what: format!("{op} used as unary"),
                        });
                    }
                    check_ref(*a)?;
                }
                SrcExpr::Bin { op, a, b } => {
                    if op.arity() != 2 {
                        return Err(DfgError::Malformed {
                            region: self.name.clone(),
                            what: format!("{op} used as binary"),
                        });
                    }
                    check_ref(*a)?;
                    check_ref(*b)?;
                }
                SrcExpr::Mux { cond, t, f } => {
                    check_ref(*cond)?;
                    check_ref(*t)?;
                    check_ref(*f)?;
                }
                SrcExpr::Reduce { body, level, .. } => {
                    check_ref(*body)?;
                    if level.0 >= depth {
                        return Err(DfgError::Malformed {
                            region: self.name.clone(),
                            what: "reduction over a nonexistent loop level".into(),
                        });
                    }
                }
                SrcExpr::Consume { region, .. } => {
                    if *region >= region_idx {
                        return Err(DfgError::Malformed {
                            region: self.name.clone(),
                            what: "consume must reference an earlier region".into(),
                        });
                    }
                }
            }
        }
        for s in &self.stmts {
            match s {
                SrcStmt::Store { array, index, value } | SrcStmt::Update { array, index, value, .. } => {
                    check_array(*array)?;
                    check_index(index)?;
                    if value.0 >= self.exprs.len() {
                        return Err(DfgError::Malformed {
                            region: self.name.clone(),
                            what: "statement references an unknown expression".into(),
                        });
                    }
                }
                SrcStmt::Yield { value } => {
                    if value.0 >= self.exprs.len() {
                        return Err(DfgError::Malformed {
                            region: self.name.clone(),
                            what: "yield references an unknown expression".into(),
                        });
                    }
                }
            }
        }
        // At most one join loop per region, and join sides must be arrays.
        let joins = self
            .loops
            .iter()
            .filter(|l| matches!(l.kind, LoopKind::Join { .. }))
            .count();
        if joins > 1 {
            return Err(DfgError::Malformed {
                region: self.name.clone(),
                what: "at most one join loop per region".into(),
            });
        }
        if let Some((_, LoopKind::Join { a, b, match_ratio })) = self.join_loop() {
            check_array(a.key)?;
            check_array(b.key)?;
            for p in a.payloads.iter().chain(&b.payloads) {
                check_array(*p)?;
            }
            if !(0.0..=1.0).contains(match_ratio) {
                return Err(DfgError::Malformed {
                    region: self.name.clone(),
                    what: "join match ratio must be within [0, 1]".into(),
                });
            }
        }
        Ok(())
    }
}

/// A complete kernel: one `#pragma dsa config` scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Offload regions, in program order; all are concurrent within the
    /// config scope (§IV-B).
    pub regions: Vec<Region>,
    /// The `decouple` pragma: no unknown aliasing, so memory operations may
    /// be hoisted into streams.
    pub decoupled: bool,
}

impl Kernel {
    /// Looks up an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id was not minted by this kernel's builder.
    #[must_use]
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Validates structural well-formedness of every region.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::Malformed`] describing the first violation.
    pub fn validate(&self) -> Result<(), DfgError> {
        if self.regions.is_empty() {
            return Err(DfgError::Malformed {
                region: self.name.clone(),
                what: "kernel has no regions".into(),
            });
        }
        for (i, r) in self.regions.iter().enumerate() {
            r.validate(i, &self.arrays)?;
        }
        Ok(())
    }

    /// Total bytes across all declared arrays (the working set).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays.iter().map(ArrayDecl::bytes).sum()
    }
}

/// Builder for [`Kernel`]s.
///
/// # Example
///
/// A dot product (`acc += a[i] * b[i]`):
///
/// ```
/// use dsagen_adg::{BitWidth, Opcode};
/// use dsagen_dfg::*;
///
/// let mut k = KernelBuilder::new("dot");
/// let a = k.array("a", BitWidth::B64, 1024, MemClass::MainMemory);
/// let b = k.array("b", BitWidth::B64, 1024, MemClass::MainMemory);
/// let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
/// let mut r = k.region("body", 1.0);
/// let i = r.for_loop(TripCount::fixed(1024), true);
/// let va = r.load(a, AffineExpr::var(i));
/// let vb = r.load(b, AffineExpr::var(i));
/// let prod = r.bin(Opcode::Mul, va, vb);
/// let acc = r.reduce(Opcode::Add, prod, i);
/// r.store(c, AffineExpr::constant(0), acc);
/// k.finish_region(r);
/// let kernel = k.build()?;
/// assert_eq!(kernel.regions.len(), 1);
/// # Ok::<(), dsagen_dfg::DfgError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    regions: Vec<Region>,
    decoupled: bool,
}

impl KernelBuilder {
    /// Starts a kernel (decoupled by default — the common annotated case).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            arrays: Vec::new(),
            regions: Vec::new(),
            decoupled: true,
        }
    }

    /// Clears the `decouple` pragma (memory may alias; streams cannot be
    /// hoisted across the region).
    pub fn not_decoupled(&mut self) -> &mut Self {
        self.decoupled = false;
        self
    }

    /// Declares an array.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        elem: BitWidth,
        len: u64,
        location: MemClass,
    ) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem,
            len,
            location,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Starts a region; finish it with [`KernelBuilder::finish_region`].
    #[must_use]
    pub fn region(&self, name: impl Into<String>, exec_freq: f64) -> RegionBuilder {
        RegionBuilder {
            region: Region {
                name: name.into(),
                loops: Vec::new(),
                exprs: Vec::new(),
                stmts: Vec::new(),
                exec_freq,
            },
            index: self.regions.len(),
        }
    }

    /// Adds a completed region and returns its index.
    pub fn finish_region(&mut self, rb: RegionBuilder) -> usize {
        self.regions.push(rb.region);
        self.regions.len() - 1
    }

    /// Builds and validates the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::Malformed`] if any region is structurally
    /// invalid.
    pub fn build(self) -> Result<Kernel, DfgError> {
        let k = Kernel {
            name: self.name,
            arrays: self.arrays,
            regions: self.regions,
            decoupled: self.decoupled,
        };
        k.validate()?;
        Ok(k)
    }
}

/// Builder for one [`Region`].
#[derive(Debug)]
pub struct RegionBuilder {
    region: Region,
    index: usize,
}

impl RegionBuilder {
    /// The region's index within the kernel (for `Consume` references from
    /// later regions).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Opens a counted loop and returns its variable.
    pub fn for_loop(&mut self, trip: TripCount, parallel: bool) -> LoopVar {
        self.region.loops.push(Loop {
            kind: LoopKind::For { trip },
            parallel,
        });
        LoopVar(self.region.loops.len() - 1)
    }

    /// Opens a two-pointer merge-join loop and returns its variable.
    pub fn join_loop(&mut self, a: JoinSide, b: JoinSide, match_ratio: f64) -> LoopVar {
        self.region.loops.push(Loop {
            kind: LoopKind::Join { a, b, match_ratio },
            parallel: false,
        });
        LoopVar(self.region.loops.len() - 1)
    }

    fn push(&mut self, e: SrcExpr) -> ExprId {
        self.region.exprs.push(e);
        ExprId(self.region.exprs.len() - 1)
    }

    /// An affine load `array[index]`.
    pub fn load(&mut self, array: ArrayId, index: AffineExpr) -> ExprId {
        self.push(SrcExpr::Load {
            array,
            index: Index::Affine(index),
        })
    }

    /// An indirect load `array[index_array[index_expr]]`.
    pub fn load_indirect(
        &mut self,
        array: ArrayId,
        index_array: ArrayId,
        index_expr: AffineExpr,
    ) -> ExprId {
        self.push(SrcExpr::Load {
            array,
            index: Index::Indirect {
                index_array,
                index_expr,
            },
        })
    }

    /// An integer immediate.
    pub fn imm(&mut self, v: i64) -> ExprId {
        self.push(SrcExpr::Imm(v))
    }

    /// A unary operation.
    pub fn un(&mut self, op: Opcode, a: ExprId) -> ExprId {
        self.push(SrcExpr::Un { op, a })
    }

    /// A binary operation.
    pub fn bin(&mut self, op: Opcode, a: ExprId, b: ExprId) -> ExprId {
        self.push(SrcExpr::Bin { op, a, b })
    }

    /// A predicated select.
    pub fn mux(&mut self, cond: ExprId, t: ExprId, f: ExprId) -> ExprId {
        self.push(SrcExpr::Mux { cond, t, f })
    }

    /// A reduction over loop `level`.
    pub fn reduce(&mut self, op: Opcode, body: ExprId, level: LoopVar) -> ExprId {
        self.push(SrcExpr::Reduce { op, body, level })
    }

    /// Consumes a scalar yielded by an earlier region.
    pub fn consume(&mut self, region: usize, yield_idx: usize) -> ExprId {
        self.push(SrcExpr::Consume { region, yield_idx })
    }

    /// Appends a store statement.
    pub fn store(&mut self, array: ArrayId, index: AffineExpr, value: ExprId) {
        self.region.stmts.push(SrcStmt::Store {
            array,
            index: Index::Affine(index),
            value,
        });
    }

    /// Appends an indirect store statement.
    pub fn store_indirect(
        &mut self,
        array: ArrayId,
        index_array: ArrayId,
        index_expr: AffineExpr,
        value: ExprId,
    ) {
        self.region.stmts.push(SrcStmt::Store {
            array,
            index: Index::Indirect {
                index_array,
                index_expr,
            },
            value,
        });
    }

    /// Appends an in-place update `array[index] op= value`.
    pub fn update(&mut self, array: ArrayId, index: AffineExpr, op: Opcode, value: ExprId) {
        self.region.stmts.push(SrcStmt::Update {
            array,
            index: Index::Affine(index),
            op,
            value,
        });
    }

    /// Appends an indirect in-place update `array[idx_arr[expr]] op= value`
    /// (the atomic-update idiom, e.g. histogramming).
    pub fn update_indirect(
        &mut self,
        array: ArrayId,
        index_array: ArrayId,
        index_expr: AffineExpr,
        op: Opcode,
        value: ExprId,
    ) {
        self.region.stmts.push(SrcStmt::Update {
            array,
            index: Index::Indirect {
                index_array,
                index_expr,
            },
            op,
            value,
        });
    }

    /// Appends a scalar yield.
    pub fn yield_value(&mut self, value: ExprId) {
        self.region.stmts.push(SrcStmt::Yield { value });
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{BitWidth, Opcode};

    use super::*;
    use crate::TripCount;

    fn dot_kernel() -> Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 1024, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 1024, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(1024), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let prod = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, prod, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    #[test]
    fn dot_builds_and_validates() {
        let k = dot_kernel();
        assert_eq!(k.regions.len(), 1);
        assert_eq!(k.regions[0].compute_op_count(), 2);
        assert!(!k.regions[0].has_indirect_access());
        assert_eq!(k.footprint_bytes(), (1024 + 1024 + 1) * 8);
    }

    #[test]
    fn rate_levels() {
        let mut k = KernelBuilder::new("rates");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(8), false);
        let j = r.for_loop(TripCount::fixed(8), true);
        let outer_load = r.load(a, AffineExpr::var(i));
        let inner_load = r.load(a, AffineExpr::var(j));
        let imm = r.imm(3);
        let inner_op = r.bin(Opcode::Mul, outer_load, inner_load);
        let outer_op = r.bin(Opcode::Add, outer_load, imm);
        let red = r.reduce(Opcode::Add, inner_op, j);
        let region = {
            r.store(a, AffineExpr::var(i), red);
            let idx = k.finish_region(r);
            let _ = outer_op;
            k.build().unwrap().regions.remove(idx)
        };
        assert_eq!(region.rate_level(outer_load), Some(LoopVar(0)));
        assert_eq!(region.rate_level(inner_load), Some(LoopVar(1)));
        assert_eq!(region.rate_level(imm), None);
        assert_eq!(region.rate_level(inner_op), Some(LoopVar(1)));
        assert_eq!(region.rate_level(outer_op), Some(LoopVar(0)));
        // Reduction over the inner loop produces at the outer loop's rate.
        assert_eq!(region.rate_level(red), Some(LoopVar(0)));
    }

    #[test]
    fn validate_rejects_deep_loop_reference() {
        let mut k = KernelBuilder::new("bad");
        let a = k.array("a", BitWidth::B64, 8, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let _i = r.for_loop(TripCount::fixed(8), true);
        let v = r.load(a, AffineExpr::var(LoopVar(5)));
        r.store(a, AffineExpr::constant(0), v);
        k.finish_region(r);
        assert!(k.build().is_err());
    }

    #[test]
    fn validate_rejects_forward_reference_in_dag() {
        let region = Region {
            name: "r".into(),
            loops: vec![Loop {
                kind: LoopKind::For {
                    trip: TripCount::fixed(4),
                },
                parallel: true,
            }],
            exprs: vec![SrcExpr::Un {
                op: Opcode::Not,
                a: ExprId(5),
            }],
            stmts: vec![],
            exec_freq: 1.0,
        };
        let k = Kernel {
            name: "bad".into(),
            arrays: vec![],
            regions: vec![region],
            decoupled: true,
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn validate_rejects_consume_of_later_region() {
        let mut k = KernelBuilder::new("bad");
        let a = k.array("a", BitWidth::B64, 8, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let _i = r.for_loop(TripCount::fixed(8), true);
        let v = r.consume(0, 0); // region 0 consuming from itself
        r.store(a, AffineExpr::constant(0), v);
        k.finish_region(r);
        assert!(k.build().is_err());
    }

    #[test]
    fn join_loop_shape() {
        let mut k = KernelBuilder::new("join");
        let k0 = k.array("k0", BitWidth::B64, 768, MemClass::MainMemory);
        let v0 = k.array("v0", BitWidth::B64, 768, MemClass::MainMemory);
        let k1 = k.array("k1", BitWidth::B64, 768, MemClass::MainMemory);
        let v1 = k.array("v1", BitWidth::B64, 768, MemClass::MainMemory);
        let out = k.array("out", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("join", 1.0);
        let j = r.join_loop(
            JoinSide {
                key: k0,
                payloads: vec![v0],
                len: 768,
            },
            JoinSide {
                key: k1,
                payloads: vec![v1],
                len: 768,
            },
            0.3,
        );
        let a = r.load(v0, AffineExpr::var(j));
        let b = r.load(v1, AffineExpr::var(j));
        let prod = r.bin(Opcode::Mul, a, b);
        let acc = r.reduce(Opcode::Add, prod, j);
        r.store(out, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let region = &kernel.regions[0];
        assert!(region.join_loop().is_some());
        let trip = region.loops[0].expected_trip(1);
        assert!((trip - 1536.0 / 1.3).abs() < 1e-9);
    }

    #[test]
    fn producer_consumer_shape() {
        let mut k = KernelBuilder::new("pc");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 8, MemClass::MainMemory);
        // Region 0: v = Σ a[j]*b[j]; yield v.
        let mut r0 = k.region("produce", 1.0);
        let j = r0.for_loop(TripCount::fixed(8), true);
        let va = r0.load(a, AffineExpr::var(j));
        let vb = r0.load(b, AffineExpr::var(j));
        let p = r0.bin(Opcode::Mul, va, vb);
        let acc = r0.reduce(Opcode::Add, p, j);
        r0.yield_value(acc);
        let r0i = k.finish_region(r0);
        // Region 1: a[j] -= v*b[j].
        let mut r1 = k.region("consume", 1.0);
        let j1 = r1.for_loop(TripCount::fixed(8), true);
        let v = r1.consume(r0i, 0);
        let vb1 = r1.load(b, AffineExpr::var(j1));
        let va1 = r1.load(a, AffineExpr::var(j1));
        let prod = r1.bin(Opcode::Mul, v, vb1);
        let diff = r1.bin(Opcode::Sub, va1, prod);
        r1.store(a, AffineExpr::var(j1), diff);
        k.finish_region(r1);
        let kernel = k.build().unwrap();
        assert_eq!(kernel.regions.len(), 2);
        assert!(kernel.regions[1]
            .iter_exprs()
            .any(|(_, e)| matches!(e, SrcExpr::Consume { region: 0, .. })));
    }

    #[test]
    fn update_detection() {
        let mut k = KernelBuilder::new("hist");
        let h = k.array("h", BitWidth::B64, 1024, MemClass::Scratchpad);
        let idx = k.array("b", BitWidth::B64, 65536, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(65536), true);
        let one = r.imm(1);
        r.update_indirect(h, idx, AffineExpr::var(i), Opcode::Add, one);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        assert!(kernel.regions[0].has_update());
        assert!(kernel.regions[0].has_indirect_access());
    }
}
