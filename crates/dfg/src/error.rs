//! Error type for kernel construction and compilation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or compiling kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfgError {
    /// A kernel or region is structurally invalid.
    Malformed {
        /// The kernel or region name.
        region: String,
        /// What is wrong.
        what: String,
    },
    /// A transformation was requested that the target hardware cannot
    /// support and for which no fallback exists.
    UnsupportedTransform {
        /// The transformation name.
        transform: &'static str,
        /// The missing hardware feature.
        missing: &'static str,
    },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::Malformed { region, what } => {
                write!(f, "malformed kernel/region '{region}': {what}")
            }
            DfgError::UnsupportedTransform { transform, missing } => {
                write!(
                    f,
                    "transformation '{transform}' requires hardware feature '{missing}'"
                )
            }
        }
    }
}

impl Error for DfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = DfgError::Malformed {
            region: "body".into(),
            what: "no loops".into(),
        };
        assert!(e.to_string().contains("body"));
        assert!(e.to_string().contains("no loops"));
    }
}
