//! Lowering from source kernels to compiled decoupled regions (§IV-C).
//!
//! `compile_kernel` slices memory accesses out of each offload region into
//! [`Stream`]s, converts the remaining computation (with control already in
//! data-dependence form) into a [`Dfg`], and applies the modular
//! transformations selected by a [`TransformConfig`] — falling back to
//! control-core scalar code for idioms the configuration leaves disabled.

use std::collections::HashMap;

use dsagen_adg::{BitWidth, FeatureSet, Opcode};
use serde::{Deserialize, Serialize};

use crate::{
    AffineExpr, Dfg, DfgOp, Index, Kernel, LoopKind, LoopVar, MemClass, OpId, Recurrence, Region,
    Requirements, SrcExpr, SrcStmt, Stream, StreamDir, StreamPattern, StreamSource,
    TransformConfig,
};

/// Scalar-op cost charged to the control core per element of a fallback
/// (non-streamed) indirect access: address load, add, access, bookkeeping.
const SCALAR_INDIRECT_COST: f64 = 4.0;
/// Scalar-op cost per element of a fallback read-modify-write update.
const SCALAR_UPDATE_COST: f64 = 6.0;
/// Scalar-op cost per iteration of a fallback (non-stream-join) merge loop:
/// two key loads, compare, two conditional increments, branch.
const SCALAR_JOIN_COST: f64 = 6.0;

/// One compiled offload region: streams + dataflow graph + rate facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledRegion {
    /// Region name.
    pub name: String,
    /// The compute graph.
    pub dfg: Dfg,
    /// Input streams (index `port` matches [`DfgOp::Input`] ports).
    pub in_streams: Vec<Stream>,
    /// Output streams.
    pub out_streams: Vec<Stream>,
    /// Dataflow-graph firings over one kernel execution.
    pub instances: f64,
    /// Scalar operations the control core must execute (fallback paths).
    pub ctrl_ops: f64,
    /// Relative execution frequency (§V-B).
    pub exec_freq: f64,
    /// Vectorization degree actually applied.
    pub unroll: u16,
    /// Whether this region pipelines with its successor (no barrier),
    /// thanks to producer-consumer forwarding (§IV-D).
    pub pipelined_with_next: bool,
}

impl CompiledRegion {
    /// Total bytes moved to/from memories (excludes forwarded and
    /// control-core traffic).
    #[must_use]
    pub fn memory_bytes(&self) -> f64 {
        self.in_streams
            .iter()
            .chain(&self.out_streams)
            .filter(|s| s.source.is_memory())
            .map(Stream::total_bytes)
            .sum()
    }

    /// Total stream commands the control core issues for this region.
    #[must_use]
    pub fn stream_commands(&self) -> u64 {
        self.in_streams
            .iter()
            .chain(&self.out_streams)
            .map(|s| s.pattern.commands)
            .sum()
    }
}

/// A fully compiled kernel version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledKernel {
    /// Kernel name.
    pub name: String,
    /// Compiled regions, in program order.
    pub regions: Vec<CompiledRegion>,
    /// The transformation configuration this version was compiled with.
    pub config: TransformConfig,
    /// Hardware requirements this version imposes.
    pub requires: Requirements,
    /// Memory traffic eliminated by the §IV-D forwarding optimizations.
    pub forwarded_bytes: f64,
}

impl CompiledKernel {
    /// Total PE instructions across regions.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.regions.iter().map(|r| r.dfg.inst_count()).sum()
    }

    /// A stable 64-bit content hash of the compiled kernel.
    ///
    /// Covers the kernel name, the transformation configuration, the
    /// hardware requirements, and — per region — the region name, the full
    /// [`Dfg`] content ([`Dfg::content_hash`]), every in/out stream, and
    /// the region's firing statistics. Floats are hashed bit-exactly.
    ///
    /// Two compiled versions hash equal iff the scheduler and the
    /// performance model would see identical inputs, which is exactly the
    /// contract the DSE schedule cache needs: it memoizes scheduling work
    /// under the key `(adg fingerprint, compiled-kernel hash)`.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = dsagen_adg::StableHasher::new();
        self.name.hash(&mut h);
        let c = &self.config;
        h.write_u16(c.unroll);
        h.write_u8(
            u8::from(c.stream_join)
                | (u8::from(c.indirect) << 1)
                | (u8::from(c.atomic_update) << 2)
                | (u8::from(c.forward) << 3)
                | (u8::from(c.window_ports) << 4)
                | (u8::from(c.sub_word) << 5),
        );
        let r = &self.requires;
        h.write_u32(r.stream_join_pes);
        h.write_u32(r.instruction_slots);
        r.ops.hash(&mut h);
        h.write_u8(
            u8::from(r.indirect_memory)
                | (u8::from(r.atomic_update) << 1)
                | (u8::from(r.scalar_core) << 2)
                | (u8::from(r.decomposable) << 3),
        );
        h.write_u64(self.forwarded_bytes.to_bits());
        h.write_usize(self.regions.len());
        for region in &self.regions {
            region.name.hash(&mut h);
            region.dfg.hash_content(&mut h);
            h.write_usize(region.in_streams.len());
            for s in &region.in_streams {
                s.hash_content(&mut h);
            }
            h.write_usize(region.out_streams.len());
            for s in &region.out_streams {
                s.hash_content(&mut h);
            }
            h.write_u64(region.instances.to_bits());
            h.write_u64(region.ctrl_ops.to_bits());
            h.write_u64(region.exec_freq.to_bits());
            h.write_u16(region.unroll);
            h.write_u8(u8::from(region.pipelined_with_next));
        }
        h.finish()
    }
}

/// Compiles `kernel` under `cfg` for hardware with `features`.
///
/// The configuration's hardware-dependent flags are assumed to have been
/// gated by [`crate::enumerate_configs`]; `features` is still consulted for
/// capacity questions (does the repetitive-update working set fit the sync
/// buffers?).
///
/// # Errors
///
/// Returns [`crate::DfgError::Malformed`] if the kernel fails validation.
pub fn compile_kernel(
    kernel: &Kernel,
    cfg: &TransformConfig,
    features: &FeatureSet,
) -> Result<CompiledKernel, crate::DfgError> {
    kernel.validate()?;
    let mut regions = Vec::with_capacity(kernel.regions.len());
    let mut requires = Requirements::default();
    let mut forwarded = 0.0;
    // Yield ports per region: region index → list of out-stream ports.
    let mut yield_ports: Vec<Vec<usize>> = Vec::new();

    for (idx, region) in kernel.regions.iter().enumerate() {
        let mut lower = Lowerer::new(kernel, region, idx, cfg, features, &yield_ports);
        let compiled = lower.run();
        requires.stream_join_pes += lower.stream_join_count;
        requires.indirect_memory |= lower.used_indirect;
        requires.atomic_update |= lower.used_atomic;
        requires.instruction_slots += compiled.dfg.inst_count() as u32;
        requires.scalar_core |= compiled.ctrl_ops > 0.0;
        requires.decomposable |= cfg.sub_word;
        for (_, op) in compiled.dfg.iter() {
            if let Some(oc) = op.required_opcode() {
                requires.ops.insert(oc);
            }
        }
        forwarded += lower.forwarded_bytes;
        yield_ports.push(lower.yield_ports.clone());
        regions.push(compiled);
    }

    // Producer-consumer pipelining: a region pipelines with its successor
    // when forwarding is on, the successor consumes its yields, and no
    // memory-carried RAW dependence forces a barrier (§IV-D).
    for i in 0..regions.len().saturating_sub(1) {
        let consumer_reads_forward = kernel.regions[i + 1].iter_exprs().any(
            |(_, e)| matches!(e, SrcExpr::Consume { region, .. } if *region == i),
        );
        let raw_dep = arrays_written(&kernel.regions[i])
            .iter()
            .any(|a| arrays_read(&kernel.regions[i + 1]).contains(a));
        regions[i].pipelined_with_next = cfg.forward && consumer_reads_forward && !raw_dep;
    }

    Ok(CompiledKernel {
        name: kernel.name.clone(),
        regions,
        config: *cfg,
        requires,
        forwarded_bytes: forwarded,
    })
}

fn arrays_written(region: &Region) -> Vec<crate::ArrayId> {
    region
        .stmts
        .iter()
        .filter_map(|s| match s {
            SrcStmt::Store { array, .. } | SrcStmt::Update { array, .. } => Some(*array),
            SrcStmt::Yield { .. } => None,
        })
        .collect()
}

fn arrays_read(region: &Region) -> Vec<crate::ArrayId> {
    region
        .iter_exprs()
        .filter_map(|(_, e)| match e {
            SrcExpr::Load { array, .. } => Some(*array),
            _ => None,
        })
        .collect()
}

/// One sliding-window vector-port group (§III-A: sync elements are
/// multi-lane; stencil/filter taps at small constant offsets of one array
/// share a port rather than each burning their own).
#[derive(Debug, Clone)]
struct WindowGroup {
    array: crate::ArrayId,
    base: AffineExpr,
    variant: bool,
    port: usize,
    taps: u16,
}

/// Maximum constant-offset distance (in elements) groupable into one
/// window port.
const WINDOW_SPAN: i64 = 16;

/// Which stream direction a window group belongs to.
#[derive(Debug)]
enum Dir {
    In,
    Out,
}

/// The combine opcode used when merging per-lane partial reductions.
fn combine_op(op: Opcode) -> Opcode {
    match op {
        Opcode::Mac => Opcode::Add,
        Opcode::FMac => Opcode::FAdd,
        other => other,
    }
}

struct Lowerer<'a> {
    kernel: &'a Kernel,
    region: &'a Region,
    region_idx: usize,
    cfg: &'a TransformConfig,
    features: &'a FeatureSet,
    yield_ports_by_region: &'a [Vec<usize>],

    dfg: Dfg,
    in_streams: Vec<Stream>,
    out_streams: Vec<Stream>,
    /// (expr, lane) → lowered value. Lane-invariant exprs memoize at lane 0.
    memo: HashMap<(usize, u16), OpId>,
    /// (array, canonical index) → input port, for load deduplication.
    load_ports: HashMap<String, usize>,
    /// Sliding-window port groups for loads: taps of the same array whose
    /// indices differ only by a small constant share one vector port.
    window_in: Vec<WindowGroup>,
    /// Sliding-window port groups for stores.
    window_out: Vec<WindowGroup>,
    ctrl_ops: f64,
    forwarded_bytes: f64,
    yield_ports: Vec<usize>,

    trips: Vec<f64>,
    unrolled: Option<LoopVar>,
    unroll: u16,
    instances: f64,
    join_fallback: bool,
    stream_join_count: u32,
    used_indirect: bool,
    used_atomic: bool,
}

impl<'a> Lowerer<'a> {
    fn new(
        kernel: &'a Kernel,
        region: &'a Region,
        region_idx: usize,
        cfg: &'a TransformConfig,
        features: &'a FeatureSet,
        yield_ports_by_region: &'a [Vec<usize>],
    ) -> Self {
        // Expected trip counts, outermost first.
        let mut trips: Vec<f64> = Vec::with_capacity(region.loops.len());
        for (d, l) in region.loops.iter().enumerate() {
            let outer = if d == 0 { 1.0 } else { trips[d - 1] };
            trips.push(l.expected_trip(outer.round().max(1.0) as u64).max(1.0));
        }
        // Unroll the deepest parallel counted loop.
        let unrolled = region
            .loops
            .iter()
            .enumerate()
            .rev()
            .find(|(_, l)| l.parallel && matches!(l.kind, LoopKind::For { .. }))
            .map(|(d, _)| LoopVar(d));
        let mut unroll = 1u16;
        if let Some(v) = unrolled {
            unroll = cfg.unroll.min(trips[v.0].round().max(1.0) as u16).max(1);
            trips[v.0] = (trips[v.0] / f64::from(unroll)).max(1.0);
        }
        let instances: f64 = trips.iter().product();
        let join_fallback = region.join_loop().is_some() && !cfg.stream_join;

        Lowerer {
            kernel,
            region,
            region_idx,
            cfg,
            features,
            yield_ports_by_region,
            dfg: Dfg::new(),
            in_streams: Vec::new(),
            out_streams: Vec::new(),
            memo: HashMap::new(),
            load_ports: HashMap::new(),
            window_in: Vec::new(),
            window_out: Vec::new(),
            ctrl_ops: 0.0,
            forwarded_bytes: 0.0,
            yield_ports: Vec::new(),
            trips,
            unrolled: if unroll > 1 { unrolled } else { None },
            unroll,
            instances,
            join_fallback,
            stream_join_count: 0,
            used_indirect: false,
            used_atomic: false,
        }
    }

    fn run(&mut self) -> CompiledRegion {
        // A join loop's key comparison lives at the root of the region.
        if let Some((_, LoopKind::Join { a, b, .. })) = self.region.join_loop() {
            let (a, b) = (a.clone(), b.clone());
            self.lower_join(&a, &b);
        }

        let stmts = self.region.stmts.clone();
        for stmt in &stmts {
            self.lower_stmt(stmt);
        }

        // Sub-word SIMD packing (§III-A decomposable FUs): when every
        // element is narrow, one decomposable 64-bit PE carries
        // 64/elem_bits lanes per firing — fewer firings, wider streams.
        let mut instances = self.instances;
        let mut in_streams = std::mem::take(&mut self.in_streams);
        let mut out_streams = std::mem::take(&mut self.out_streams);
        if self.cfg.sub_word {
            let max_bits = in_streams
                .iter()
                .chain(&out_streams)
                .map(|s| s.elem_bytes * 8)
                .max()
                .unwrap_or(64);
            let factor = (64 / max_bits.max(8)).clamp(1, 8) as u16;
            if factor > 1 {
                instances /= f64::from(factor);
                for s in in_streams.iter_mut().chain(out_streams.iter_mut()) {
                    s.lanes = s.lanes.saturating_mul(factor);
                }
            }
        }

        CompiledRegion {
            name: self.region.name.clone(),
            dfg: std::mem::take(&mut self.dfg),
            in_streams,
            out_streams,
            instances,
            ctrl_ops: self.ctrl_ops,
            exec_freq: self.region.exec_freq,
            unroll: self.unroll,
            pipelined_with_next: false,
        }
    }

    // ------------------------------------------------------------ analysis

    /// Whether an expression's value differs across unrolled lanes.
    fn lane_variant(&self, id: crate::ExprId) -> bool {
        let Some(uv) = self.unrolled else {
            return false;
        };
        self.depends_on(id, uv)
    }

    fn depends_on(&self, id: crate::ExprId, var: LoopVar) -> bool {
        match self.region.expr(id) {
            SrcExpr::Load { index, .. } => {
                index.driving_expr().stride_of(var) != 0
                    || index
                        .driving_expr()
                        .vars()
                        .any(|v| v.0 >= var.0)
            }
            SrcExpr::Imm(_) | SrcExpr::Consume { .. } => false,
            SrcExpr::Un { a, .. } => self.depends_on(*a, var),
            SrcExpr::Bin { a, b, .. } => self.depends_on(*a, var) || self.depends_on(*b, var),
            SrcExpr::Mux { cond, t, f } => {
                self.depends_on(*cond, var)
                    || self.depends_on(*t, var)
                    || self.depends_on(*f, var)
            }
            // A reduction folds away every loop at `level` or deeper; its
            // output only varies with strictly-outer variables.
            SrcExpr::Reduce { body, level, .. } => {
                var.0 < level.0 && self.depends_on(*body, var)
            }
        }
    }

    /// Adjusted trip product over loops where `pred(depth)` holds.
    fn trip_product(&self, pred: impl Fn(usize) -> bool) -> f64 {
        self.trips
            .iter()
            .enumerate()
            .filter(|(d, _)| pred(*d))
            .map(|(_, t)| *t)
            .product()
    }

    /// Builds a pattern for an affine access enumerated over the whole
    /// region iteration space.
    fn affine_pattern(&self, e: &AffineExpr, elem_bytes: u32, total_elems: f64) -> StreamPattern {
        let depth = self.region.loops.len();
        let innermost = LoopVar(depth - 1);
        let stride_bytes = e.stride_of(innermost) * i64::from(elem_bytes);
        // The 2-D hardware pattern covers the two innermost loops; every
        // loop above costs one command per iteration (§III-A "Memories").
        let commands = self.trip_product(|d| d + 2 < depth).round().max(1.0) as u64;
        let inductive = self.region.loops.iter().enumerate().any(|(d, l)| {
            d + 2 >= depth
                && matches!(l.kind, LoopKind::For { trip } if trip.is_inductive())
        });
        StreamPattern {
            elems_per_command: total_elems / commands as f64,
            commands,
            stride_bytes,
            inductive,
            indirect: false,
        }
    }

    fn mem_of(&self, array: crate::ArrayId) -> MemClass {
        self.kernel.array(array).location
    }

    fn elem_bytes_of(&self, array: crate::ArrayId) -> u32 {
        self.kernel.array(array).elem.bytes()
    }

    fn width_of(&self, array: crate::ArrayId) -> BitWidth {
        self.kernel.array(array).elem
    }

    // ------------------------------------------------------------- streams

    fn push_in_stream(&mut self, s: Stream) -> usize {
        let port = self.in_streams.len();
        self.in_streams.push(Stream { port, ..s });
        port
    }

    fn push_out_stream(&mut self, s: Stream) -> usize {
        let port = self.out_streams.len();
        self.out_streams.push(Stream { port, ..s });
        port
    }

    /// Tries to attach an access at `e` to an existing sliding-window port
    /// group of the same array (constant-offset tap within [`WINDOW_SPAN`],
    /// subject to the hardware's widest port). Widens the group's stream
    /// lanes to cover the new tap.
    fn join_window(
        &mut self,
        dir: &mut Dir,
        array: crate::ArrayId,
        e: &AffineExpr,
        variant: bool,
    ) -> Option<usize> {
        if !self.cfg.window_ports {
            return None;
        }
        let max_lanes = self.features.max_port_lanes.max(1);
        let groups = match dir {
            Dir::In => &mut self.window_in,
            Dir::Out => &mut self.window_out,
        };
        for g in groups.iter_mut() {
            if g.array != array || g.variant != variant || g.taps >= max_lanes {
                continue;
            }
            let Some(off) = e.offset_from(&g.base) else {
                continue;
            };
            if off.unsigned_abs() > WINDOW_SPAN as u64 {
                continue;
            }
            g.taps += 1;
            let taps = g.taps;
            let port = g.port;
            let stream = match dir {
                Dir::In => &mut self.in_streams[port],
                Dir::Out => &mut self.out_streams[port],
            };
            stream.lanes = stream.lanes.max(taps);
            if matches!(dir, Dir::Out) {
                // Stores write distinct addresses: the grouped stream's
                // volume grows with each tap (loads share the sliding
                // window, so their volume stays).
                stream.pattern.elems_per_command *= f64::from(taps) / f64::from(taps - 1);
            }
            return Some(port);
        }
        None
    }

    /// Creates (or reuses) the input port for a load and returns it.
    fn load_port(&mut self, array: crate::ArrayId, index: &Index, variant: bool) -> usize {
        let key = format!("{array}:{index:?}");
        if let Some(port) = self.load_ports.get(&key) {
            return *port;
        }
        let lanes = if variant { self.unroll } else { 1 };
        let eb = self.elem_bytes_of(array);
        let total = self.instances * f64::from(lanes);
        let port = match index {
            Index::Affine(e) => {
                if self.join_fallback {
                    // Control core feeds elements one by one.
                    self.ctrl_ops += SCALAR_INDIRECT_COST * total;
                    self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern::linear(total, eb.into()),
                        source: StreamSource::ControlCore,
                        to_fabric: true,
                    })
                } else if let Some(port) = self.join_window(&mut Dir::In, array, e, variant) {
                    port
                } else {
                    let pattern = self.affine_pattern(e, eb, total);
                    let port = self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: eb,
                        lanes,
                        pattern,
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    });
                    self.window_in.push(WindowGroup {
                        array,
                        base: e.clone(),
                        variant,
                        port,
                        taps: 1,
                    });
                    port
                }
            }
            Index::Indirect {
                index_array,
                index_expr,
            } => {
                if self.cfg.indirect {
                    self.used_indirect = true;
                    let idx_eb = self.elem_bytes_of(*index_array);
                    let idx_pattern = self.affine_pattern(index_expr, idx_eb, total);
                    let data_port = self.in_streams.len();
                    // Index stream feeds the controller, not the fabric.
                    self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: idx_eb,
                        lanes,
                        pattern: idx_pattern,
                        source: StreamSource::Memory(self.mem_of(*index_array)),
                        to_fabric: false,
                    });
                    let _ = data_port;
                    self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern {
                            elems_per_command: total,
                            commands: 1,
                            stride_bytes: eb.into(),
                            inductive: false,
                            indirect: true,
                        },
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    })
                } else {
                    // Scalar fallback: the control core performs the
                    // gather element by element (§IV-C).
                    self.ctrl_ops += SCALAR_INDIRECT_COST * total;
                    self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern {
                            elems_per_command: total,
                            commands: 1,
                            stride_bytes: eb.into(),
                            inductive: false,
                            indirect: true,
                        },
                        source: StreamSource::ControlCore,
                        to_fabric: true,
                    })
                }
            }
        };
        self.load_ports.insert(key, port);
        port
    }

    // ----------------------------------------------------------- lowering

    fn lower_join(&mut self, a: &crate::JoinSide, b: &crate::JoinSide) {
        if self.join_fallback {
            // The merge loop runs on the control core; nothing to place on
            // the fabric for the keys themselves.
            self.ctrl_ops += SCALAR_JOIN_COST * self.instances;
            return;
        }
        self.stream_join_count += 1;
        let ka_port = self.load_port(a.key, &Index::Affine(AffineExpr::var(self.join_var())), false);
        let kb_port = self.load_port(b.key, &Index::Affine(AffineExpr::var(self.join_var())), false);
        let ka = self.dfg.push(DfgOp::Input { port: ka_port }, self.width_of(a.key));
        let kb = self.dfg.push(DfgOp::Input { port: kb_port }, self.width_of(b.key));
        let j = self
            .dfg
            .push(DfgOp::StreamJoin { left: ka, right: kb }, self.width_of(a.key));
        // The join gates downstream consumption; record it so consumers of
        // the join predicate can find it.
        self.memo.insert((usize::MAX, 0), j);
    }

    fn join_var(&self) -> LoopVar {
        LoopVar(self.region.join_loop().expect("join region").0)
    }

    fn lower_stmt(&mut self, stmt: &SrcStmt) {
        match stmt {
            SrcStmt::Store {
                array,
                index,
                value,
            } => self.lower_store(*array, index, *value),
            SrcStmt::Update {
                array,
                index,
                op,
                value,
            } => self.lower_update(*array, index, *op, *value),
            SrcStmt::Yield { value } => self.lower_yield(*value),
        }
    }

    /// Number of firings at which a store with index `e` produces a value
    /// (its rate): the product of trips of the loops the index varies over.
    fn store_elems(&self, e: &AffineExpr, variant: bool) -> f64 {
        if e.is_constant() {
            return 1.0;
        }
        let deepest = e.innermost_var().expect("non-constant").0;
        let total = self.trip_product(|d| d <= deepest);
        total * if variant { f64::from(self.unroll) } else { 1.0 }
    }

    fn lower_store(&mut self, array: crate::ArrayId, index: &Index, value: crate::ExprId) {
        let variant = self.lane_variant(value);
        let lanes = if variant { self.unroll } else { 1 };
        let eb = self.elem_bytes_of(array);
        let port = match index {
            Index::Affine(e) => {
                if let Some(port) = (!self.join_fallback)
                    .then(|| self.join_window(&mut Dir::Out, array, e, variant))
                    .flatten()
                {
                    port
                } else {
                    let total = self.store_elems(e, variant);
                    let pattern = self.affine_pattern(e, eb, total);
                    let source = if self.join_fallback {
                        StreamSource::ControlCore
                    } else {
                        StreamSource::Memory(self.mem_of(array))
                    };
                    let port = self.push_out_stream(Stream {
                        port: 0,
                        dir: StreamDir::Write,
                        elem_bytes: eb,
                        lanes,
                        pattern,
                        source,
                        to_fabric: true,
                    });
                    if !self.join_fallback {
                        self.window_out.push(WindowGroup {
                            array,
                            base: e.clone(),
                            variant,
                            port,
                            taps: 1,
                        });
                    }
                    port
                }
            }
            Index::Indirect {
                index_array,
                index_expr,
            } => {
                let total = self.instances * f64::from(lanes);
                if self.cfg.indirect {
                    self.used_indirect = true;
                    let idx_eb = self.elem_bytes_of(*index_array);
                    let idx_pattern = self.affine_pattern(index_expr, idx_eb, total);
                    self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: idx_eb,
                        lanes,
                        pattern: idx_pattern,
                        source: StreamSource::Memory(self.mem_of(*index_array)),
                        to_fabric: false,
                    });
                    self.push_out_stream(Stream {
                        port: 0,
                        dir: StreamDir::Write,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern {
                            elems_per_command: total,
                            commands: 1,
                            stride_bytes: eb.into(),
                            inductive: false,
                            indirect: true,
                        },
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    })
                } else {
                    self.ctrl_ops += SCALAR_INDIRECT_COST * total;
                    self.push_out_stream(Stream {
                        port: 0,
                        dir: StreamDir::Write,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern {
                            elems_per_command: total,
                            commands: 1,
                            stride_bytes: eb.into(),
                            inductive: false,
                            indirect: true,
                        },
                        source: StreamSource::ControlCore,
                        to_fabric: true,
                    })
                }
            }
        };
        for lane in 0..lanes {
            let v = self.lower_expr(value, lane);
            let w = self.dfg.width(v);
            self.dfg.push(DfgOp::Output { port, input: v }, w);
        }
    }

    fn lower_update(
        &mut self,
        array: crate::ArrayId,
        index: &Index,
        op: Opcode,
        value: crate::ExprId,
    ) {
        let eb = self.elem_bytes_of(array);
        match index {
            Index::Affine(e) => {
                // Repetitive in-place update (§IV-D, Fig 7b): if the index
                // is invariant over some outer loop and the updated slice
                // fits the sync buffers, route data on-fabric across outer
                // iterations instead of through memory.
                let variant = self.lane_variant(value) || {
                    self.unrolled.is_some_and(|uv| e.stride_of(uv) != 0)
                };
                let lanes = if variant { self.unroll } else { 1 };
                let slice_elems = self.store_elems(e, variant)
                    / self.trip_product(|d| {
                        e.stride_of(LoopVar(d)) == 0 && self.varies_below(e, d)
                    });
                let slice_bytes = slice_elems * f64::from(eb);
                let invariant_outer = (0..self.region.loops.len())
                    .any(|d| e.stride_of(LoopVar(d)) == 0 && self.varies_below(e, d));
                let fits = slice_bytes <= self.features.sync_capacity_bytes as f64;

                let total = self.instances * f64::from(lanes);
                if self.cfg.forward && invariant_outer && fits {
                    // First-read + final-write touch memory; intermediate
                    // traffic is forwarded.
                    let out_port = self.push_out_stream(Stream {
                        port: 0,
                        dir: StreamDir::Write,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern::linear(
                            slice_elems,
                            e.stride_of(LoopVar(self.region.loops.len() - 1))
                                * i64::from(eb),
                        ),
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    });
                    let in_port = self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern::linear(total, eb.into()),
                        source: StreamSource::Forward {
                            from_region: self.region_idx,
                            from_port: out_port,
                        },
                        to_fabric: true,
                    });
                    self.forwarded_bytes += 2.0 * f64::from(eb) * (total - slice_elems).max(0.0);
                    self.emit_update_compute(in_port, op, value, lanes, out_port, eb);
                } else {
                    // Plain read-modify-write through memory, plus a fence
                    // per outer iteration.
                    let pattern = self.affine_pattern(e, eb, total);
                    let in_port = self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: eb,
                        lanes,
                        pattern,
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    });
                    let out_port = self.push_out_stream(Stream {
                        port: 0,
                        dir: StreamDir::Write,
                        elem_bytes: eb,
                        lanes,
                        pattern,
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    });
                    self.ctrl_ops += self.trip_product(|d| d + 1 < self.region.loops.len());
                    self.emit_update_compute(in_port, op, value, lanes, out_port, eb);
                }
            }
            Index::Indirect {
                index_array,
                index_expr,
            } => {
                let lanes = self.unroll;
                let total = self.instances * f64::from(lanes);
                if self.cfg.atomic_update {
                    // In-bank atomic update: index stream + value stream;
                    // no read-back into the fabric (§III-A).
                    self.used_atomic = true;
                    self.used_indirect = true;
                    let idx_eb = self.elem_bytes_of(*index_array);
                    let idx_pattern = self.affine_pattern(index_expr, idx_eb, total);
                    self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: idx_eb,
                        lanes,
                        pattern: idx_pattern,
                        source: StreamSource::Memory(self.mem_of(*index_array)),
                        to_fabric: false,
                    });
                    let out_port = self.push_out_stream(Stream {
                        port: 0,
                        dir: StreamDir::AtomicUpdate,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern {
                            elems_per_command: total,
                            commands: 1,
                            stride_bytes: eb.into(),
                            inductive: false,
                            indirect: true,
                        },
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    });
                    for lane in 0..lanes {
                        let v = self.lower_expr(value, lane);
                        let w = self.dfg.width(v);
                        self.dfg.push(
                            DfgOp::Output {
                                port: out_port,
                                input: v,
                            },
                            w,
                        );
                    }
                } else if self.cfg.indirect {
                    // Gather → compute → scatter; read-modify-write hazards
                    // serialize through the memory round trip.
                    let in_port = self.load_port(array, index, true);
                    let out_port = self.push_out_stream(Stream {
                        port: 0,
                        dir: StreamDir::Write,
                        elem_bytes: eb,
                        lanes,
                        pattern: StreamPattern {
                            elems_per_command: total,
                            commands: 1,
                            stride_bytes: eb.into(),
                            inductive: false,
                            indirect: true,
                        },
                        source: StreamSource::Memory(self.mem_of(array)),
                        to_fabric: true,
                    });
                    let rec =
                        self.emit_update_compute(in_port, op, value, lanes, out_port, eb);
                    self.dfg.add_recurrence(Recurrence {
                        through: rec,
                        independent_chains: 1.0,
                    });
                } else {
                    // Full scalar fallback on the control core.
                    self.ctrl_ops += SCALAR_UPDATE_COST * total;
                }
            }
        }
    }

    /// Emits `out[port] = in[port] ⊕ value` per lane; returns the last
    /// compute node (for recurrence bookkeeping).
    fn emit_update_compute(
        &mut self,
        in_port: usize,
        op: Opcode,
        value: crate::ExprId,
        lanes: u16,
        out_port: usize,
        eb: u32,
    ) -> OpId {
        let width = BitWidth::new(u16::try_from(eb * 8).expect("element widths fit u16"))
            .expect("element widths are powers of two");
        let mut last = OpId(0);
        for lane in 0..lanes {
            let old = self.dfg.push(DfgOp::Input { port: in_port }, width);
            let v = self.lower_expr(value, lane);
            let new = self.dfg.push(
                DfgOp::Compute {
                    op,
                    ins: vec![old, v],
                },
                width,
            );
            self.dfg.push(
                DfgOp::Output {
                    port: out_port,
                    input: new,
                },
                width,
            );
            last = new;
        }
        last
    }

    fn lower_yield(&mut self, value: crate::ExprId) {
        let rate = self.region.rate_level(value);
        let total = match rate {
            None => 1.0,
            Some(v) => self.trip_product(|d| d <= v.0),
        };
        let v = self.lower_expr(value, 0);
        let w = self.dfg.width(v);
        let source = if self.cfg.forward {
            StreamSource::Forward {
                from_region: self.region_idx,
                from_port: self.out_streams.len(),
            }
        } else {
            StreamSource::Memory(MemClass::MainMemory)
        };
        let port = self.push_out_stream(Stream {
            port: 0,
            dir: StreamDir::Write,
            elem_bytes: w.bytes(),
            lanes: 1,
            pattern: StreamPattern::linear(total, w.bytes().into()),
            source,
            to_fabric: true,
        });
        self.yield_ports.push(port);
        self.dfg.push(DfgOp::Output { port, input: v }, w);
    }

    fn lower_expr(&mut self, id: crate::ExprId, lane: u16) -> OpId {
        let variant = self.lane_variant(id);
        let memo_lane = if variant { lane } else { 0 };
        if let Some(v) = self.memo.get(&(id.0, memo_lane)) {
            return *v;
        }
        let out = match self.region.expr(id).clone() {
            SrcExpr::Load { array, index } => {
                // Loop-invariant loads (constant index, e.g. filter
                // coefficients) are preloaded by the control core into the
                // PE configuration as constant operands instead of wasting
                // a vector port on a stride-0 stream.
                if matches!(&index, Index::Affine(e) if e.is_constant()) {
                    self.ctrl_ops += 2.0;
                    self.dfg.push(DfgOp::Const(0), self.width_of(array))
                } else {
                    let port = self.load_port(array, &index, variant);
                    self.dfg.push(DfgOp::Input { port }, self.width_of(array))
                }
            }
            SrcExpr::Imm(v) => self.dfg.push(DfgOp::Const(v), BitWidth::B64),
            SrcExpr::Un { op, a } => {
                let a = self.lower_expr(a, lane);
                let w = self.dfg.width(a);
                self.dfg.push(DfgOp::Compute { op, ins: vec![a] }, w)
            }
            SrcExpr::Bin { op, a, b } => {
                let a = self.lower_expr(a, lane);
                let b = self.lower_expr(b, lane);
                let w = self.dfg.width(a).max(self.dfg.width(b));
                let w = if op.is_predicate() { BitWidth::B8 } else { w };
                self.dfg.push(DfgOp::Compute { op, ins: vec![a, b] }, w)
            }
            SrcExpr::Mux { cond, t, f } => {
                let c = self.lower_expr(cond, lane);
                let t = self.lower_expr(t, lane);
                let f = self.lower_expr(f, lane);
                let w = self.dfg.width(t).max(self.dfg.width(f));
                self.dfg.push(
                    DfgOp::Compute {
                        op: Opcode::Select,
                        ins: vec![c, t, f],
                    },
                    w,
                )
            }
            SrcExpr::Reduce { op, body, level } => self.lower_reduce(op, body, level, lane),
            SrcExpr::Consume { region, yield_idx } => {
                let key = format!("consume:{region}:{yield_idx}");
                if let Some(port) = self.load_ports.get(&key) {
                    let port = *port;
                    self.dfg.push(DfgOp::Input { port }, BitWidth::B64)
                } else {
                    let rate_total = self.trip_product(|d| d == 0);
                    let from_port = self.yield_ports_by_region[region]
                        .get(yield_idx)
                        .copied()
                        .unwrap_or(0);
                    let source = if self.cfg.forward {
                        StreamSource::Forward {
                            from_region: region,
                            from_port,
                        }
                    } else {
                        StreamSource::Memory(MemClass::MainMemory)
                    };
                    let port = self.push_in_stream(Stream {
                        port: 0,
                        dir: StreamDir::Read,
                        elem_bytes: 8,
                        lanes: 1,
                        pattern: StreamPattern::linear(rate_total, 8),
                        source,
                        to_fabric: true,
                    });
                    self.load_ports.insert(key, port);
                    self.dfg.push(DfgOp::Input { port }, BitWidth::B64)
                }
            }
        };
        self.memo.insert((id.0, memo_lane), out);
        out
    }

    /// Whether expression `e` varies in any loop deeper than depth `d`.
    fn varies_below(&self, e: &AffineExpr, d: usize) -> bool {
        e.vars().any(|v| v.0 > d) && self.trips.get(d).copied().unwrap_or(1.0) > 1.0
    }

    fn lower_reduce(&mut self, op: Opcode, body: crate::ExprId, level: LoopVar, lane: u16) -> OpId {
        // Firings between resets: the trips of every loop at `level` or
        // deeper (already divided by the unroll factor where applicable).
        let reset_every = self
            .trip_product(|d| d >= level.0)
            .round()
            .max(1.0) as u64;
        let push_accum = |this: &mut Self, l: u16| -> OpId {
            let b = this.lower_expr(body, l);
            let w = this.dfg.width(b);
            let acc = this.dfg.push(
                DfgOp::Accum {
                    op,
                    input: b,
                    reset_every,
                },
                w,
            );
            this.dfg.add_recurrence(Recurrence {
                through: acc,
                independent_chains: 1.0,
            });
            acc
        };
        // When the unrolled loop *is* the reduced loop, each lane holds a
        // partial accumulator and a combine tree merges them (the classic
        // dot-product unrolling of Fig 2). Otherwise — the reduction is
        // nested deeper than the unrolled loop — each lane simply carries
        // its own independent accumulator.
        if self.unrolled != Some(level) {
            return push_accum(self, lane);
        }
        let mut frontier: Vec<OpId> = (0..self.unroll).map(|l| push_accum(self, l)).collect();
        let comb = combine_op(op);
        while frontier.len() > 1 {
            let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
            for pair in frontier.chunks(2) {
                if pair.len() == 2 {
                    let w = self.dfg.width(pair[0]);
                    next.push(self.dfg.push(
                        DfgOp::Compute {
                            op: comb,
                            ins: vec![pair[0], pair[1]],
                        },
                        w,
                    ));
                } else {
                    next.push(pair[0]);
                }
            }
            frontier = next;
        }
        frontier[0]
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};

    use super::*;
    use crate::{JoinSide, KernelBuilder, TripCount};

    fn features() -> FeatureSet {
        presets::dse_initial().features()
    }

    fn dot(n: u64) -> Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, n, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    #[test]
    fn dot_scalar_compiles() {
        let ck = compile_kernel(&dot(1024), &TransformConfig::fallback(), &features()).unwrap();
        let r = &ck.regions[0];
        assert_eq!(r.instances, 1024.0);
        assert_eq!(r.in_streams.len(), 2);
        assert_eq!(r.out_streams.len(), 1);
        // mul + accum
        assert_eq!(r.dfg.inst_count(), 2);
        assert_eq!(r.out_streams[0].pattern.total_elems(), 1.0);
        assert_eq!(r.dfg.recurrences().len(), 1);
    }

    #[test]
    fn dot_unrolled_by_4() {
        let cfg = TransformConfig {
            unroll: 4,
            ..TransformConfig::fallback()
        };
        let ck = compile_kernel(&dot(1024), &cfg, &features()).unwrap();
        let r = &ck.regions[0];
        assert_eq!(r.unroll, 4);
        assert_eq!(r.instances, 256.0);
        // 4 muls + 4 accums + 3 combine adds
        assert_eq!(r.dfg.inst_count(), 11);
        assert_eq!(r.dfg.recurrences().len(), 4);
        // Streams are 4-lane wide; total elements conserved.
        assert_eq!(r.in_streams[0].lanes, 4);
        assert_eq!(r.in_streams[0].pattern.total_elems(), 1024.0);
    }

    #[test]
    fn mm_stream_shapes() {
        // c[i][j] = Σ_k a[i][k] * b[k][j], n = 8
        let n = 8u64;
        let mut k = KernelBuilder::new("mm");
        let a = k.array("a", BitWidth::B64, n * n, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, n * n, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, n * n, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let j = r.for_loop(TripCount::fixed(n), true);
        let kk = r.for_loop(TripCount::fixed(n), false);
        let va = r.load(
            a,
            AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(kk)),
        );
        let vb = r.load(
            b,
            AffineExpr::var(kk).scaled(n as i64).plus(&AffineExpr::var(j)),
        );
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, kk);
        r.store(
            c,
            AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(j)),
            acc,
        );
        k.finish_region(r);
        let kernel = k.build().unwrap();

        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &features()).unwrap();
        let r = &ck.regions[0];
        assert_eq!(r.instances, 512.0);
        // a stream: stride over k is 1 elem → contiguous; one command per i
        // (depth 3 ⇒ commands = trips of loop 0).
        let sa = &r.in_streams[0];
        assert_eq!(sa.pattern.commands, 8);
        assert_eq!(sa.pattern.stride_bytes, 8);
        // b stream: innermost (k) stride is n elems → strided.
        let sb = &r.in_streams[1];
        assert_eq!(sb.pattern.stride_bytes, 64);
        // c written once per (i, j): 64 elements.
        assert_eq!(r.out_streams[0].pattern.total_elems(), 64.0);
    }

    #[test]
    fn indirect_lowering_and_fallback() {
        // s += a[b[i]]
        let mut k = KernelBuilder::new("gather");
        let a = k.array("a", BitWidth::B64, 4096, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 1024, MemClass::MainMemory);
        let s = k.array("s", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(1024), true);
        let v = r.load_indirect(a, b, AffineExpr::var(i));
        let acc = r.reduce(Opcode::Add, v, i);
        r.store(s, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();

        let on = compile_kernel(
            &kernel,
            &TransformConfig {
                indirect: true,
                ..TransformConfig::fallback()
            },
            &features(),
        )
        .unwrap();
        assert!(on.requires.indirect_memory);
        assert_eq!(on.regions[0].ctrl_ops, 0.0);
        // Index stream (not to fabric) + data stream.
        assert_eq!(on.regions[0].in_streams.len(), 2);
        assert!(!on.regions[0].in_streams[0].to_fabric);
        assert!(on.regions[0].in_streams[1].pattern.indirect);

        let off = compile_kernel(&kernel, &TransformConfig::fallback(), &features()).unwrap();
        assert!(!off.requires.indirect_memory);
        assert!(off.regions[0].ctrl_ops > 0.0);
        assert!(matches!(
            off.regions[0].in_streams[0].source,
            StreamSource::ControlCore
        ));
    }

    #[test]
    fn histogram_atomic_vs_fallbacks() {
        let mut k = KernelBuilder::new("hist");
        let h = k.array("h", BitWidth::B64, 1024, MemClass::Scratchpad);
        let b = k.array("b", BitWidth::B64, 65536, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(65536), true);
        let one = r.imm(1);
        r.update_indirect(h, b, AffineExpr::var(i), Opcode::Add, one);
        k.finish_region(r);
        let kernel = k.build().unwrap();

        let atomic = compile_kernel(
            &kernel,
            &TransformConfig {
                indirect: true,
                atomic_update: true,
                ..TransformConfig::fallback()
            },
            &features(),
        )
        .unwrap();
        assert!(atomic.requires.atomic_update);
        assert!(atomic.regions[0]
            .out_streams
            .iter()
            .any(|s| s.dir == StreamDir::AtomicUpdate));
        assert!(atomic.regions[0].dfg.recurrences().is_empty());

        let gather = compile_kernel(
            &kernel,
            &TransformConfig {
                indirect: true,
                ..TransformConfig::fallback()
            },
            &features(),
        )
        .unwrap();
        assert!(!gather.requires.atomic_update);
        assert_eq!(gather.regions[0].dfg.recurrences().len(), 1);

        let scalar = compile_kernel(&kernel, &TransformConfig::fallback(), &features()).unwrap();
        assert!(scalar.regions[0].ctrl_ops >= 6.0 * 65536.0);
    }

    #[test]
    fn join_stream_join_vs_fallback() {
        let mut k = KernelBuilder::new("join");
        let k0 = k.array("k0", BitWidth::B64, 768, MemClass::MainMemory);
        let v0 = k.array("v0", BitWidth::B64, 768, MemClass::MainMemory);
        let k1 = k.array("k1", BitWidth::B64, 768, MemClass::MainMemory);
        let v1 = k.array("v1", BitWidth::B64, 768, MemClass::MainMemory);
        let out = k.array("out", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let j = r.join_loop(
            JoinSide {
                key: k0,
                payloads: vec![v0],
                len: 768,
            },
            JoinSide {
                key: k1,
                payloads: vec![v1],
                len: 768,
            },
            0.5,
        );
        let a = r.load(v0, AffineExpr::var(j));
        let b = r.load(v1, AffineExpr::var(j));
        let p = r.bin(Opcode::Mul, a, b);
        let acc = r.reduce(Opcode::Add, p, j);
        r.store(out, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();

        let sj = compile_kernel(
            &kernel,
            &TransformConfig {
                stream_join: true,
                ..TransformConfig::fallback()
            },
            &features(),
        )
        .unwrap();
        assert_eq!(sj.requires.stream_join_pes, 1);
        assert!(sj.regions[0].dfg.has_stream_join());
        assert_eq!(sj.regions[0].ctrl_ops, 0.0);

        let fb = compile_kernel(&kernel, &TransformConfig::fallback(), &features()).unwrap();
        assert_eq!(fb.requires.stream_join_pes, 0);
        assert!(!fb.regions[0].dfg.has_stream_join());
        assert!(fb.regions[0].ctrl_ops > 0.0);
    }

    #[test]
    fn repetitive_update_forwards_when_it_fits() {
        // c[j] += a[i] * b[j] — Fig 7b.
        let (n, m) = (64u64, 32u64);
        let mut k = KernelBuilder::new("repupd");
        let a = k.array("a", BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, m, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, m, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), false);
        let j = r.for_loop(TripCount::fixed(m), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(j));
        let p = r.bin(Opcode::Mul, va, vb);
        r.update(c, AffineExpr::var(j), Opcode::Add, p);
        k.finish_region(r);
        let kernel = k.build().unwrap();

        let fwd = compile_kernel(
            &kernel,
            &TransformConfig {
                forward: true,
                ..TransformConfig::fallback()
            },
            &features(),
        )
        .unwrap();
        assert!(fwd.forwarded_bytes > 0.0);
        assert!(fwd.regions[0]
            .in_streams
            .iter()
            .any(|s| matches!(s.source, StreamSource::Forward { .. })));

        let plain = compile_kernel(&kernel, &TransformConfig::fallback(), &features()).unwrap();
        assert_eq!(plain.forwarded_bytes, 0.0);
        assert!(plain.regions[0].memory_bytes() > fwd.regions[0].memory_bytes());
    }

    #[test]
    fn producer_consumer_pipelines() {
        let mut k = KernelBuilder::new("pc");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 64, MemClass::MainMemory);
        let d = k.array("d", BitWidth::B64, 64, MemClass::MainMemory);
        let mut r0 = k.region("produce", 1.0);
        let i0 = r0.for_loop(TripCount::fixed(16), false);
        let j0 = r0.for_loop(TripCount::fixed(64), true);
        let va = r0.load(a, AffineExpr::var(j0));
        let acc = r0.reduce(Opcode::Add, va, j0);
        let _ = i0;
        r0.yield_value(acc);
        let r0i = k.finish_region(r0);
        let mut r1 = k.region("consume", 1.0);
        let _i1 = r1.for_loop(TripCount::fixed(16), false);
        let j1 = r1.for_loop(TripCount::fixed(64), true);
        let v = r1.consume(r0i, 0);
        let vb = r1.load(b, AffineExpr::var(j1));
        let p = r1.bin(Opcode::Mul, v, vb);
        r1.store(d, AffineExpr::var(j1), p);
        k.finish_region(r1);
        let kernel = k.build().unwrap();

        let fwd = compile_kernel(
            &kernel,
            &TransformConfig {
                forward: true,
                ..TransformConfig::fallback()
            },
            &features(),
        )
        .unwrap();
        assert!(fwd.regions[0].pipelined_with_next);
        assert!(fwd.regions[1]
            .in_streams
            .iter()
            .any(|s| matches!(s.source, StreamSource::Forward { from_region: 0, .. })));

        let plain = compile_kernel(&kernel, &TransformConfig::fallback(), &features()).unwrap();
        assert!(!plain.regions[0].pipelined_with_next);
    }

    #[test]
    fn loads_are_deduplicated() {
        // a[i] used twice → one stream.
        let mut k = KernelBuilder::new("dedupe");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 64, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(64), true);
        let v1 = r.load(a, AffineExpr::var(i));
        let v2 = r.load(a, AffineExpr::var(i));
        let s = r.bin(Opcode::Mul, v1, v2);
        r.store(c, AffineExpr::var(i), s);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &features()).unwrap();
        assert_eq!(ck.regions[0].in_streams.len(), 1);
    }

    #[test]
    fn inst_counts_accumulate_into_requirements() {
        let ck = compile_kernel(&dot(64), &TransformConfig::fallback(), &features()).unwrap();
        assert_eq!(ck.requires.instruction_slots, 2);
        assert!(ck.requires.ops.contains(Opcode::Mul));
        assert!(ck.requires.ops.contains(Opcode::Add));
    }
}
