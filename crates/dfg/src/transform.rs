//! Modular transformation configuration and version enumeration (§IV-E).
//!
//! Each hardware-dependent transformation is a *modular feature*: before
//! applying it the compiler checks that the ADG advertises the capability,
//! and a scalar fallback always exists so compilation never fails (§IV-C).
//! The version enumerator produces one [`TransformConfig`] per viable
//! combination; the scheduler and performance model then pick the best
//! *legal* version (§V step 2d).

use dsagen_adg::FeatureSet;
use serde::{Deserialize, Serialize};

use crate::{Kernel, LoopKind};

/// The set of transformations applied to one compiled kernel version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransformConfig {
    /// Vectorization degree of the innermost parallel loop (§IV-E
    /// "Resource Allocation": the degree is explored, since whether an
    /// efficient schedule exists at each degree is unknown a priori).
    pub unroll: u16,
    /// Use hardware stream-join for control-dependent memory access
    /// (§IV-E; requires dynamic-scheduled PEs with stream-join support).
    pub stream_join: bool,
    /// Encode `a[b[i]]` idioms as indirect streams (§IV-E; requires an
    /// indirect memory controller).
    pub indirect: bool,
    /// Vectorize in-place indirect updates through in-bank atomic-update
    /// units.
    pub atomic_update: bool,
    /// Apply the generic §IV-D optimizations: producer-consumer forwarding
    /// and repetitive in-place update buffering.
    pub forward: bool,
    /// Group constant-offset taps of one array into sliding-window vector
    /// ports (on by default; an ablation knob for the port-pressure design
    /// choice).
    pub window_ports: bool,
    /// Pack narrow (≤32-bit) data SIMD-style into decomposable FUs and
    /// switches (§III-A: "FUs that can be decomposed into smaller
    /// power-of-two functions"). Requires decomposable hardware.
    pub sub_word: bool,
}

impl TransformConfig {
    /// The guaranteed-fallback configuration: no unrolling, every
    /// hardware-dependent transformation disabled.
    #[must_use]
    pub fn fallback() -> Self {
        TransformConfig {
            unroll: 1,
            stream_join: false,
            indirect: false,
            atomic_update: false,
            forward: false,
            window_ports: true,
            sub_word: false,
        }
    }

    /// Everything enabled at the given unroll degree.
    #[must_use]
    pub fn full(unroll: u16) -> Self {
        TransformConfig {
            unroll,
            stream_join: true,
            indirect: true,
            atomic_update: true,
            forward: true,
            window_ports: true,
            sub_word: true,
        }
    }
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig::fallback()
    }
}

/// Hardware requirements a compiled kernel version imposes; a version can
/// only be scheduled onto ADGs that satisfy them.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Requirements {
    /// Needs at least this many PEs with stream-join support.
    pub stream_join_pes: u32,
    /// Needs an indirect memory controller.
    pub indirect_memory: bool,
    /// Needs in-bank atomic update.
    pub atomic_update: bool,
    /// Needs at least this many PE instruction slots.
    pub instruction_slots: u32,
    /// Needs this union of opcodes somewhere in the fabric.
    pub ops: dsagen_adg::OpSet,
    /// Needs a programmable control core (the version executes scalar
    /// fallback work; an FSM sequencer cannot, §III-C).
    pub scalar_core: bool,
    /// Needs decomposable FUs/switches (sub-word SIMD packing).
    pub decomposable: bool,
}

impl Requirements {
    /// Whether `features` satisfies every requirement.
    #[must_use]
    pub fn satisfied_by(&self, features: &FeatureSet) -> bool {
        features.stream_join_pes >= self.stream_join_pes
            && (!self.indirect_memory || features.indirect_memory)
            && (!self.atomic_update || features.atomic_update)
            && features.total_instruction_slots >= self.instruction_slots
            && features.op_union.is_superset(self.ops)
            && (!self.scalar_core || features.programmable_control)
            && (!self.decomposable || features.decomposable)
    }
}

/// Which transformations could possibly pay off for a kernel, from source
/// analysis alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelIdioms {
    /// The kernel contains a merge-join loop.
    pub has_join: bool,
    /// The kernel contains indirect accesses.
    pub has_indirect: bool,
    /// The kernel contains indirect in-place updates.
    pub has_indirect_update: bool,
    /// The kernel has a parallel innermost loop (unrolling is meaningful).
    pub has_parallel_loop: bool,
    /// The kernel has producer-consumer or repetitive-update structure.
    pub has_forwarding: bool,
    /// Every array element is 32 bits or narrower (sub-word packing is
    /// meaningful).
    pub narrow_data: bool,
}

impl KernelIdioms {
    /// Analyzes a kernel's source form.
    #[must_use]
    pub fn analyze(kernel: &Kernel) -> Self {
        let mut idioms = KernelIdioms {
            narrow_data: !kernel.arrays.is_empty()
                && kernel.arrays.iter().all(|a| a.elem.bits() <= 32),
            ..KernelIdioms::default()
        };
        for region in &kernel.regions {
            idioms.has_join |= region.join_loop().is_some();
            idioms.has_indirect |= region.has_indirect_access();
            idioms.has_indirect_update |= region.stmts.iter().any(|s| {
                matches!(
                    s,
                    crate::SrcStmt::Update { index, .. } if index.is_indirect()
                )
            });
            idioms.has_parallel_loop |= region
                .loops
                .iter()
                .any(|l| l.parallel && matches!(l.kind, LoopKind::For { .. }));
            idioms.has_forwarding |= region
                .stmts
                .iter()
                .any(|s| matches!(s, crate::SrcStmt::Yield { .. }))
                || region.has_update();
        }
        idioms
    }
}

/// Enumerates candidate transformation configurations for a kernel on
/// hardware with `features`, most aggressive first. The scalar fallback is
/// always last, so the list is never empty and compilation always succeeds
/// (§IV-C "we ensure that there is always a fallback").
#[must_use]
pub fn enumerate_configs(
    kernel: &Kernel,
    features: &FeatureSet,
    max_unroll: u16,
) -> Vec<TransformConfig> {
    let idioms = KernelIdioms::analyze(kernel);
    let unrolls: Vec<u16> = {
        let mut u = 1u16;
        let mut v = Vec::new();
        while u <= max_unroll {
            v.push(u);
            u *= 2;
        }
        v.reverse(); // most aggressive first
        if !idioms.has_parallel_loop {
            v = vec![1];
        }
        v
    };

    let join_opts: &[bool] = if idioms.has_join && features.stream_join_pes > 0 {
        &[true, false]
    } else {
        &[false]
    };
    let indirect_opts: &[bool] = if idioms.has_indirect && features.indirect_memory {
        &[true, false]
    } else {
        &[false]
    };

    let sub_word_opts: &[bool] = if idioms.narrow_data && features.decomposable {
        &[true, false]
    } else {
        &[false]
    };

    let mut out = Vec::new();
    for &unroll in &unrolls {
        for &stream_join in join_opts {
            for &indirect in indirect_opts {
                for &sub_word in sub_word_opts {
                    let atomic_update =
                        indirect && idioms.has_indirect_update && features.atomic_update;
                    out.push(TransformConfig {
                        unroll,
                        stream_join,
                        indirect,
                        atomic_update,
                        forward: idioms.has_forwarding,
                        window_ports: true,
                        sub_word,
                    });
                }
            }
        }
    }
    let fallback = TransformConfig::fallback();
    if !out.contains(&fallback) {
        out.push(fallback);
    }
    out
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};

    use super::*;
    use crate::{AffineExpr, JoinSide, KernelBuilder, MemClass, TripCount};

    fn dense_kernel() -> Kernel {
        let mut k = KernelBuilder::new("dense");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(64), true);
        let v = r.load(a, AffineExpr::var(i));
        let w = r.bin(Opcode::Add, v, v);
        r.store(a, AffineExpr::var(i), w);
        k.finish_region(r);
        k.build().unwrap()
    }

    fn join_kernel() -> Kernel {
        let mut k = KernelBuilder::new("join");
        let k0 = k.array("k0", BitWidth::B64, 768, MemClass::MainMemory);
        let k1 = k.array("k1", BitWidth::B64, 768, MemClass::MainMemory);
        let out = k.array("out", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("j", 1.0);
        let j = r.join_loop(
            JoinSide {
                key: k0,
                payloads: vec![],
                len: 768,
            },
            JoinSide {
                key: k1,
                payloads: vec![],
                len: 768,
            },
            0.3,
        );
        let a = r.load(k0, AffineExpr::var(j));
        let b = r.load(k1, AffineExpr::var(j));
        let p = r.bin(Opcode::Mul, a, b);
        let acc = r.reduce(Opcode::Add, p, j);
        r.store(out, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    #[test]
    fn dense_kernel_gets_unroll_sweep_only() {
        let feats = presets::softbrain().features();
        let configs = enumerate_configs(&dense_kernel(), &feats, 8);
        assert!(configs.iter().all(|c| !c.stream_join && !c.indirect));
        let unrolls: Vec<u16> = configs.iter().map(|c| c.unroll).collect();
        assert_eq!(unrolls, vec![8, 4, 2, 1]);
    }

    #[test]
    fn join_kernel_on_spu_gets_stream_join_variants() {
        let feats = presets::spu().features();
        let configs = enumerate_configs(&join_kernel(), &feats, 4);
        assert!(configs.iter().any(|c| c.stream_join));
        assert!(configs.iter().any(|c| !c.stream_join));
    }

    #[test]
    fn join_kernel_on_softbrain_has_no_stream_join() {
        let feats = presets::softbrain().features();
        let configs = enumerate_configs(&join_kernel(), &feats, 4);
        assert!(configs.iter().all(|c| !c.stream_join));
        // The fallback is always present.
        assert!(configs.contains(&TransformConfig::fallback()));
    }

    #[test]
    fn fallback_always_present() {
        for adg in [presets::softbrain(), presets::spu(), presets::triggered()] {
            let feats = adg.features();
            for kernel in [dense_kernel(), join_kernel()] {
                let configs = enumerate_configs(&kernel, &feats, 8);
                assert!(
                    configs.contains(&TransformConfig::fallback()),
                    "{} on {}",
                    kernel.name,
                    adg.name()
                );
            }
        }
    }

    #[test]
    fn requirements_gate_on_features() {
        let mut req = Requirements {
            indirect_memory: true,
            ..Requirements::default()
        };
        assert!(!req.satisfied_by(&presets::softbrain().features()));
        assert!(req.satisfied_by(&presets::spu().features()));
        req.stream_join_pes = 1;
        assert!(req.satisfied_by(&presets::spu().features()));
        req.stream_join_pes = 10_000;
        assert!(!req.satisfied_by(&presets::spu().features()));
    }

    #[test]
    fn idiom_analysis() {
        let i = KernelIdioms::analyze(&join_kernel());
        assert!(i.has_join);
        assert!(!i.has_indirect);
        let d = KernelIdioms::analyze(&dense_kernel());
        assert!(!d.has_join);
        assert!(d.has_parallel_loop);
    }
}
