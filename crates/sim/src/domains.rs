//! Fault-isolation **recovery domains**: a partition of a scheduled
//! kernel's regions by the fabric resources their mapping touches.
//!
//! Two regions belong to the same domain when a single hardware fault (or
//! the repair that follows it) can perturb both:
//!
//! * they share a **fault-plane resource** — a placed node, a routed
//!   link, or one region routes *through* a node the other has an entity
//!   placed on. Runtime faults strike exactly these resources
//!   ([`crate::runtime`] resolves victims against placements and routes).
//!   Two regions whose routes merely turn through the same *switch* stay
//!   in separate domains: the engine models no switch-level timing
//!   interaction (feasible schedules never share a link between distinct
//!   values), so a fault on one region's link cannot perturb the other.
//!   The one victim class that can still afflict both — a stuck shared
//!   switch — resolves to a region set spanning domains, which
//!   [`RecoveryDomains::domain_of_regions`] reports as `None` and
//!   recovery handles at whole-kernel scope; and
//! * they execute in the **same pipeline group** and bind streams to the
//!   same **memory node** — the engine arbitrates one request per memory
//!   per cycle across all live streams, so co-resident regions sharing a
//!   memory influence each other's cycle-by-cycle timing even when their
//!   fabric footprints are disjoint. Regions in *different* groups never
//!   share a cycle (groups run sequentially), so memory sharing across
//!   groups does not merge domains: their group-local timelines stay
//!   independent.
//!
//! The partition is what lets recovery bound its blast radius: rollback
//! can be sliced to the afflicted domain
//! ([`crate::runtime::RuntimeSim::restore_scoped`]), repair can pin every
//! other domain's placements ([`dsagen_scheduler::repair_regions`]), and
//! the DSE can reward designs whose largest domain — the worst-case
//! recovery scope — stays small.

use std::collections::{BTreeMap, BTreeSet};

use dsagen_adg::{Adg, EdgeId, NodeId};
use dsagen_dfg::CompiledKernel;
use dsagen_scheduler::{Problem, Schedule};

use crate::engine::pipeline_groups;

/// One region's resource footprint: everything a fault or a repair of this
/// region can touch.
#[derive(Debug, Clone, Default)]
struct Footprint {
    /// Placed nodes (PEs, ports).
    nodes: BTreeSet<NodeId>,
    /// Nodes its routes turn through (including its own endpoints).
    turns: BTreeSet<NodeId>,
    /// Routed links.
    edges: BTreeSet<EdgeId>,
    /// Bound memory nodes (dynamic arbitration coupling).
    mems: BTreeSet<NodeId>,
}

/// The fault-isolation partition of a scheduled kernel's regions. Derived
/// from a concrete `(Adg, CompiledKernel, Schedule)` triple; recompute
/// after a repair changes the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryDomains {
    /// Domain id per region.
    region_domain: Vec<usize>,
    /// Regions per domain, each sorted ascending.
    domains: Vec<Vec<usize>>,
    /// Distinct fabric resources (nodes + links + memories) per domain.
    footprints: Vec<usize>,
}

impl RecoveryDomains {
    /// Partitions `kernel`'s regions into recovery domains under
    /// `schedule` on `adg`.
    #[must_use]
    pub fn derive(adg: &Adg, kernel: &CompiledKernel, schedule: &Schedule) -> Self {
        let problem = Problem::new(adg, kernel);
        let stream_mems = schedule.stream_memories(&problem);
        let n = kernel.regions.len();
        let groups = pipeline_groups(kernel);
        let mut region_group = vec![0usize; n];
        for (gi, group) in groups.iter().enumerate() {
            for &ri in group {
                region_group[ri] = gi;
            }
        }

        let mut feet: Vec<Footprint> = vec![Footprint::default(); n];
        for (i, ent) in problem.entities.iter().enumerate() {
            if let Some(node) = schedule.placement.get(i).copied().flatten() {
                feet[ent.region()].nodes.insert(node);
            }
        }
        for (idx, path) in &schedule.routes {
            let Some(ri) = problem
                .edges
                .get(*idx)
                .and_then(|v| problem.entities.get(v.src))
                .map(dsagen_scheduler::Entity::region)
            else {
                continue;
            };
            for eid in path {
                feet[ri].edges.insert(*eid);
                if let Some(e) = adg.edge(*eid) {
                    feet[ri].turns.insert(e.src);
                    feet[ri].turns.insert(e.dst);
                }
            }
        }
        for (&(ri, _, _), &mem) in &stream_mems {
            if ri < n {
                feet[ri].mems.insert(mem);
            }
        }

        // Union-find over regions.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi] = lo;
            }
        };
        for a in 0..n {
            for b in (a + 1)..n {
                // Shared placement, shared links, or one region routing
                // through the other's placed hardware couple the fault
                // plane; shared switches alone do not (no modelled timing
                // interaction, and the rare stuck-shared-switch victim
                // falls back to whole-kernel scope via
                // `domain_of_regions` returning `None`).
                let fault_shared = !feet[a].nodes.is_disjoint(&feet[b].nodes)
                    || !feet[a].edges.is_disjoint(&feet[b].edges)
                    || !feet[a].nodes.is_disjoint(&feet[b].turns)
                    || !feet[b].nodes.is_disjoint(&feet[a].turns);
                let mem_shared = region_group[a] == region_group[b]
                    && !feet[a].mems.is_disjoint(&feet[b].mems);
                if fault_shared || mem_shared {
                    union(&mut parent, a, b);
                }
            }
        }

        // Number domains by their smallest region index.
        let mut root_domain: BTreeMap<usize, usize> = BTreeMap::new();
        let mut region_domain = vec![0usize; n];
        for (ri, slot) in region_domain.iter_mut().enumerate() {
            let root = find(&mut parent, ri);
            let next = root_domain.len();
            *slot = *root_domain.entry(root).or_insert(next);
        }
        let mut domains: Vec<Vec<usize>> = vec![Vec::new(); root_domain.len()];
        for (ri, &d) in region_domain.iter().enumerate() {
            domains[d].push(ri);
        }
        let footprints = domains
            .iter()
            .map(|regions| {
                let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
                let mut edges: BTreeSet<EdgeId> = BTreeSet::new();
                for &ri in regions {
                    nodes.extend(&feet[ri].nodes);
                    nodes.extend(&feet[ri].turns);
                    nodes.extend(&feet[ri].mems);
                    edges.extend(&feet[ri].edges);
                }
                nodes.len() + edges.len()
            })
            .collect();
        RecoveryDomains {
            region_domain,
            domains,
            footprints,
        }
    }

    /// Number of domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the kernel has no regions at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Number of regions partitioned.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.region_domain.len()
    }

    /// Domain of one region.
    #[must_use]
    pub fn domain_of(&self, region: usize) -> Option<usize> {
        self.region_domain.get(region).copied()
    }

    /// The single domain containing every region of `regions`, or `None`
    /// when they span domains (defensive: the affected regions of one
    /// fault victim always share a domain by construction) or the list is
    /// empty.
    #[must_use]
    pub fn domain_of_regions(&self, regions: &[usize]) -> Option<usize> {
        let mut it = regions.iter().map(|&r| self.domain_of(r));
        let first = it.next().flatten()?;
        it.all(|d| d == Some(first)).then_some(first)
    }

    /// Regions of one domain (sorted ascending).
    #[must_use]
    pub fn regions_in(&self, domain: usize) -> &[usize] {
        self.domains.get(domain).map_or(&[], Vec::as_slice)
    }

    /// Distinct fabric resources (nodes, links, and memories) in one
    /// domain's footprint.
    #[must_use]
    pub fn footprint(&self, domain: usize) -> usize {
        self.footprints.get(domain).copied().unwrap_or(0)
    }

    /// The largest domain footprint — the worst-case recovery scope of
    /// this mapping, which the DSE reliability objective rewards keeping
    /// small.
    #[must_use]
    pub fn max_footprint(&self) -> usize {
        self.footprints.iter().copied().max().unwrap_or(0)
    }

    /// The largest number of regions in one domain.
    #[must_use]
    pub fn max_domain_regions(&self) -> usize {
        self.domains.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_scheduler::{schedule, SchedulerConfig};

    use super::*;

    fn dot(n: u64) -> dsagen_dfg::Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let c = k.array("c", dsagen_adg::BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(dsagen_adg::Opcode::Mul, va, vb);
        let acc = r.reduce(dsagen_adg::Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    #[test]
    fn single_region_kernel_is_one_domain() {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(256), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(s.is_legal());
        let d = RecoveryDomains::derive(&adg, &ck, &s.schedule);
        assert_eq!(d.len(), 1);
        assert_eq!(d.region_count(), 1);
        assert_eq!(d.domain_of(0), Some(0));
        assert_eq!(d.regions_in(0), &[0]);
        assert_eq!(d.domain_of_regions(&[0]), Some(0));
        assert!(d.max_footprint() > 0, "a placed region occupies hardware");
        assert_eq!(d.max_domain_regions(), 1);
    }

    #[test]
    fn sequential_regions_with_shared_fabric_merge_into_one_domain() {
        // Two regions scheduled on the same small fabric overlap in
        // placement or routing; the partition must merge them rather than
        // promise isolation the hardware cannot deliver.
        let mut k = KernelBuilder::new("two");
        let a = k.array("a", dsagen_adg::BitWidth::B64, 64, MemClass::MainMemory);
        let b = k.array("b", dsagen_adg::BitWidth::B64, 64, MemClass::MainMemory);
        let mut r0 = k.region("first", 1.0);
        let i0 = r0.for_loop(TripCount::fixed(64), true);
        let v0 = r0.load(a, AffineExpr::var(i0));
        let two = r0.imm(2);
        let w0 = r0.bin(dsagen_adg::Opcode::Mul, v0, two);
        r0.store(a, AffineExpr::var(i0), w0);
        k.finish_region(r0);
        let mut r1 = k.region("second", 1.0);
        let i1 = r1.for_loop(TripCount::fixed(64), true);
        let v1 = r1.load(b, AffineExpr::var(i1));
        let three = r1.imm(3);
        let w1 = r1.bin(dsagen_adg::Opcode::Add, v1, three);
        r1.store(b, AffineExpr::var(i1), w1);
        k.finish_region(r1);
        let kernel = k.build().unwrap();
        let adg = presets::softbrain();
        let ck =
            compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(s.is_legal(), "eval: {:?}", s.eval);
        let d = RecoveryDomains::derive(&adg, &ck, &s.schedule);
        assert_eq!(d.region_count(), 2);
        // Whatever the scheduler chose, the invariants hold: every region
        // has a domain, domains partition the regions, and a fault's
        // affected regions (any single region here) resolve to one domain.
        let total: usize = (0..d.len()).map(|i| d.regions_in(i).len()).sum();
        assert_eq!(total, 2);
        for ri in 0..2 {
            let dom = d.domain_of(ri).unwrap();
            assert!(d.regions_in(dom).contains(&ri));
        }
        assert!(d.max_footprint() >= d.footprint(0).min(d.footprint(d.len() - 1)));
    }

    #[test]
    fn derive_is_deterministic() {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(256), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        let a = RecoveryDomains::derive(&adg, &ck, &s.schedule);
        let b = RecoveryDomains::derive(&adg, &ck, &s.schedule);
        assert_eq!(a, b);
    }
}
