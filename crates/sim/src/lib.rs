//! Cycle-level simulator for DSAGEN accelerators (§VII "Simulation").
//!
//! The paper implements "a cycle-level simulator for all ADG components"
//! integrated with a gem5 RISC-V control core. This crate provides the
//! equivalent: a cycle-by-cycle engine that models
//!
//! * the control core issuing stream commands (one at a time, fixed cost)
//!   and executing scalar fallback code,
//! * memories arbitrating line requests (linear streams) and bank-parallel
//!   gathers (indirect/atomic streams) into port FIFOs, including re-issue
//!   pauses for command-heavy access patterns,
//! * synchronization-element FIFOs with backpressure, and
//! * dataflow firing gated by operand availability, initiation interval,
//!   unabsorbed operand mismatch, and recurrence latency.
//!
//! Its purpose in the reproduction is twofold: it produces the "measured"
//! performance numbers for Fig 10/12, and it validates the §V-B analytical
//! model (Fig 15 bottom — mean 7% error, worst-case from command-heavy
//! kernels the model cannot see).
//!
//! # Example
//!
//! ```
//! use dsagen_adg::{presets, BitWidth, Opcode};
//! use dsagen_dfg::*;
//! use dsagen_scheduler::{schedule, SchedulerConfig};
//! use dsagen_sim::{simulate, SimConfig};
//!
//! let adg = presets::softbrain();
//! let mut k = KernelBuilder::new("scale");
//! let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
//! let mut r = k.region("body", 1.0);
//! let i = r.for_loop(TripCount::fixed(256), true);
//! let v = r.load(a, AffineExpr::var(i));
//! let two = r.imm(2);
//! let w = r.bin(Opcode::Mul, v, two);
//! r.store(a, AffineExpr::var(i), w);
//! k.finish_region(r);
//! let kernel = k.build()?;
//! let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())?;
//! let sched = schedule(&adg, &ck, &SchedulerConfig::default());
//! let report = simulate(&adg, &ck, &sched.schedule, &sched.eval, 0, &SimConfig::default())?;
//! assert!(report.cycles >= 256);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cosim;
pub mod domains;
mod engine;
pub mod recovery;
pub mod runtime;
pub mod telemetry;

pub use cosim::{simulate_functional, CoSimError, CoSimReport};
pub use domains::RecoveryDomains;
pub use engine::{simulate, simulate_instrumented, try_simulate, try_simulate_collect};
pub use recovery::{
    run_with_degradation, run_with_recovery, RecoveryAction, RecoveryError, RecoveryEvent,
    RecoveryOutcome, RecoveryPolicy, RecoveryReport, RepairRung,
};
pub use runtime::{
    Detector, RuntimeConfig, RuntimeFault, RuntimeSim, SimCheckpoint, StepOutcome,
};
pub use telemetry::{PeCounters, SimTelemetry, StallTaxonomy, StreamCounters};

/// Why a simulation could not run: the schedule references hardware the
/// (possibly fault-degraded) ADG no longer has, or the configuration was
/// never verified against the schedule being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The ADG has no control core to issue stream commands.
    NoControlCore,
    /// A placement references a node absent from the ADG.
    MissingNode {
        /// Index of the placed entity.
        entity: usize,
        /// The missing node.
        node: dsagen_adg::NodeId,
    },
    /// A route references an edge absent from the ADG.
    MissingEdge {
        /// Index of the routed virtual edge.
        route: usize,
        /// The missing edge.
        edge: dsagen_adg::EdgeId,
    },
    /// The supplied [`dsagen_hwgen::VerifiedConfig`] was minted against a
    /// different schedule — simulating it would model hardware programmed
    /// with the wrong bitstream.
    UnverifiedConfig {
        /// Digest the configuration was verified against.
        expected: u64,
        /// Digest of the schedule handed to the simulator.
        got: u64,
    },
    /// A [`dsagen_faults::FaultSchedule`] contains a fault kind that
    /// cannot strike mid-execution (config-plane kinds corrupt the
    /// programming stream, which is already loaded by cycle 0).
    UnsupportedRuntimeFault {
        /// The offending kind.
        kind: dsagen_faults::FaultKind,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoControlCore => write!(f, "adg has no control core"),
            SimError::MissingNode { entity, node } => {
                write!(f, "entity {entity} is placed on missing node {node}")
            }
            SimError::MissingEdge { route, edge } => {
                write!(f, "route {route} uses missing edge {edge}")
            }
            SimError::UnverifiedConfig { expected, got } => write!(
                f,
                "config verified against schedule digest {expected:#018x}, \
but simulating digest {got:#018x}"
            ),
            SimError::UnsupportedRuntimeFault { kind } => {
                write!(f, "fault kind {kind} cannot strike mid-execution")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// [`try_simulate`] gated on a verified configuration: refuses to run
/// unless `config` (a capability token minted by
/// [`dsagen_hwgen::verify_round_trip`]) was verified against exactly the
/// schedule being simulated. This is the trust boundary of §VII — an
/// encoder/decoder disagreement can never reach the cycle engine.
///
/// # Errors
///
/// [`SimError::UnverifiedConfig`] if the token does not match `schedule`,
/// otherwise whatever [`try_simulate`] reports.
#[allow(clippy::too_many_arguments)] // mirrors `try_simulate` plus the token
pub fn try_simulate_verified(
    adg: &dsagen_adg::Adg,
    version: &dsagen_dfg::CompiledKernel,
    schedule: &dsagen_scheduler::Schedule,
    eval: &dsagen_scheduler::Evaluation,
    config: &dsagen_hwgen::VerifiedConfig,
    config_path_len: u32,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    if !config.matches(schedule) {
        return Err(SimError::UnverifiedConfig {
            expected: config.schedule_digest(),
            got: dsagen_hwgen::schedule_digest(schedule),
        });
    }
    try_simulate(adg, version, schedule, eval, config_path_len, cfg)
}

/// Simulator limits and switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Hard cap on simulated cycles per pipeline group (deadlock guard).
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 50_000_000,
        }
    }
}

/// Where firing opportunities were lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Memory port busy (arbitration loss).
    pub memory: u64,
    /// Operands not yet buffered.
    pub operands: u64,
    /// Output FIFO full.
    pub backpressure: u64,
    /// Initiation interval / recurrence gating.
    pub ii: u64,
    /// Waiting on control-core scalar work.
    pub ctrl: u64,
}

/// The result of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total cycles, including configuration load and inter-group barriers.
    pub cycles: u64,
    /// Cycle at which each region finished (within its group's timeline).
    pub region_cycles: Vec<u64>,
    /// Dataflow firings per region.
    pub firings: Vec<u64>,
    /// Cycles in which each region actually fired (occupancy numerator).
    pub active_cycles: Vec<u64>,
    /// Achieved instructions per cycle.
    pub ipc: f64,
    /// Stall accounting.
    pub stalls: StallBreakdown,
}

impl SimReport {
    /// Fabric occupancy of one region: firing cycles over its total
    /// cycles (1.0 = perfectly pipelined, the paper's "activity ratio").
    #[must_use]
    pub fn occupancy(&self, region: usize) -> f64 {
        let total = self.region_cycles.get(region).copied().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        self.active_cycles.get(region).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Execution time in microseconds at `clock_ghz`.
    #[must_use]
    pub fn micros(&self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_model::PerfModel;
    use dsagen_scheduler::{schedule, SchedulerConfig};

    use super::*;

    fn dot(n: u64) -> dsagen_dfg::Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, n, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    fn run(
        adg: &dsagen_adg::Adg,
        kernel: &dsagen_dfg::Kernel,
        cfg: &TransformConfig,
    ) -> (dsagen_dfg::CompiledKernel, SimReport, f64) {
        let ck = compile_kernel(kernel, cfg, &adg.features()).unwrap();
        let s = schedule(adg, &ck, &SchedulerConfig::default());
        assert!(s.is_legal(), "schedule: {:?}", s.eval);
        let report = simulate(adg, &ck, &s.schedule, &s.eval, 0, &SimConfig::default()).unwrap();
        let est = PerfModel::default().estimate(adg, &ck, &s.schedule, &s.eval, 0);
        (ck, report, est.cycles)
    }

    #[test]
    fn dot_completes_all_firings() {
        let adg = presets::softbrain();
        let (ck, report, _) = run(&adg, &dot(1024), &TransformConfig::fallback());
        assert_eq!(report.firings[0] as f64, ck.regions[0].instances);
        assert!(report.cycles >= 1024);
        assert!(report.cycles < 8 * 1024, "cycles {}", report.cycles);
    }

    #[test]
    fn unrolling_speeds_up_simulation() {
        let adg = presets::softbrain();
        let (_, scalar, _) = run(&adg, &dot(4096), &TransformConfig::fallback());
        let (_, unrolled, _) = run(
            &adg,
            &dot(4096),
            &TransformConfig {
                unroll: 4,
                ..TransformConfig::fallback()
            },
        );
        assert!(
            (unrolled.cycles as f64) < scalar.cycles as f64 * 0.5,
            "unrolled {} scalar {}",
            unrolled.cycles,
            scalar.cycles
        );
    }

    #[test]
    fn model_tracks_simulation_within_35_percent() {
        // Fig 15 bottom: mean error 7%, max 30%. Individual kernels can
        // diverge; dot should be close.
        let adg = presets::softbrain();
        let (_, report, est_cycles) = run(&adg, &dot(4096), &TransformConfig::fallback());
        let err = (report.cycles as f64 - est_cycles).abs() / report.cycles as f64;
        assert!(
            err < 0.35,
            "sim {} vs model {est_cycles} (err {err:.2})",
            report.cycles
        );
    }

    #[test]
    fn config_path_adds_cycles() {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(256), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        let short = simulate(&adg, &ck, &s.schedule, &s.eval, 0, &SimConfig::default()).unwrap();
        let long = simulate(&adg, &ck, &s.schedule, &s.eval, 300, &SimConfig::default()).unwrap();
        assert_eq!(long.cycles, short.cycles + 300);
    }

    #[test]
    fn scalar_indirect_fallback_is_much_slower_than_hw_indirect() {
        let mut k = KernelBuilder::new("gather");
        let a = k.array("a", BitWidth::B64, 8192, MemClass::Scratchpad);
        let b = k.array("b", BitWidth::B64, 2048, MemClass::MainMemory);
        let s_ = k.array("s", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(2048), true);
        let v = r.load_indirect(a, b, AffineExpr::var(i));
        let acc = r.reduce(Opcode::Add, v, i);
        r.store(s_, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();

        let spu = presets::spu();
        let (_, with_hw, _) = run(
            &spu,
            &kernel,
            &TransformConfig {
                indirect: true,
                ..TransformConfig::fallback()
            },
        );
        let (_, without, _) = run(&spu, &kernel, &TransformConfig::fallback());
        assert!(
            with_hw.cycles * 2 < without.cycles,
            "hw {} vs scalar {}",
            with_hw.cycles,
            without.cycles
        );
    }

    #[test]
    fn occupancy_reflects_pipelining() {
        let adg = presets::softbrain();
        let (_, report, _) = run(&adg, &dot(2048), &TransformConfig::fallback());
        // A fully-pipelined dot should fire nearly every cycle of its
        // region's lifetime.
        let occ = report.occupancy(0);
        assert!((0.5..=1.0).contains(&occ), "occupancy {occ}");
        assert_eq!(report.active_cycles[0], report.firings[0]);
    }

    #[test]
    fn try_simulate_matches_simulate_on_healthy_hardware() {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(256), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        let direct =
            simulate(&adg, &ck, &s.schedule, &s.eval, 0, &SimConfig::default()).unwrap();
        let checked =
            try_simulate(&adg, &ck, &s.schedule, &s.eval, 0, &SimConfig::default()).unwrap();
        assert_eq!(direct, checked);
    }

    #[test]
    fn try_simulate_rejects_schedule_on_dead_node() {
        let mut adg = presets::softbrain();
        let ck = compile_kernel(&dot(256), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(s.is_legal());
        // Kill a node the schedule uses, then simulate the *stale* schedule.
        let victim = s
            .schedule
            .placement
            .iter()
            .flatten()
            .copied()
            .next()
            .expect("something is placed");
        adg.remove_node(victim).unwrap();
        let err = try_simulate(&adg, &ck, &s.schedule, &s.eval, 0, &SimConfig::default())
            .expect_err("stale schedule must be rejected");
        match err {
            SimError::MissingNode { node, .. } => assert_eq!(node, victim),
            // Removing the node also removes its edges, so a route may be
            // caught first — equally acceptable.
            SimError::MissingEdge { .. } => {}
            other => panic!("unexpected error {other}"),
        }
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn try_simulate_rejects_schedule_on_severed_link() {
        let mut adg = presets::softbrain();
        let ck = compile_kernel(&dot(256), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        let used_edge = s
            .schedule
            .routes
            .values()
            .flatten()
            .copied()
            .next()
            .expect("something is routed");
        adg.remove_edge(used_edge).unwrap();
        let err = try_simulate(&adg, &ck, &s.schedule, &s.eval, 0, &SimConfig::default())
            .expect_err("stale route must be rejected");
        assert!(
            matches!(err, SimError::MissingEdge { edge, .. } if edge == used_edge),
            "unexpected error {err}"
        );
    }

    #[test]
    fn instrumented_run_is_invisible_and_conserves_cycles() {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(1024), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        let plain =
            simulate(&adg, &ck, &s.schedule, &s.eval, 37, &SimConfig::default()).unwrap();
        let tel = dsagen_telemetry::Telemetry::in_memory();
        let (instrumented, hw) = simulate_instrumented(
            &adg,
            &ck,
            &s.schedule,
            &s.eval,
            37,
            &SimConfig::default(),
            &tel,
        )
        .unwrap();
        // Instrumentation must not perturb the simulation.
        assert_eq!(plain, instrumented);
        assert_eq!(hw.cycles, plain.cycles);
        assert_eq!(hw.config_cycles, 37);
        // Per-PE conservation: busy + idle + stalled == cycles, taxonomy
        // covers every stall.
        assert!(!hw.pes.is_empty(), "dot maps ops onto PEs");
        for pe in &hw.pes {
            assert_eq!(pe.busy + pe.idle + pe.stalled, pe.cycles, "{pe:?}");
            assert_eq!(pe.stalls.total(), pe.stalled, "{pe:?}");
            assert_eq!(pe.fired, plain.firings[pe.region]);
            assert_eq!(pe.busy, plain.active_cycles[pe.region]);
        }
        // Aggregate taxonomy ties back to the public stall breakdown.
        let t = &hw.taxonomy;
        assert_eq!(t.backpressure, plain.stalls.backpressure);
        assert_eq!(t.operand_wait, plain.stalls.operands);
        assert_eq!(t.memory, plain.stalls.memory);
        assert_eq!(t.ii, plain.stalls.ii);
        assert_eq!(t.ctrl, plain.stalls.ctrl);
        assert_eq!(t.config, 37);
        // Streams moved every element and observed a sane high-water mark.
        assert!(!hw.streams.is_empty());
        for st in &hw.streams {
            assert!(st.fifo_highwater <= st.fifo_cap + 1e-9, "{st:?}");
            assert!(st.elems > 0.0);
            assert!(st.issued > 0);
        }
        // Counter events landed in the sink.
        let events = tel.events();
        assert!(events.iter().any(|e| e.cat == "phase" && e.name == "simulate"));
        assert!(events.iter().any(|e| e.cat == "sim.counters"));
        // And the JSON rendering is balanced.
        let json = hw.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn deterministic() {
        let adg = presets::softbrain();
        let (_, a, _) = run(&adg, &dot(512), &TransformConfig::fallback());
        let (_, b, _) = run(&adg, &dot(512), &TransformConfig::fallback());
        assert_eq!(a, b);
    }

    #[test]
    fn pipelined_regions_overlap() {
        // Producer-consumer with forwarding should beat the barrier version.
        let build = || {
            let mut k = KernelBuilder::new("pc");
            let a = k.array("a", BitWidth::B64, 4096, MemClass::MainMemory);
            let b = k.array("b", BitWidth::B64, 4096, MemClass::MainMemory);
            let d = k.array("d", BitWidth::B64, 4096, MemClass::MainMemory);
            let mut r0 = k.region("produce", 1.0);
            let _o = r0.for_loop(TripCount::fixed(16), false);
            let j0 = r0.for_loop(TripCount::fixed(256), true);
            let va = r0.load(a, AffineExpr::var(j0));
            let acc = r0.reduce(Opcode::Add, va, j0);
            r0.yield_value(acc);
            let r0i = k.finish_region(r0);
            let mut r1 = k.region("consume", 1.0);
            let _o1 = r1.for_loop(TripCount::fixed(16), false);
            let j1 = r1.for_loop(TripCount::fixed(256), true);
            let v = r1.consume(r0i, 0);
            let vb = r1.load(b, AffineExpr::var(j1));
            let p = r1.bin(Opcode::Mul, v, vb);
            r1.store(d, AffineExpr::var(j1), p);
            k.finish_region(r1);
            k.build().unwrap()
        };
        let adg = presets::softbrain();
        let (_, fwd, _) = run(
            &adg,
            &build(),
            &TransformConfig {
                forward: true,
                ..TransformConfig::fallback()
            },
        );
        let (_, barrier, _) = run(&adg, &build(), &TransformConfig::fallback());
        assert!(
            fwd.cycles < barrier.cycles,
            "forwarded {} vs barrier {}",
            fwd.cycles,
            barrier.cycles
        );
    }
}
