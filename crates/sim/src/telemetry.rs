//! Hardware counters collected during cycle-level simulation.
//!
//! The engine in [`crate::engine`] always tallies a small set of cheap
//! per-region / per-stream counters (plain integer increments on paths
//! that already branch); [`SimTelemetry`] is the harvested, attributed
//! view: per-PE firing/busy/idle/stall cycles, per-stream-engine
//! issue/stall counts with FIFO high-water marks, and a stall *taxonomy*
//! that explains where every lost cycle went.
//!
//! # Counter semantics and conservation laws
//!
//! For every processing element (PE) the counters satisfy, exactly:
//!
//! ```text
//! busy + idle + stalled == cycles          (total simulated cycles)
//! stalls.total()        == stalled         (taxonomy covers every stall)
//! ```
//!
//! Attribution is *exclusive*: within its pipeline group a region (and
//! hence each PE running it) spends each cycle in exactly one state —
//! it fires (`busy`), it stalls for exactly one recorded cause
//! (`operand_wait`, `backpressure`, or `ii`), or it drains/waits
//! (`idle`). Cycles spent in other groups' timelines, inter-group
//! barriers, and the configuration load are charged as `idle`,
//! `barrier`, and `config` respectively. Memory-arbitration and
//! control-core stalls are stream-level phenomena (several streams can
//! lose arbitration in the same cycle), so they appear in the
//! *aggregate* taxonomy and the per-stream counters but are zero in
//! per-PE taxonomies — the PE-visible symptom of a slow memory is
//! `operand_wait`.

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

use dsagen_adg::{Adg, NodeId, NodeKind};
use dsagen_scheduler::{Problem, Schedule};

use crate::SimReport;

/// Where stall cycles went, by cause. All fields are cycle counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallTaxonomy {
    /// Output FIFO full — downstream could not absorb results.
    pub backpressure: u64,
    /// Input operands not yet buffered in port FIFOs.
    pub operand_wait: u64,
    /// Memory port arbitration loss (stream-level; zero per-PE).
    pub memory: u64,
    /// Inter-group barrier / fence drain cycles.
    pub barrier: u64,
    /// Configuration-load cycles before cycle 0 of the computation.
    pub config: u64,
    /// Initiation-interval / recurrence gating.
    pub ii: u64,
    /// Waiting on control-core scalar fallback work (stream-level;
    /// zero per-PE).
    pub ctrl: u64,
}

impl StallTaxonomy {
    /// Sum of all stall causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.backpressure + self.operand_wait + self.memory + self.barrier + self.config + self.ii
            + self.ctrl
    }

    /// The single largest cause, as `(label, cycles)`. Returns
    /// `("none", 0)` when no stalls were recorded.
    #[must_use]
    pub fn dominant(&self) -> (&'static str, u64) {
        let causes = [
            ("backpressure", self.backpressure),
            ("operand-wait", self.operand_wait),
            ("memory", self.memory),
            ("barrier", self.barrier),
            ("config", self.config),
            ("ii", self.ii),
            ("ctrl", self.ctrl),
        ];
        let best = causes.iter().max_by_key(|(_, c)| *c).copied().unwrap_or(("none", 0));
        if best.1 == 0 {
            ("none", 0)
        } else {
            best
        }
    }

    /// Element-wise accumulation.
    pub fn absorb(&mut self, other: &StallTaxonomy) {
        self.backpressure += other.backpressure;
        self.operand_wait += other.operand_wait;
        self.memory += other.memory;
        self.barrier += other.barrier;
        self.config += other.config;
        self.ii += other.ii;
        self.ctrl += other.ctrl;
    }

    /// One-line JSON object (hand-rendered; the vendored serde is a
    /// no-op).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"backpressure\":{},\"operand_wait\":{},\"memory\":{},\"barrier\":{},\
\"config\":{},\"ii\":{},\"ctrl\":{}}}",
            self.backpressure, self.operand_wait, self.memory, self.barrier, self.config, self.ii,
            self.ctrl
        )
    }
}

impl fmt::Display for StallTaxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backpressure={} operand-wait={} memory={} barrier={} config={} ii={} ctrl={}",
            self.backpressure, self.operand_wait, self.memory, self.barrier, self.config, self.ii,
            self.ctrl
        )
    }
}

/// Hardware counters for one processing element.
///
/// Satisfies `busy + idle + stalled == cycles` and
/// `stalls.total() == stalled` (see module docs for the attribution
/// rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeCounters {
    /// The ADG node this PE occupies.
    pub node: NodeId,
    /// Kernel region whose dataflow graph is mapped onto this PE.
    pub region: usize,
    /// Total simulated cycles (identical for every PE of one run).
    pub cycles: u64,
    /// Dataflow firings executed.
    pub fired: u64,
    /// Cycles in which the PE fired.
    pub busy: u64,
    /// Cycles lost to an attributable stall cause.
    pub stalled: u64,
    /// Cycles with nothing to do (other groups running, drain, done).
    pub idle: u64,
    /// Stall cycles by cause; `stalls.total() == stalled`.
    pub stalls: StallTaxonomy,
}

impl PeCounters {
    /// Fraction of total cycles this PE spent firing.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.busy as f64 / self.cycles as f64
    }
}

/// Counters for one stream engine (a port's command/data mover).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCounters {
    /// Kernel region the stream belongs to.
    pub region: usize,
    /// Index of the stream within the region's state (inputs first,
    /// then outputs, in compiled order).
    pub index: usize,
    /// Read (memory→fabric) or write stream.
    pub is_read: bool,
    /// Served by the control core element-by-element.
    pub ctrl_fed: bool,
    /// Cycles in which the stream delivered at least one element.
    pub issued: u64,
    /// Cycles in which the stream wanted to move data but could not
    /// (memory arbitration loss, FIFO full on reads, FIFO empty on
    /// writes, control core busy).
    pub stalled: u64,
    /// Total elements moved over the run.
    pub elems: f64,
    /// Highest FIFO occupancy observed (elements).
    pub fifo_highwater: f64,
    /// FIFO capacity (elements).
    pub fifo_cap: f64,
}

impl StreamCounters {
    /// High-water mark as a fraction of capacity.
    #[must_use]
    pub fn occupancy_peak(&self) -> f64 {
        if self.fifo_cap <= 0.0 {
            return 0.0;
        }
        (self.fifo_highwater / self.fifo_cap).min(1.0)
    }
}

/// Per-region exclusive stall tallies plus bookkeeping needed for PE
/// attribution. Internal to the engine but exposed read-only so
/// attribution reports can re-group by region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionTally {
    /// Cycles lost to initiation-interval / recurrence gating.
    pub ii: u64,
    /// Cycles lost waiting for input operands.
    pub operands: u64,
    /// Cycles lost to full output FIFOs.
    pub backpressure: u64,
    /// Cycles in which the region fired.
    pub fired_cycles: u64,
    /// Pipeline group this region belongs to.
    pub group: usize,
}

/// Attributes raw engine tallies onto PEs and streams, producing the
/// public [`SimTelemetry`] view. Called by the engine after a run (or
/// mid-run for checkpoint snapshots); pure function of its inputs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attribute(
    adg: &Adg,
    schedule: &Schedule,
    problem: &Problem<'_>,
    report: &SimReport,
    tallies: &[RegionTally],
    streams: Vec<StreamCounters>,
    group_cycles: Vec<u64>,
    config_cycles: u64,
    barrier_cycles: u64,
) -> SimTelemetry {
    let mut pes = Vec::new();
    for (ri, tally) in tallies.iter().enumerate() {
        let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
        if let Some(ops) = problem.op_entity.get(ri) {
            for &entity in ops {
                if entity == usize::MAX {
                    continue;
                }
                if let Some(Some(node)) = schedule.placement.get(entity) {
                    if matches!(adg.kind(*node), Ok(NodeKind::Pe(_))) {
                        nodes.insert(*node);
                    }
                }
            }
        }
        let taxonomy = StallTaxonomy {
            backpressure: tally.backpressure,
            operand_wait: tally.operands,
            memory: 0,
            barrier: barrier_cycles,
            config: config_cycles,
            ii: tally.ii,
            ctrl: 0,
        };
        let stalled = taxonomy.total();
        let busy = tally.fired_cycles;
        for node in nodes {
            pes.push(PeCounters {
                node,
                region: ri,
                cycles: report.cycles,
                fired: report.firings.get(ri).copied().unwrap_or(0),
                busy,
                stalled,
                idle: report.cycles.saturating_sub(busy + stalled),
                stalls: taxonomy,
            });
        }
    }
    let taxonomy = StallTaxonomy {
        backpressure: report.stalls.backpressure,
        operand_wait: report.stalls.operands,
        memory: report.stalls.memory,
        barrier: barrier_cycles,
        config: config_cycles,
        ii: report.stalls.ii,
        ctrl: report.stalls.ctrl,
    };
    SimTelemetry {
        cycles: report.cycles,
        config_cycles,
        barrier_cycles,
        region_group: tallies.iter().map(|t| t.group).collect(),
        region_tallies: tallies.to_vec(),
        group_cycles,
        pes,
        streams,
        taxonomy,
    }
}

/// Everything the cycle engine measured in one simulation, attributed.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTelemetry {
    /// Total simulated cycles (== `SimReport::cycles`).
    pub cycles: u64,
    /// Cycles spent loading configuration before execution.
    pub config_cycles: u64,
    /// Cycles spent in inter-group barriers / fence drains.
    pub barrier_cycles: u64,
    /// Cycles each pipeline group ran.
    pub group_cycles: Vec<u64>,
    /// Pipeline group index of each region.
    pub region_group: Vec<usize>,
    /// Per-region exclusive stall tallies.
    pub region_tallies: Vec<RegionTally>,
    /// Per-PE counters (one entry per distinct PE with mapped ops).
    pub pes: Vec<PeCounters>,
    /// Per-stream-engine counters.
    pub streams: Vec<StreamCounters>,
    /// Whole-run stall taxonomy (includes stream-level memory/ctrl).
    pub taxonomy: StallTaxonomy,
}

impl SimTelemetry {
    /// Aggregate taxonomy restricted to one region's PEs.
    #[must_use]
    pub fn region_taxonomy(&self, region: usize) -> StallTaxonomy {
        let mut t = StallTaxonomy::default();
        for pe in self.pes.iter().filter(|p| p.region == region) {
            t.absorb(&pe.stalls);
        }
        t
    }

    /// Mean PE utilization over all mapped PEs.
    #[must_use]
    pub fn mean_pe_utilization(&self) -> f64 {
        if self.pes.is_empty() {
            return 0.0;
        }
        self.pes.iter().map(PeCounters::utilization).sum::<f64>() / self.pes.len() as f64
    }

    /// The whole-run dominant stall cause `(label, cycles)`.
    #[must_use]
    pub fn dominant_stall(&self) -> (&'static str, u64) {
        self.taxonomy.dominant()
    }

    /// Renders the whole structure as a JSON object (hand-written; the
    /// vendored serde is a no-op).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(
            s,
            "\"cycles\":{},\"config_cycles\":{},\"barrier_cycles\":{},",
            self.cycles, self.config_cycles, self.barrier_cycles
        );
        let _ = write!(
            s,
            "\"group_cycles\":[{}],",
            self.group_cycles
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = write!(s, "\"taxonomy\":{},", self.taxonomy.to_json());
        s.push_str("\"pes\":[");
        for (i, pe) in self.pes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"node\":\"{}\",\"region\":{},\"cycles\":{},\"fired\":{},\"busy\":{},\
\"stalled\":{},\"idle\":{},\"stalls\":{}}}",
                pe.node, pe.region, pe.cycles, pe.fired, pe.busy, pe.stalled, pe.idle,
                pe.stalls.to_json()
            );
        }
        s.push_str("],\"streams\":[");
        for (i, st) in self.streams.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"region\":{},\"index\":{},\"is_read\":{},\"ctrl_fed\":{},\"issued\":{},\
\"stalled\":{},\"elems\":{:.1},\"fifo_highwater\":{:.2},\"fifo_cap\":{:.1}}}",
                st.region, st.index, st.is_read, st.ctrl_fed, st.issued, st.stalled, st.elems,
                st.fifo_highwater, st.fifo_cap
            );
        }
        s.push_str("]}");
        s
    }

    /// Emits the counters as instant events into `tel` (one event per
    /// PE and per stream plus a summary). No-op when telemetry is
    /// disabled.
    pub fn emit(&self, tel: &dsagen_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        for pe in &self.pes {
            let node = pe.node.to_string();
            tel.emit(|| {
                dsagen_telemetry::EventData::new("sim.counters", format!("pe {node}"))
                    .arg("region", pe.region as u64)
                    .arg("fired", pe.fired)
                    .arg("busy", pe.busy)
                    .arg("stalled", pe.stalled)
                    .arg("idle", pe.idle)
                    .arg("backpressure", pe.stalls.backpressure)
                    .arg("operand_wait", pe.stalls.operand_wait)
                    .arg("ii", pe.stalls.ii)
                    .arg("barrier", pe.stalls.barrier)
                    .arg("config", pe.stalls.config)
            });
        }
        for st in &self.streams {
            tel.emit(|| {
                dsagen_telemetry::EventData::new(
                    "sim.counters",
                    format!(
                        "stream r{}[{}] {}",
                        st.region,
                        st.index,
                        if st.is_read { "rd" } else { "wr" }
                    ),
                )
                .arg("issued", st.issued)
                .arg("stalled", st.stalled)
                .arg("elems", st.elems)
                .arg("fifo_highwater", st.fifo_highwater)
                .arg("fifo_cap", st.fifo_cap)
            });
        }
        let (cause, cycles) = self.dominant_stall();
        tel.emit(|| {
            dsagen_telemetry::EventData::new("sim", "summary")
                .arg("cycles", self.cycles)
                .arg("config_cycles", self.config_cycles)
                .arg("barrier_cycles", self.barrier_cycles)
                .arg("dominant_stall", cause)
                .arg("dominant_stall_cycles", cycles)
                .arg("mean_pe_utilization", self.mean_pe_utilization())
        });
    }
}
