//! Runtime fault simulation: mid-execution fault arrival, online
//! detection, and stream checkpointing.
//!
//! The plain entry points in [`crate::engine`] assume the fabric never
//! degrades once execution starts. [`RuntimeSim`] drops that assumption:
//! it drives the same [`EngineCore`](crate::engine) cycle by cycle while
//! overlaying a [`FaultSchedule`] — at each fault's arrival cycle its
//! resolved hardware victim starts misbehaving for as long as its
//! [`FaultLifetime`] says.
//!
//! # Fault behaviour model
//!
//! * **Blocking** faults ([`FaultKind::DeadPe`], [`FaultKind::SeveredLink`],
//!   [`FaultKind::DeadPort`]) stop the victim from moving data: every
//!   region whose placement or routes use the victim cannot fire while the
//!   fault is active. The region's streams keep draining, so the symptom
//!   is a *silent stall*. A dead port scopes the same symptom to one
//!   routed link, so recovery can mask just that port.
//! * **Silent-corruption** faults ([`FaultKind::StuckSwitch`],
//!   [`FaultKind::StuckLane`]) keep data moving but deliver the wrong
//!   operands: affected regions fire normally and every firing produces
//!   poisoned results.
//! * **Throttling** faults ([`FaultKind::DegradedLink`]) block affected
//!   regions only on the fraction of cycles the link can no longer serve
//!   (`100 - capacity` percent): throughput degrades gracefully, and the
//!   watchdog only trips when capacity is so low that the blocked runs
//!   reach its bound — mild degradation rides through undetected.
//!
//! # Online detection
//!
//! Two detectors run concurrently, mirroring what a deployed accelerator
//! can actually observe:
//!
//! * a **progress watchdog** per fault: counts *consecutive* cycles in
//!   which an affected region was live (scheduled, not done, work left)
//!   yet could not fire because of the fault. When the run reaches
//!   [`RuntimeConfig::watchdog_bound`] the fault is detected — so
//!   detection latency for blocking faults is exactly the bound.
//! * a **result-residue check** every
//!   [`RuntimeConfig::residue_interval`] cycles (and once at the end of
//!   the run): compares redundantly-computed residues against delivered
//!   results, observable here as the engine's poisoned-firing counters.
//!   Detection latency for corruption faults is at most the interval.
//!
//! # Checkpointing
//!
//! The engine state is a cloneable value ([`SimCheckpoint`] wraps it), so
//! `checkpoint()` is a clone and `resume()` is continuing to tick a
//! clone: **resume-with-no-faults is bit-identical to an uninterrupted
//! run by construction** (property-tested in `tests/properties.rs`). A
//! bounded ring of periodic checkpoints plus a baseline lets the
//! recovery layer roll corruption back to before the first poisoned
//! firing.
//!
//! Detected faults are **consumed**: the recovery flow (diagnose →
//! repair → reprogram) takes long enough in real time that a transient
//! has cleared by resume, and a permanent victim is decommissioned from
//! the ADG so the repaired schedule no longer exercises it. Consumption
//! survives rollback — faults live in physical time, not simulated time.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use dsagen_adg::{Adg, CtrlSpec, EdgeId, NodeId, NodeKind};
use dsagen_dfg::CompiledKernel;
use dsagen_faults::{FaultKind, FaultLifetime, FaultSchedule, FaultTarget, TimedFault};
use dsagen_scheduler::{Entity, EntityKind, Evaluation, Problem, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{
    control_spec, pipeline_groups, validate_schedule, Effect, EngineCore, EngineCtx, Tick,
};
use crate::telemetry::SimTelemetry;
use crate::{SimConfig, SimError, SimReport};

/// Tunables for online detection and checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Consecutive blocked-while-live cycles before the progress watchdog
    /// raises a fault (the detection-latency bound for blocking faults).
    pub watchdog_bound: u64,
    /// Wall-cycle period of the result-residue check (the
    /// detection-latency bound for silent-corruption faults).
    pub residue_interval: u64,
    /// Wall-cycle period of automatic checkpoints.
    pub checkpoint_interval: u64,
    /// How many periodic checkpoints the ring retains (a baseline taken
    /// at construction is always kept in addition).
    pub checkpoint_ring: usize,
    /// Run the result-residue check *every* cycle instead of only at
    /// interval boundaries and run end. The interval-boundary assumption
    /// models a residue unit that only publishes at checkpoint epochs;
    /// eager mode models one on the result bus, dropping corruption
    /// detection latency from ≤ `residue_interval` to a few cycles at the
    /// cost of checking each cycle. Detection latency never exceeds the
    /// non-eager bound (regression-tested).
    pub residue_eager: bool,
    /// Record a per-region firing trace: for every completed firing, the
    /// `(pipeline group, group-local cycle)` at which it fired. Off by
    /// default — traces grow with the firing count and exist to *audit*
    /// recovery (the domain-isolation invariant compares traces of
    /// untouched domains bit-for-bit against a fault-free run), not to
    /// drive it.
    pub record_traces: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            watchdog_bound: 64,
            residue_interval: 256,
            checkpoint_interval: 256,
            checkpoint_ring: 8,
            residue_eager: false,
            record_traces: false,
        }
    }
}

/// Which online detector raised a [`RuntimeFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// Per-region progress watchdog (blocking faults).
    Watchdog,
    /// Periodic result-residue check (silent corruption).
    Residue,
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Detector::Watchdog => "watchdog",
            Detector::Residue => "residue",
        })
    }
}

/// A mid-execution fault as *detected* by the online machinery — the
/// typed event handed to the recovery layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeFault {
    /// Index of the fault within the originating [`FaultSchedule`].
    pub fault_index: usize,
    /// What broke.
    pub kind: FaultKind,
    /// The resolved hardware victim.
    pub victim: FaultTarget,
    /// How long the fault stays active.
    pub lifetime: FaultLifetime,
    /// Scheduled arrival cycle.
    pub arrival: u64,
    /// First wall cycle at which the fault actually perturbed a live
    /// region (blocked a would-be firing or poisoned one). `None` only
    /// for defensive completeness; detection implies an effect.
    pub first_effect: Option<u64>,
    /// Wall cycle at which the detector raised the fault.
    pub detected_at: u64,
    /// Which detector raised it.
    pub detector: Detector,
    /// Kernel regions whose placement/routes use the victim.
    pub regions: Vec<usize>,
}

impl RuntimeFault {
    /// Cycles between the first observable effect and detection.
    #[must_use]
    pub fn detection_latency(&self) -> u64 {
        self.detected_at
            .saturating_sub(self.first_effect.unwrap_or(self.arrival))
    }
}

impl fmt::Display for RuntimeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} ({}) detected by {} at cycle {} (latency {})",
            self.kind,
            self.victim,
            self.lifetime,
            self.detector,
            self.detected_at,
            self.detection_latency()
        )
    }
}

/// What one [`RuntimeSim::run_until_event`] call observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The run completed; [`RuntimeSim::report`] is final.
    Finished,
    /// A fault was detected; recovery should intervene before resuming.
    Detected(Box<RuntimeFault>),
}

/// A resumable snapshot of the whole engine state: stream positions and
/// FIFO contents, per-region firing progress (PE state), completed
/// instance counts, stall counters, and the wall clock.
#[derive(Debug, Clone)]
pub struct SimCheckpoint {
    core: EngineCore,
}

impl SimCheckpoint {
    /// The wall cycle at which this checkpoint was taken.
    #[must_use]
    pub fn wall(&self) -> u64 {
        self.core.wall()
    }

    /// Completed firings per region at checkpoint time.
    #[must_use]
    pub fn completed_firings(&self) -> &[u64] {
        self.core.firings()
    }
}

/// One schedule fault bound to concrete hardware, plus its detector
/// bookkeeping.
#[derive(Debug, Clone)]
struct ResolvedFault {
    timed: TimedFault,
    victim: FaultTarget,
    regions: Vec<usize>,
    /// One-shot: set when detected (and the recovery flow handled it);
    /// survives rollback because faults live in physical time.
    consumed: bool,
    /// Consecutive blocked-while-live cycles (watchdog state).
    stall_run: u64,
    /// First wall cycle with an observable effect.
    first_effect: Option<u64>,
}

/// A fault-aware, checkpointable simulation of one compiled kernel.
///
/// Owns its hardware view (`Adg`, `Schedule`, `Evaluation`) so the
/// recovery layer can swap in a repaired mapping mid-run via
/// [`RuntimeSim::reprogram`].
#[derive(Debug)]
pub struct RuntimeSim {
    adg: Adg,
    kernel: CompiledKernel,
    schedule: Schedule,
    eval: Evaluation,
    cfg: SimConfig,
    rt: RuntimeConfig,
    stream_mems: BTreeMap<(usize, bool, usize), NodeId>,
    ctrl: CtrlSpec,
    groups: Vec<Vec<usize>>,
    core: EngineCore,
    faults: Vec<ResolvedFault>,
    /// Baseline checkpoint (taken at construction / replaced on restore).
    baseline: SimCheckpoint,
    /// Ring of periodic checkpoints, oldest first.
    ring: VecDeque<SimCheckpoint>,
    /// Scratch: per-region effects for the next cycle.
    effects: Vec<Effect>,
    /// Scratch: which faults touched a live region in the next cycle.
    touched: Vec<bool>,
    /// Per-region firing trace (`(group, group-local cycle)` per completed
    /// firing), populated only under [`RuntimeConfig::record_traces`].
    /// Rolls back with the engine state on restore.
    traces: Vec<Vec<(usize, u64)>>,
    seed: u64,
}

/// Builds the engine context from a `RuntimeSim`'s owned fields without
/// borrowing the whole struct (the core is borrowed mutably alongside).
macro_rules! ctx {
    ($s:expr) => {
        EngineCtx {
            adg: &$s.adg,
            kernel: &$s.kernel,
            eval: &$s.eval,
            cfg: &$s.cfg,
            stream_mems: &$s.stream_mems,
            ctrl: &$s.ctrl,
            groups: &$s.groups,
        }
    };
}

impl RuntimeSim {
    /// Prepares a runtime simulation of `schedule` on `adg` under
    /// `faults`. Victims are resolved immediately and deterministically
    /// (seeded by [`FaultSchedule::seed`]) against the hardware the
    /// schedule actually uses.
    ///
    /// # Errors
    ///
    /// * Whatever [`crate::try_simulate`] would reject (missing nodes /
    ///   edges / control core);
    /// * [`SimError::UnsupportedRuntimeFault`] if the schedule contains a
    ///   config-plane fault kind, which cannot strike mid-execution.
    #[allow(clippy::too_many_arguments)] // mirrors `try_simulate` plus the fault plane
    pub fn new(
        adg: &Adg,
        kernel: &CompiledKernel,
        schedule: &Schedule,
        eval: &Evaluation,
        config_path_len: u32,
        cfg: SimConfig,
        rt: RuntimeConfig,
        faults: &FaultSchedule,
    ) -> Result<Self, SimError> {
        validate_schedule(adg, schedule)?;
        for f in &faults.faults {
            if f.kind.is_config_plane() {
                return Err(SimError::UnsupportedRuntimeFault { kind: f.kind });
            }
        }
        let problem = Problem::new(adg, kernel);
        let stream_mems = schedule.stream_memories(&problem);
        let ctrl = control_spec(adg);
        let groups = pipeline_groups(kernel);
        let core = EngineCore::new(kernel.regions.len(), config_path_len);
        let baseline = SimCheckpoint { core: core.clone() };
        let n_regions = kernel.regions.len();
        let n_faults = faults.faults.len();
        let mut sim = RuntimeSim {
            adg: adg.clone(),
            kernel: kernel.clone(),
            schedule: schedule.clone(),
            eval: eval.clone(),
            cfg,
            rt,
            stream_mems,
            ctrl,
            groups,
            core,
            faults: Vec::new(),
            baseline,
            ring: VecDeque::new(),
            effects: vec![Effect::Normal; n_regions],
            touched: vec![false; n_faults],
            traces: vec![Vec::new(); n_regions],
            seed: faults.seed,
        };
        sim.faults = faults
            .faults
            .iter()
            .enumerate()
            .map(|(i, tf)| sim.resolve_fault(i, *tf))
            .collect();
        Ok(sim)
    }

    /// Binds one schedule fault to a concrete victim on the *current*
    /// (ADG, schedule) pair. Deterministic in `(seed, fault index)`.
    fn resolve_fault(&self, index: usize, timed: TimedFault) -> ResolvedFault {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let victim = match timed.kind {
            // Link- and port-scoped kinds strike a routed edge: the port
            // is identified by the edge occupying it.
            FaultKind::SeveredLink
            | FaultKind::DeadPort
            | FaultKind::StuckLane
            | FaultKind::DegradedLink { .. } => {
                let edges: BTreeSet<EdgeId> =
                    self.schedule.routes.values().flatten().copied().collect();
                pick(&mut rng, &edges).map(FaultTarget::Edge)
            }
            FaultKind::StuckSwitch => {
                let switches: BTreeSet<NodeId> = self
                    .schedule
                    .routes
                    .values()
                    .flatten()
                    .filter_map(|eid| self.adg.edge(*eid))
                    .flat_map(|e| [e.src, e.dst])
                    .filter(|n| matches!(self.adg.kind(*n), Ok(NodeKind::Switch(_))))
                    .collect();
                pick(&mut rng, &switches).map(FaultTarget::Node)
            }
            // Default every other structural kind to a placed PE: dead-PE
            // is the canonical case; shrunk-FIFO etc. degrade the same
            // element class.
            _ => {
                let pes: BTreeSet<NodeId> = self
                    .schedule
                    .placement
                    .iter()
                    .flatten()
                    .filter(|n| matches!(self.adg.kind(**n), Ok(NodeKind::Pe(_))))
                    .copied()
                    .collect();
                pick(&mut rng, &pes).map(FaultTarget::Node)
            }
        };
        let (victim, regions) = match victim {
            Some(v) => {
                let regions = self.affected_regions(&v);
                (v, regions)
            }
            // Nothing of that class is in use: the fault strikes idle
            // hardware and can never perturb the run.
            None => (FaultTarget::Word(usize::MAX), Vec::new()),
        };
        ResolvedFault {
            timed,
            victim,
            regions,
            consumed: false,
            stall_run: 0,
            first_effect: None,
        }
    }

    /// Kernel regions whose placement or routes exercise `victim`.
    fn affected_regions(&self, victim: &FaultTarget) -> Vec<usize> {
        let problem = Problem::new(&self.adg, &self.kernel);
        let mut regions: BTreeSet<usize> = BTreeSet::new();
        match victim {
            FaultTarget::Node(node) => {
                for (e, placed) in self.schedule.placement.iter().enumerate() {
                    if *placed == Some(*node) {
                        if let Some(ent) = problem.entities.get(e) {
                            regions.insert(entity_region(ent));
                        }
                    }
                }
                // A stuck switch also corrupts every route that turns
                // through it.
                for (idx, path) in &self.schedule.routes {
                    let touches = path.iter().any(|eid| {
                        self.adg
                            .edge(*eid)
                            .is_some_and(|e| e.src == *node || e.dst == *node)
                    });
                    if touches {
                        if let Some(r) = route_region(&problem, *idx) {
                            regions.insert(r);
                        }
                    }
                }
            }
            FaultTarget::Edge(edge) => {
                for (idx, path) in &self.schedule.routes {
                    if path.contains(edge) {
                        if let Some(r) = route_region(&problem, *idx) {
                            regions.insert(r);
                        }
                    }
                }
            }
            FaultTarget::Word(_) => {}
        }
        regions.into_iter().collect()
    }

    /// The current wall cycle.
    #[must_use]
    pub fn wall(&self) -> u64 {
        self.core.wall()
    }

    /// Total poisoned firings currently accounted in the engine state.
    #[must_use]
    pub fn poisoned_total(&self) -> u64 {
        self.core.poisoned_total()
    }

    /// Faults not yet consumed by detection+recovery.
    #[must_use]
    pub fn pending_faults(&self) -> usize {
        self.faults.iter().filter(|f| !f.consumed).count()
    }

    /// Snapshots the current engine state.
    #[must_use]
    pub fn checkpoint(&self) -> SimCheckpoint {
        SimCheckpoint {
            core: self.core.clone(),
        }
    }

    /// Rewinds the engine to `ckpt`. Per-fault detector state is reset
    /// coherently: watchdog runs restart, and first-effect marks later
    /// than the restored wall clock are cleared (those effects are now in
    /// the future again). Consumption is **kept** — a detected fault does
    /// not re-strike after recovery. The checkpoint ring is cleared (its
    /// entries describe a timeline being re-executed) and the baseline is
    /// replaced by `ckpt`.
    pub fn restore(&mut self, ckpt: &SimCheckpoint) {
        self.core = ckpt.core.clone();
        let wall = self.core.wall();
        for f in &mut self.faults {
            f.stall_run = 0;
            if f.first_effect.is_some_and(|fe| fe > wall) {
                f.first_effect = None;
            }
        }
        for (ri, trace) in self.traces.iter_mut().enumerate() {
            trace.truncate(self.core.firings().get(ri).copied().unwrap_or(0) as usize);
        }
        self.ring.clear();
        self.baseline = ckpt.clone();
    }

    /// Domain-sliced rollback: rewinds only `regions` to their state in
    /// `ckpt`, leaving every other region's progress — and the wall clock —
    /// untouched, so work outside the afflicted domain is never replayed.
    ///
    /// The splice is only meaningful when both timelines share a frame of
    /// reference, so this engages only when `ckpt` and the current state
    /// sit inside the *same pipeline group* with initialized region state
    /// and `regions` is a *proper* subset of that group (rewinding the
    /// whole group is exactly [`RuntimeSim::restore`]). Returns `false`
    /// without changing anything when those preconditions fail — callers
    /// fall back to the global restore.
    ///
    /// On success the checkpoint ring is cleared and the baseline is
    /// re-seeded from the post-splice state (older snapshots describe a
    /// timeline that no longer exists for the rewound regions). The global
    /// stall counters are *not* rewound: the un-spliced regions' stalls
    /// genuinely happened, so the spliced regions' pre-rollback stalls
    /// remain accounted — a deliberate, documented accounting bias toward
    /// over-reporting stalls rather than losing them.
    pub fn restore_scoped(&mut self, ckpt: &SimCheckpoint, regions: &[usize]) -> bool {
        let Some(group) = self.groups.get(self.core.group_idx()) else {
            return false;
        };
        let in_group = regions.iter().all(|r| group.contains(r));
        if regions.is_empty() || !in_group || regions.len() >= group.len() {
            return false;
        }
        if !self.core.splice_regions_from(&ckpt.core, regions) {
            return false;
        }
        for f in &mut self.faults {
            f.stall_run = 0;
        }
        for &ri in regions {
            if let Some(trace) = self.traces.get_mut(ri) {
                trace.truncate(self.core.firings().get(ri).copied().unwrap_or(0) as usize);
            }
        }
        self.ring.clear();
        self.baseline = self.checkpoint();
        true
    }

    /// The checkpoint recovery should roll back to for `fault`:
    ///
    /// * corruption (residue-detected) — the newest checkpoint strictly
    ///   *before* the first poisoned firing, so no poisoned state
    ///   survives;
    /// * blocking (watchdog-detected) — the state *now*: stalled cycles
    ///   corrupt nothing, so no work needs replaying beyond them.
    #[must_use]
    pub fn rollback_target(&self, fault: &RuntimeFault) -> SimCheckpoint {
        match fault.detector {
            Detector::Watchdog => self.checkpoint(),
            Detector::Residue => {
                let horizon = fault.first_effect.unwrap_or(fault.detected_at);
                self.ring
                    .iter()
                    .rev()
                    .find(|c| c.wall() < horizon)
                    .unwrap_or(&self.baseline)
                    .clone()
            }
        }
    }

    /// Swaps in a repaired hardware mapping: the owned ADG / schedule /
    /// evaluation are replaced, stream→memory bindings and service rates
    /// are rebound onto the preserved dynamic state, and every pending
    /// fault's victim is re-resolved against the new hardware (consumed
    /// faults keep their history).
    ///
    /// # Errors
    ///
    /// Whatever [`crate::try_simulate`] would reject for the new pair —
    /// the repaired schedule must be valid on the repaired ADG.
    pub fn reprogram(
        &mut self,
        adg: Adg,
        schedule: Schedule,
        eval: Evaluation,
        config_path_len: u32,
    ) -> Result<(), SimError> {
        validate_schedule(&adg, &schedule)?;
        self.adg = adg;
        self.schedule = schedule;
        self.eval = eval;
        let problem = Problem::new(&self.adg, &self.kernel);
        self.stream_mems = self.schedule.stream_memories(&problem);
        self.ctrl = control_spec(&self.adg);
        let _ = config_path_len; // config-load charge is the orchestrator's
        let ctx = ctx!(self);
        self.core.rebind(ctx);
        for i in 0..self.faults.len() {
            if !self.faults[i].consumed {
                let timed = self.faults[i].timed;
                let first_effect = self.faults[i].first_effect;
                let mut re = self.resolve_fault(i, timed);
                re.first_effect = first_effect;
                self.faults[i] = re;
            }
        }
        Ok(())
    }

    /// Advances the simulation until it finishes or a fault is detected.
    /// A detected fault is consumed (it will not re-strike); the caller
    /// decides whether to repair/rollback before calling again.
    pub fn run_until_event(&mut self) -> StepOutcome {
        loop {
            if let Some(outcome) = self.step() {
                return outcome;
            }
        }
    }

    /// Advances the simulation by at most `cycles` wall cycles, stopping
    /// early on an event. Returns `None` if the budget elapsed with the
    /// run still in progress.
    pub fn run_for(&mut self, cycles: u64) -> Option<StepOutcome> {
        let until = self.core.wall().saturating_add(cycles);
        while self.core.wall() < until {
            if let Some(outcome) = self.step() {
                return Some(outcome);
            }
        }
        None
    }

    /// One engine tick plus detector/checkpoint bookkeeping. Returns
    /// `Some` when the run finished or a fault was detected.
    fn step(&mut self) -> Option<StepOutcome> {
        {
            // ---- effects for the cycle about to execute.
            let next_cycle = self.core.wall() + 1;
            for e in &mut self.effects {
                *e = Effect::Normal;
            }
            for t in &mut self.touched {
                *t = false;
            }
            for (fi, f) in self.faults.iter().enumerate() {
                if f.consumed || !f.timed.active_at(next_cycle) {
                    continue;
                }
                let effect = match f.timed.kind {
                    // A degraded link throttles: it still serves
                    // `capacity` percent of cycles and blocks the rest.
                    // Short blocked runs reset the watchdog, so mild
                    // degradation is a graceful slowdown, not a detection.
                    FaultKind::DegradedLink { capacity } => {
                        let cap = u64::from(capacity.clamp(1, 100));
                        if next_cycle % 100 < cap {
                            continue;
                        }
                        Effect::Blocked
                    }
                    k if is_blocking(k) => Effect::Blocked,
                    _ => Effect::Poisoned,
                };
                for &ri in &f.regions {
                    if !self.core.region_live(ctx!(self), ri) {
                        continue;
                    }
                    self.touched[fi] = true;
                    // Blocking dominates: a region both blocked and
                    // poisoned does not fire, hence cannot corrupt.
                    if self.effects[ri] != Effect::Blocked {
                        self.effects[ri] = effect;
                    }
                }
            }

            // ---- one engine tick.
            let ctx = ctx!(self);
            let tick = self.core.tick(ctx, &self.effects);
            match tick {
                Tick::Finished => {
                    // Final residue check: corruption at the very end of
                    // the run must not escape into "results delivered".
                    if let Some(fault) = self.residue_check() {
                        return Some(StepOutcome::Detected(Box::new(fault)));
                    }
                    return Some(StepOutcome::Finished);
                }
                Tick::GroupDone => return None,
                Tick::Cycle => {}
            }
            let wall = self.core.wall();

            // ---- firing-trace catch-up: the engine fires each region at
            // most once per cycle, so any firing-count growth this cycle
            // is attributed to the cycle just executed.
            if self.rt.record_traces {
                let gi = self.core.group_idx();
                let gc = self.core.group_cycle();
                for (ri, trace) in self.traces.iter_mut().enumerate() {
                    let fired = self.core.firings().get(ri).copied().unwrap_or(0) as usize;
                    while trace.len() < fired {
                        trace.push((gi, gc));
                    }
                }
            }

            // ---- detector bookkeeping.
            let mut detected: Option<usize> = None;
            for (fi, f) in self.faults.iter_mut().enumerate() {
                if f.consumed {
                    continue;
                }
                if self.touched[fi] {
                    if f.first_effect.is_none() {
                        f.first_effect = Some(wall);
                    }
                    if is_blocking(f.timed.kind) {
                        f.stall_run += 1;
                        if f.stall_run >= self.rt.watchdog_bound && detected.is_none() {
                            detected = Some(fi);
                        }
                    }
                } else if is_blocking(f.timed.kind) {
                    // Progress resumed (transient cleared / region moved
                    // on): the watchdog run restarts.
                    f.stall_run = 0;
                }
            }
            if let Some(fi) = detected {
                return Some(StepOutcome::Detected(Box::new(
                    self.consume(fi, Detector::Watchdog),
                )));
            }

            // ---- residue check: every cycle in eager mode, else at
            // interval boundaries (and once at run end, above).
            let residue_due = self.rt.residue_eager
                || (self.rt.residue_interval > 0 && wall.is_multiple_of(self.rt.residue_interval));
            if residue_due {
                if let Some(fault) = self.residue_check() {
                    return Some(StepOutcome::Detected(Box::new(fault)));
                }
            }

            // ---- periodic checkpoint ring.
            if self.rt.checkpoint_interval > 0
                && wall.is_multiple_of(self.rt.checkpoint_interval)
                && self.rt.checkpoint_ring > 0
            {
                if self.ring.len() == self.rt.checkpoint_ring {
                    self.ring.pop_front();
                }
                self.ring.push_back(self.checkpoint());
            }
        }
        None
    }

    /// Raises the poison fault with the earliest observed effect if any
    /// poisoned firings are accounted in the engine state.
    fn residue_check(&mut self) -> Option<RuntimeFault> {
        if self.core.poisoned_total() == 0 {
            return None;
        }
        let fi = self
            .faults
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.consumed && !is_blocking(f.timed.kind) && f.first_effect.is_some()
            })
            .min_by_key(|(_, f)| f.first_effect)
            .map(|(i, _)| i)?;
        Some(self.consume(fi, Detector::Residue))
    }

    /// Marks fault `fi` consumed and assembles its detection record.
    fn consume(&mut self, fi: usize, detector: Detector) -> RuntimeFault {
        let wall = self.core.wall();
        let f = &mut self.faults[fi];
        f.consumed = true;
        RuntimeFault {
            fault_index: fi,
            kind: f.timed.kind,
            victim: f.victim,
            lifetime: f.timed.lifetime,
            arrival: f.timed.arrival,
            first_effect: f.first_effect,
            detected_at: wall,
            detector,
            regions: f.regions.clone(),
        }
    }

    /// The simulation report accumulated so far (final once
    /// [`StepOutcome::Finished`] has been returned).
    #[must_use]
    pub fn report(&self) -> SimReport {
        self.core.report(&self.kernel)
    }

    /// Full hardware counters for the run so far.
    #[must_use]
    pub fn telemetry(&self) -> SimTelemetry {
        self.core.telemetry(ctx!(self), &self.schedule)
    }

    /// Per-region firing traces — `(pipeline group, group-local cycle)`
    /// per completed firing — when [`RuntimeConfig::record_traces`] is on,
    /// `None` otherwise. Traces roll back with the engine state on
    /// restore, so after recovery they describe the surviving timeline.
    #[must_use]
    pub fn firing_traces(&self) -> Option<&[Vec<(usize, u64)>]> {
        self.rt.record_traces.then_some(self.traces.as_slice())
    }

    /// The currently-programmed schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The current hardware view (possibly repaired).
    #[must_use]
    pub fn adg(&self) -> &Adg {
        &self.adg
    }

    /// The current evaluation.
    #[must_use]
    pub fn eval(&self) -> &Evaluation {
        &self.eval
    }
}

/// Whether a fault kind stops data movement (watchdog-detectable) rather
/// than corrupting it silently. [`FaultKind::DegradedLink`] counts as
/// blocking for watchdog bookkeeping, but only blocks on the cycles the
/// link cannot serve (see the effect loop in `step`).
fn is_blocking(kind: FaultKind) -> bool {
    !matches!(kind, FaultKind::StuckSwitch | FaultKind::StuckLane)
}

/// Deterministically picks one element of an ordered set.
fn pick<T: Copy>(rng: &mut StdRng, set: &BTreeSet<T>) -> Option<T> {
    if set.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..set.len());
    set.iter().nth(i).copied()
}

/// Region an entity belongs to.
fn entity_region(ent: &Entity) -> usize {
    match ent.kind {
        EntityKind::Op { region, .. }
        | EntityKind::InPort { region, .. }
        | EntityKind::OutPort { region, .. } => region,
    }
}

/// Region of the virtual edge `idx`'s source entity.
fn route_region(problem: &Problem<'_>, idx: usize) -> Option<usize> {
    problem
        .edges
        .get(idx)
        .and_then(|v| problem.entities.get(v.src))
        .map(entity_region)
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_scheduler::{schedule, SchedulerConfig};

    use super::*;
    use crate::{try_simulate, SimConfig};

    fn dot(n: u64) -> dsagen_dfg::Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let c = k.array("c", dsagen_adg::BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(dsagen_adg::Opcode::Mul, va, vb);
        let acc = r.reduce(dsagen_adg::Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    fn fixture(n: u64) -> (Adg, CompiledKernel, Schedule, Evaluation) {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(n), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(s.is_legal(), "schedule: {:?}", s.eval);
        (adg, ck, s.schedule, s.eval)
    }

    fn runtime(
        adg: &Adg,
        ck: &CompiledKernel,
        sch: &Schedule,
        ev: &Evaluation,
        faults: &FaultSchedule,
    ) -> RuntimeSim {
        RuntimeSim::new(
            adg,
            ck,
            sch,
            ev,
            0,
            SimConfig::default(),
            RuntimeConfig::default(),
            faults,
        )
        .unwrap()
    }

    #[test]
    fn empty_schedule_matches_plain_simulation_exactly() {
        let (adg, ck, sch, ev) = fixture(1024);
        let plain = try_simulate(&adg, &ck, &sch, &ev, 0, &SimConfig::default()).unwrap();
        let mut sim = runtime(&adg, &ck, &sch, &ev, &FaultSchedule::new(1));
        assert_eq!(sim.run_until_event(), StepOutcome::Finished);
        assert_eq!(sim.report(), plain);
        assert_eq!(sim.pending_faults(), 0);
        assert_eq!(sim.poisoned_total(), 0);
    }

    #[test]
    fn blocking_fault_is_watchdog_detected_within_bound() {
        let (adg, ck, sch, ev) = fixture(4096);
        let faults =
            FaultSchedule::new(3).with(100, FaultLifetime::Permanent, FaultKind::DeadPe);
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        match sim.run_until_event() {
            StepOutcome::Detected(f) => {
                assert_eq!(f.kind, FaultKind::DeadPe);
                assert_eq!(f.detector, Detector::Watchdog);
                assert!(matches!(f.victim, FaultTarget::Node(_)), "{f}");
                assert!(!f.regions.is_empty());
                assert!(
                    f.detection_latency() <= RuntimeConfig::default().watchdog_bound,
                    "latency {} exceeds bound",
                    f.detection_latency()
                );
                assert!(f.first_effect.is_some());
            }
            other => panic!("expected detection, got {other:?}"),
        }
        assert_eq!(sim.pending_faults(), 0, "detected fault is consumed");
    }

    #[test]
    fn poison_fault_is_residue_detected_within_interval() {
        let (adg, ck, sch, ev) = fixture(4096);
        let faults =
            FaultSchedule::new(9).with(100, FaultLifetime::Permanent, FaultKind::StuckSwitch);
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        match sim.run_until_event() {
            StepOutcome::Detected(f) => {
                assert_eq!(f.kind, FaultKind::StuckSwitch);
                assert_eq!(f.detector, Detector::Residue);
                assert!(
                    f.detection_latency() <= RuntimeConfig::default().residue_interval,
                    "latency {} exceeds interval",
                    f.detection_latency()
                );
                assert!(sim.poisoned_total() > 0);
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        let (adg, ck, sch, ev) = fixture(4096);
        let plain = try_simulate(&adg, &ck, &sch, &ev, 0, &SimConfig::default()).unwrap();
        let mut sim = runtime(&adg, &ck, &sch, &ev, &FaultSchedule::new(2));
        assert!(sim.run_for(500).is_none(), "run finished inside the pause budget");
        let ckpt = sim.checkpoint();
        assert_eq!(ckpt.wall(), sim.wall());
        assert_eq!(sim.run_until_event(), StepOutcome::Finished);
        let first = sim.report();
        sim.restore(&ckpt);
        assert_eq!(sim.wall(), ckpt.wall());
        assert_eq!(sim.run_until_event(), StepOutcome::Finished);
        let second = sim.report();
        assert_eq!(first, second, "resume diverged from its own first run");
        assert_eq!(first, plain, "resumed run diverged from uninterrupted run");
    }

    #[test]
    fn config_plane_kinds_are_rejected() {
        let (adg, ck, sch, ev) = fixture(256);
        let faults =
            FaultSchedule::new(1).with(10, FaultLifetime::Permanent, FaultKind::BitFlip);
        let err = RuntimeSim::new(
            &adg,
            &ck,
            &sch,
            &ev,
            0,
            SimConfig::default(),
            RuntimeConfig::default(),
            &faults,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::UnsupportedRuntimeFault {
                    kind: FaultKind::BitFlip
                }
            ),
            "unexpected error {err}"
        );
    }

    #[test]
    fn short_transient_clears_below_watchdog_bound() {
        let (adg, ck, sch, ev) = fixture(2048);
        let plain = try_simulate(&adg, &ck, &sch, &ev, 0, &SimConfig::default()).unwrap();
        // Eight blocked cycles — far below the 64-cycle watchdog bound —
        // must ride through undetected and still complete all work.
        let faults = FaultSchedule::new(5).with(
            100,
            FaultLifetime::Transient { duration: 8 },
            FaultKind::DeadPe,
        );
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        assert_eq!(sim.run_until_event(), StepOutcome::Finished);
        assert_eq!(sim.pending_faults(), 1, "undetected fault stays pending");
        let report = sim.report();
        assert_eq!(report.firings, plain.firings, "all work still completes");
        assert!(report.cycles >= plain.cycles);
    }

    #[test]
    fn dead_port_is_watchdog_detected_with_edge_victim() {
        let (adg, ck, sch, ev) = fixture(4096);
        let faults =
            FaultSchedule::new(21).with(100, FaultLifetime::Permanent, FaultKind::DeadPort);
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        match sim.run_until_event() {
            StepOutcome::Detected(f) => {
                assert_eq!(f.kind, FaultKind::DeadPort);
                assert_eq!(f.detector, Detector::Watchdog);
                assert!(matches!(f.victim, FaultTarget::Edge(_)), "{f}");
                assert!(
                    f.detection_latency() <= RuntimeConfig::default().watchdog_bound,
                    "latency {} exceeds bound",
                    f.detection_latency()
                );
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn stuck_lane_is_residue_detected() {
        let (adg, ck, sch, ev) = fixture(4096);
        let faults =
            FaultSchedule::new(17).with(100, FaultLifetime::Permanent, FaultKind::StuckLane);
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        match sim.run_until_event() {
            StepOutcome::Detected(f) => {
                assert_eq!(f.kind, FaultKind::StuckLane);
                assert_eq!(f.detector, Detector::Residue);
                assert!(matches!(f.victim, FaultTarget::Edge(_)), "{f}");
                assert!(
                    f.detection_latency() <= RuntimeConfig::default().residue_interval,
                    "latency {} exceeds interval",
                    f.detection_latency()
                );
                assert!(sim.poisoned_total() > 0);
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn mildly_degraded_link_slows_the_run_without_detection() {
        let (adg, ck, sch, ev) = fixture(2048);
        let plain = try_simulate(&adg, &ck, &sch, &ev, 0, &SimConfig::default()).unwrap();
        // 60% capacity blocks runs of 40 consecutive cycles — below the
        // 64-cycle watchdog bound, so the run completes slower but clean.
        let faults = FaultSchedule::new(13).with(
            100,
            FaultLifetime::Permanent,
            FaultKind::DegradedLink { capacity: 60 },
        );
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        assert_eq!(sim.run_until_event(), StepOutcome::Finished);
        let report = sim.report();
        assert_eq!(report.firings, plain.firings, "all work still completes");
        assert!(
            report.cycles >= plain.cycles,
            "throttled run cannot be faster: {} < {}",
            report.cycles,
            plain.cycles
        );
        assert_eq!(sim.poisoned_total(), 0, "throttling never corrupts");
    }

    #[test]
    fn severely_degraded_link_trips_the_watchdog() {
        let (adg, ck, sch, ev) = fixture(4096);
        // 10% capacity blocks runs of 90 consecutive cycles — past the
        // 64-cycle bound, so the watchdog reports it like a dead link.
        let faults = FaultSchedule::new(13).with(
            100,
            FaultLifetime::Permanent,
            FaultKind::DegradedLink { capacity: 10 },
        );
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        match sim.run_until_event() {
            StepOutcome::Detected(f) => {
                assert!(matches!(f.kind, FaultKind::DegradedLink { capacity: 10 }), "{f}");
                assert_eq!(f.detector, Detector::Watchdog);
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn eager_residue_detects_faster_and_within_the_documented_bound() {
        let (adg, ck, sch, ev) = fixture(4096);
        let faults =
            FaultSchedule::new(9).with(100, FaultLifetime::Permanent, FaultKind::StuckSwitch);
        let lat = |eager: bool| {
            let rt = RuntimeConfig {
                residue_eager: eager,
                ..RuntimeConfig::default()
            };
            let mut sim = RuntimeSim::new(
                &adg, &ck, &sch, &ev, 0, SimConfig::default(), rt, &faults,
            )
            .unwrap();
            match sim.run_until_event() {
                StepOutcome::Detected(f) => {
                    assert_eq!(f.detector, Detector::Residue);
                    f.detection_latency()
                }
                other => panic!("expected detection, got {other:?}"),
            }
        };
        let interval_latency = lat(false);
        let eager_latency = lat(true);
        // Regression: the documented bound holds in both modes, and eager
        // mode is never slower than interval mode.
        assert!(interval_latency <= RuntimeConfig::default().residue_interval);
        assert!(eager_latency <= interval_latency, "{eager_latency} > {interval_latency}");
        assert!(
            eager_latency <= 2,
            "eager residue must detect within a couple of cycles, got {eager_latency}"
        );
    }

    #[test]
    fn fault_display_names_detector_and_victim() {
        let (adg, ck, sch, ev) = fixture(4096);
        let faults =
            FaultSchedule::new(3).with(100, FaultLifetime::Permanent, FaultKind::DeadPe);
        let mut sim = runtime(&adg, &ck, &sch, &ev, &faults);
        let StepOutcome::Detected(f) = sim.run_until_event() else {
            panic!("expected detection");
        };
        let txt = f.to_string();
        assert!(txt.contains("dead-pe"), "{txt}");
        assert!(txt.contains("watchdog"), "{txt}");
        assert!(txt.contains("permanent"), "{txt}");
    }
}
