//! The recovery orchestrator: detection → checkpoint → online repair →
//! verified reprogramming → resume.
//!
//! [`run_with_recovery`] drives a [`RuntimeSim`] to completion under a
//! [`FaultSchedule`], intervening on every detected [`RuntimeFault`]:
//!
//! 1. **Checkpoint** — pick the rollback target
//!    ([`RuntimeSim::rollback_target`]): the current state for blocking
//!    faults (stalls corrupt nothing), the newest pre-corruption
//!    checkpoint for residue-detected faults.
//! 2. **Repair** — for permanent/intermittent faults the victim is
//!    decommissioned from the ADG and the schedule repaired around it
//!    with [`repair_with_escalation`]; transient faults skip this step
//!    (the hardware is healthy again by resume).
//! 3. **Verify** — the (repaired or original) configuration is proven by
//!    [`verify_round_trip_timed`] before it is allowed near the fabric.
//! 4. **Reprogram** — the verified bitstream is replayed through a
//!    CRC-framed [`ProgrammingSession`] with retransmission/backoff; the
//!    frames, backoff, and the regenerated configuration path are
//!    charged as recovery overhead cycles.
//! 5. **Resume** — the engine state is restored and (if repaired)
//!    rebound to the new mapping; execution continues from the
//!    checkpoint.
//!
//! The result is a [`RecoveryReport`]: the functional run report (equal
//! to the fault-free run for recovered faults) plus one
//! [`RecoveryEvent`] per intervention and the total overhead in cycles.
//! Every failure mode is a typed [`RecoveryError`];
//! [`RecoveryError::Unrecoverable`] means even the degraded-mode rung
//! failed — nothing in this module panics.
//!
//! # The degradation ladder
//!
//! Step 2 is not all-or-nothing: structural repair climbs a ladder of
//! [`RepairRung`]s from least to most destructive, and when every
//! structural rung fails the run continues in *degraded mode* instead of
//! aborting:
//!
//! 1. [`RepairRung::PortReroute`] — mask only the afflicted port/link
//!    (capability mask) and reroute around it with the base repair
//!    budget; the victim's owner keeps serving on its other ports.
//! 2. [`RepairRung::PortMask`] — same mask, full escalation budget.
//! 3. [`RepairRung::NodeDecommission`] — remove the whole owning node,
//!    the pre-ladder fail-stop behaviour.
//! 4. [`RepairRung::PartialReplace`] — re-place the afflicted *recovery
//!    domain* from scratch (the whole kernel when it forms a single
//!    domain) with normal objectives, over the same quarantine masks the
//!    degraded rung would use — minus the fabric-as-is fallback, which
//!    stays exclusive to degraded mode. A from-scratch placement explores
//!    mappings incremental repair cannot reach, at full fidelity.
//! 5. **Degraded mode** — re-schedule the kernel from scratch on the
//!    surviving fabric with relaxed objectives (II and timing-mismatch
//!    pressure dropped, so a slower-but-feasible mapping wins), resume
//!    from the checkpoint ring, and finish at reduced throughput. The
//!    run returns `Ok` with [`RecoveryReport::degraded`] set and a
//!    measured [`RecoveryReport::throughput_ratio`]; callers that want
//!    the distinction typed use [`run_with_degradation`], which wraps
//!    the report in [`RecoveryOutcome`].
//!
//! # Blast-radius containment
//!
//! Recovery is *domain-scoped*: the kernel's regions are partitioned into
//! [`RecoveryDomains`] (regions coupled by shared fabric or same-group
//! memory arbitration), and every detected fault resolves to the single
//! domain its victim sits in. When that domain is a proper subset of the
//! kernel, (a) the structural rungs pin every other domain's placements
//! and routes (verified bit-identical via
//! [`Schedule::agrees_outside`] after each candidate repair), and (b)
//! rollback is sliced to the afflicted domain
//! ([`RuntimeSim::restore_scoped`]) so untouched domains keep their
//! progress — the cycles they would have replayed are reported as
//! [`RecoveryEvent::replayed_cycles_saved`]. Single-domain kernels fall
//! back to exactly the whole-kernel behaviour.

use std::collections::BTreeMap;
use std::fmt;

use dsagen_adg::Adg;
use dsagen_dfg::CompiledKernel;
use dsagen_faults::{FaultLifetime, FaultSchedule, FaultTarget};
use dsagen_hwgen::{
    generate_config_paths, verify_round_trip_timed, ProgrammingSession, SessionConfig,
    SessionError, SessionState,
};
use dsagen_scheduler::{
    repair_with_mask, repair_with_mask_scoped, CapabilityMask, Evaluation, Problem,
    RepairOutcome, Schedule, SchedulerConfig, Weights,
};
use dsagen_telemetry::Telemetry;

use crate::domains::RecoveryDomains;
use crate::runtime::{RuntimeConfig, RuntimeFault, RuntimeSim, StepOutcome};
use crate::{SimConfig, SimError, SimReport};

/// Tunables for the recovery flow.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Detection / checkpointing tunables.
    pub rt: RuntimeConfig,
    /// Scheduler configuration used for online repair.
    pub scheduler: SchedulerConfig,
    /// Retry/backoff tunables for reprogramming.
    pub session: SessionConfig,
    /// Maximum recoveries before [`RecoveryError::BudgetExhausted`].
    pub max_recoveries: usize,
    /// Escalation attempts handed to [`repair_with_escalation`].
    pub repair_attempts: u32,
    /// Parallel configuration paths regenerated after a repair.
    pub config_paths: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            rt: RuntimeConfig::default(),
            scheduler: SchedulerConfig::default(),
            session: SessionConfig::default(),
            max_recoveries: 8,
            repair_attempts: 4,
            config_paths: 4,
        }
    }
}

/// One structural rung of the degradation ladder, least to most
/// destructive. Which rung actually repaired a fault is recorded in
/// [`RecoveryAction::Repaired`] so soak runs can attribute every
/// recovery to its granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairRung {
    /// Only the afflicted port/link is masked; repair reroutes around it
    /// with the base budget. The victim's owner keeps all other ports.
    PortReroute,
    /// Same port mask, full escalation budget.
    PortMask,
    /// The whole owning node is decommissioned — the pre-ladder
    /// fail-stop behaviour.
    NodeDecommission,
    /// From-scratch re-placement of the afflicted recovery domain (the
    /// whole kernel when it forms a single domain) with *normal*
    /// objectives, over the victim's quarantine masks. The last
    /// full-fidelity rung before the degraded-mode reschedule.
    PartialReplace,
}

impl fmt::Display for RepairRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepairRung::PortReroute => "port-reroute",
            RepairRung::PortMask => "port-mask",
            RepairRung::NodeDecommission => "node-decommission",
            RepairRung::PartialReplace => "partial-replace",
        })
    }
}

/// What the orchestrator did about one detected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// Transient fault: rolled back (if needed) and resumed on the same
    /// mapping after a verified configuration scrub.
    RollbackOnly,
    /// Permanent/intermittent fault: damage masked at the recorded rung,
    /// schedule repaired, fabric reprogrammed with the repaired
    /// configuration.
    Repaired {
        /// How much of the previous schedule survived.
        outcome: RepairOutcome,
        /// Scheduler iterations the repair took.
        iterations: u32,
        /// Which ladder rung produced the legal repair.
        rung: RepairRung,
    },
    /// Every structural rung failed: the kernel was re-scheduled from
    /// scratch on the surviving fabric with relaxed objectives and the
    /// run continued in degraded mode.
    DegradedReschedule {
        /// Scheduler iterations the degraded reschedule took.
        iterations: u32,
    },
}

impl RecoveryAction {
    /// Stable label for rung histograms: `"rollback-only"`, the rung's
    /// display name for structural repairs, `"full-reschedule"` for the
    /// degraded-mode rung.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryAction::RollbackOnly => "rollback-only",
            RecoveryAction::Repaired { rung, .. } => match rung {
                RepairRung::PortReroute => "port-reroute",
                RepairRung::PortMask => "port-mask",
                RepairRung::NodeDecommission => "node-decommission",
                RepairRung::PartialReplace => "partial-replace",
            },
            RecoveryAction::DegradedReschedule { .. } => "full-reschedule",
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::RollbackOnly => f.write_str("rollback-only"),
            RecoveryAction::Repaired {
                outcome,
                iterations,
                rung,
            } => {
                write!(f, "repaired@{rung} ({outcome:?}, {iterations} iters)")
            }
            RecoveryAction::DegradedReschedule { iterations } => {
                write!(f, "degraded-reschedule ({iterations} iters)")
            }
        }
    }
}

/// One complete recovery: detection, action, and its cycle costs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The detected fault.
    pub fault: RuntimeFault,
    /// What was done about it.
    pub action: RecoveryAction,
    /// Cycles from first observable effect to detection.
    pub detection_latency: u64,
    /// Work cycles re-executed after rollback (detected_at − checkpoint).
    /// Zero when the rollback was domain-sliced — the replay this event
    /// *avoided* is in [`RecoveryEvent::replayed_cycles_saved`].
    pub replayed_cycles: u64,
    /// Cycles of other domains' work that a domain-sliced rollback
    /// preserved instead of replaying (detected_at − checkpoint when the
    /// scoped restore engaged, `0` for whole-engine restores).
    pub replayed_cycles_saved: u64,
    /// Recovery domain the fault's victim sits in, `None` when the fault
    /// struck hardware no region uses.
    pub domain: Option<usize>,
    /// Reprogramming cost: frames sent + retransmission backoff + the
    /// regenerated configuration-path load.
    pub reprogram_cycles: u64,
}

impl RecoveryEvent {
    /// Mean-time-to-repair contribution of this event: cycles the
    /// accelerator was not making forward progress because of the fault.
    #[must_use]
    pub fn mttr_cycles(&self) -> u64 {
        self.detection_latency + self.replayed_cycles + self.reprogram_cycles
    }

    /// Overhead charged against the run (replay + reprogram; detection
    /// latency cycles are already part of the engine timeline).
    #[must_use]
    pub fn overhead_cycles(&self) -> u64 {
        self.replayed_cycles + self.reprogram_cycles
    }
}

/// Why a run could not be recovered. Every variant is a terminal,
/// typed outcome — the orchestrator never panics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// The simulation could not start or resume (schedule/hardware
    /// mismatch).
    Sim(SimError),
    /// Every ladder rung failed, including the degraded-mode reschedule:
    /// the surviving fabric cannot run this kernel at all.
    Unrecoverable {
        /// The fault that ended the run.
        fault: Box<RuntimeFault>,
        /// Human-readable reason.
        reason: String,
    },
    /// The repaired configuration failed round-trip verification.
    Verify {
        /// The fault being recovered when verification failed.
        fault: Box<RuntimeFault>,
        /// The verifier's message.
        reason: String,
    },
    /// The programming session could not deliver the configuration
    /// within its retry budget.
    Reprogram {
        /// The fault being recovered when delivery failed.
        fault: Box<RuntimeFault>,
        /// The session's terminal error.
        error: SessionError,
    },
    /// More faults were detected than [`RecoveryPolicy::max_recoveries`]
    /// allows.
    BudgetExhausted {
        /// Recoveries completed before the budget ran out.
        recoveries: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Sim(e) => write!(f, "simulation error: {e}"),
            RecoveryError::Unrecoverable { fault, reason } => {
                write!(f, "unrecoverable fault ({fault}): {reason}")
            }
            RecoveryError::Verify { fault, reason } => {
                write!(f, "config verification failed recovering {fault}: {reason}")
            }
            RecoveryError::Reprogram { fault, error } => {
                write!(f, "reprogramming failed recovering {fault}: {error}")
            }
            RecoveryError::BudgetExhausted { recoveries } => {
                write!(f, "recovery budget exhausted after {recoveries} recoveries")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<SimError> for RecoveryError {
    fn from(e: SimError) -> Self {
        RecoveryError::Sim(e)
    }
}

/// The outcome of a fully-recovered run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The functional simulation report. For recovered faults the
    /// firings/outputs equal the fault-free run; `report.cycles` is the
    /// *engine* timeline (excluding recovery overhead).
    pub report: SimReport,
    /// One entry per recovered fault, in detection order.
    pub events: Vec<RecoveryEvent>,
    /// Total recovery overhead (replayed work + reprogramming).
    pub overhead_cycles: u64,
    /// End-to-end cycles including recovery overhead.
    pub total_cycles: u64,
    /// Configuration-path length programmed at the end of the run (may
    /// differ from the initial one after repairs).
    pub config_path_len: u32,
    /// Whether any fault fell through to the degraded-mode rung (the run
    /// finished at reduced throughput on a relaxed-objective mapping).
    pub degraded: bool,
    /// Measured throughput relative to the fault-free run
    /// (`fault_free_cycles / total_cycles`, clamped to `(0, 1]`). Only
    /// computed for degraded runs; `None` otherwise.
    pub throughput_ratio: Option<f64>,
    /// Human-readable labels of every capability taken offline by the
    /// ladder (masked ports, severed links, decommissioned nodes), in
    /// recovery order.
    pub masked_resources: Vec<String>,
    /// Per-region firing traces of the surviving timeline —
    /// `(pipeline group, group-local cycle)` per completed firing — when
    /// [`RuntimeConfig::record_traces`] was on; `None` otherwise. Used by
    /// the domain-isolation invariant tests to compare untouched domains
    /// bit-for-bit against a fault-free run.
    pub firing_traces: Option<Vec<Vec<(usize, u64)>>>,
}

impl RecoveryReport {
    /// Number of recoveries performed.
    #[must_use]
    pub fn recoveries(&self) -> usize {
        self.events.len()
    }

    /// How many recoveries resolved at each rung, keyed by
    /// [`RecoveryAction::label`]. The `"full-reschedule"` count is the
    /// number of whole-kernel last-resort reschedules — the quantity
    /// blast-radius containment exists to minimize.
    #[must_use]
    pub fn rung_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in &self.events {
            *hist.entry(e.action.label()).or_insert(0) += 1;
        }
        hist
    }

    /// Total cycles domain-sliced rollbacks preserved across all events.
    #[must_use]
    pub fn replayed_cycles_saved(&self) -> u64 {
        self.events.iter().map(|e| e.replayed_cycles_saved).sum()
    }

    /// Mean time to repair across all recoveries, in cycles.
    #[must_use]
    pub fn mttr_cycles(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| e.mttr_cycles() as f64).sum::<f64>()
            / self.events.len() as f64
    }

    /// Relative overhead versus a fault-free run of `fault_free_cycles`.
    #[must_use]
    pub fn overhead_vs(&self, fault_free_cycles: u64) -> f64 {
        if fault_free_cycles == 0 {
            return 0.0;
        }
        (self.total_cycles as f64 / fault_free_cycles as f64) - 1.0
    }
}

/// Runs `schedule` on `adg` under `faults`, recovering every detected
/// fault per `policy`. Emits `recovery/*` telemetry spans/events into
/// `tel` (no-ops when disabled).
///
/// # Errors
///
/// A typed [`RecoveryError`] for every terminal failure mode; see the
/// module docs for the ladder. Never panics.
#[allow(clippy::too_many_arguments)] // mirrors `try_simulate` plus the fault plane
pub fn run_with_recovery(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
    faults: &FaultSchedule,
    policy: &RecoveryPolicy,
    tel: &Telemetry,
) -> Result<RecoveryReport, RecoveryError> {
    let mut span = tel.span("recovery", "run_with_recovery");
    span.arg("faults", faults.faults.len() as u64);

    let mut sim = RuntimeSim::new(
        adg,
        kernel,
        schedule,
        eval,
        config_path_len,
        *cfg,
        policy.rt,
        faults,
    )?;
    // The orchestrator's evolving view of the (possibly degraded,
    // possibly repaired) hardware.
    let mut adg_now = adg.clone();
    let mut cpl_now = config_path_len;
    let mut events: Vec<RecoveryEvent> = Vec::new();
    let mut overhead: u64 = 0;
    let mut degraded = false;
    let mut masked_resources: Vec<String> = Vec::new();
    // The fault-isolation partition of the *current* mapping; re-derived
    // after every reprogram (a repair can change which regions share
    // fabric).
    let mut domains = RecoveryDomains::derive(adg, kernel, schedule);

    loop {
        match sim.run_until_event() {
            StepOutcome::Finished => break,
            StepOutcome::Detected(fault) => {
                let fault = *fault;
                // Resolve the blast radius: a single victim's affected
                // regions always share one domain by construction.
                let domain = domains.domain_of_regions(&fault.regions);
                let afflicted: std::collections::BTreeSet<usize> = domain
                    .map(|d| domains.regions_in(d).iter().copied().collect())
                    .unwrap_or_default();
                // Scoped recovery only pays off (and only differs) when
                // other domains exist to protect.
                let scoped =
                    !afflicted.is_empty() && afflicted.len() < domains.region_count();
                if events.len() >= policy.max_recoveries {
                    span.arg("outcome", "budget-exhausted");
                    span.end();
                    tel.recorder().record("recovery", || {
                        (
                            "budget_exhausted".to_string(),
                            format!("recoveries={}", events.len()),
                        )
                    });
                    let _ = tel.recorder().dump_on_error("recovery_budget_exhausted");
                    return Err(RecoveryError::BudgetExhausted {
                        recoveries: events.len(),
                    });
                }
                tel.emit(|| {
                    dsagen_telemetry::EventData::new("recovery", "detect")
                        .arg("kind", fault.kind.to_string())
                        .arg("victim", fault.victim.to_string())
                        .arg("detector", fault.detector.to_string())
                        .arg("detected_at", fault.detected_at)
                        .arg("latency", fault.detection_latency())
                        .arg(
                            "domain",
                            domain.map_or_else(|| "none".to_string(), |d| d.to_string()),
                        )
                });
                tel.metrics().add("recovery.faults_detected", 1);
                tel.recorder().record("recovery", || {
                    (
                        "detect".to_string(),
                        format!(
                            "kind={} victim={} at={}",
                            fault.kind, fault.victim, fault.detected_at
                        ),
                    )
                });

                // 1. Checkpoint: pick the rollback target before anything
                //    mutates the simulation.
                let ckpt = sim.rollback_target(&fault);
                let replayed = fault.detected_at.saturating_sub(ckpt.wall());

                // 2. Repair (permanent/intermittent only): climb the
                //    degradation ladder — port mask, escalated port
                //    mask, node decommission, then degraded-mode
                //    reschedule. Each structural rung masks damage on a
                //    scratch fabric; an infeasible rung escalates
                //    instead of aborting.
                let needs_repair =
                    !matches!(fault.lifetime, FaultLifetime::Transient { .. });
                let (action, sched_now, eval_now) = if needs_repair {
                    let mut rspan = tel.span("recovery", "repair");
                    let mut chosen = None;
                    for (rung, mask) in ladder(&adg_now, &fault) {
                        let attempts = match rung {
                            RepairRung::PortReroute => 1,
                            _ => policy.repair_attempts,
                        };
                        // When other domains exist, the rung repairs only
                        // the afflicted domain with every other domain's
                        // placements and routes pinned; single-domain
                        // kernels take the exact whole-kernel path.
                        let attempt = if scoped {
                            repair_with_mask_scoped(
                                &adg_now,
                                kernel,
                                sim.schedule(),
                                &afflicted,
                                &policy.scheduler,
                                attempts,
                                &mask,
                                false,
                            )
                        } else {
                            repair_with_mask(
                                &adg_now,
                                kernel,
                                sim.schedule(),
                                &policy.scheduler,
                                attempts,
                                &mask,
                            )
                        };
                        let legal = attempt
                            .as_ref()
                            .is_ok_and(|(res, _)| res.is_legal());
                        tel.emit(|| {
                            dsagen_telemetry::EventData::new("recovery", "rung")
                                .arg("rung", rung.to_string())
                                .arg("legal", legal)
                                .arg("scoped", scoped)
                        });
                        tel.metrics()
                            .add(&format!("recovery.rung.{rung}.attempts"), 1);
                        tel.recorder().record("recovery", || {
                            (
                                "rung".to_string(),
                                format!("rung={rung} legal={legal} scoped={scoped}"),
                            )
                        });
                        if let Ok((res, masked_adg)) = attempt {
                            if res.is_legal() {
                                // Containment proof: a scoped repair must
                                // leave every pinned domain bit-identical.
                                if scoped
                                    && !res.schedule.agrees_outside(
                                        &Problem::new(&adg_now, kernel),
                                        sim.schedule(),
                                        &afflicted,
                                    )
                                {
                                    continue;
                                }
                                chosen = Some((res, masked_adg, mask, rung));
                                break;
                            }
                        }
                    }
                    // Rung 4, partial re-placement: re-place the afflicted
                    // domain (or the whole kernel when it is one domain)
                    // from scratch with *normal* objectives over the
                    // victim's quarantine masks. No fabric-as-is fallback
                    // here — that concession stays exclusive to the
                    // degraded rung below.
                    if chosen.is_none() {
                        let replace_regions: std::collections::BTreeSet<usize> = if scoped {
                            afflicted.clone()
                        } else {
                            (0..domains.region_count()).collect()
                        };
                        let replace_cfg = partial_replace_config(&policy.scheduler);
                        for mask in partial_masks(&adg_now, &fault) {
                            let attempt = repair_with_mask_scoped(
                                &adg_now,
                                kernel,
                                sim.schedule(),
                                &replace_regions,
                                &replace_cfg,
                                policy.repair_attempts,
                                &mask,
                                true,
                            );
                            let legal = attempt
                                .as_ref()
                                .is_ok_and(|(res, _)| res.is_legal());
                            tel.emit(|| {
                                dsagen_telemetry::EventData::new("recovery", "rung")
                                    .arg("rung", RepairRung::PartialReplace.to_string())
                                    .arg("legal", legal)
                                    .arg("scoped", scoped)
                            });
                            tel.metrics().add(
                                &format!(
                                    "recovery.rung.{}.attempts",
                                    RepairRung::PartialReplace
                                ),
                                1,
                            );
                            tel.recorder().record("recovery", || {
                                (
                                    "rung".to_string(),
                                    format!(
                                        "rung={} legal={legal} scoped={scoped}",
                                        RepairRung::PartialReplace
                                    ),
                                )
                            });
                            if let Ok((res, masked_adg)) = attempt {
                                if res.is_legal() {
                                    if scoped
                                        && !res.schedule.agrees_outside(
                                            &Problem::new(&adg_now, kernel),
                                            sim.schedule(),
                                            &afflicted,
                                        )
                                    {
                                        continue;
                                    }
                                    chosen = Some((
                                        res,
                                        masked_adg,
                                        mask,
                                        RepairRung::PartialReplace,
                                    ));
                                    break;
                                }
                            }
                        }
                    }
                    match chosen {
                        Some((res, masked_adg, mask, rung)) => {
                            rspan.arg("rung", rung.to_string());
                            rspan.arg("iterations", u64::from(res.iterations));
                            rspan.arg("legal", true);
                            rspan.end();
                            tel.metrics()
                                .add(&format!("recovery.rung.{rung}.chosen"), 1);
                            masked_resources.extend(mask.describe(&adg_now));
                            adg_now = masked_adg;
                            (
                                RecoveryAction::Repaired {
                                    outcome: res.outcome,
                                    iterations: res.iterations,
                                    rung,
                                },
                                Some(res.schedule),
                                Some(res.eval),
                            )
                        }
                        None => {
                            // Final rung: degraded mode. Quarantine as
                            // much of the victim as still validates and
                            // re-schedule from scratch with relaxed
                            // objectives — a slower-but-feasible mapping
                            // beats an abort.
                            rspan.arg("legal", false);
                            rspan.end();
                            let mut dspan = tel.span("recovery/degraded", "reschedule");
                            let relaxed = relaxed_config(&policy.scheduler);
                            let mut found = None;
                            let mut spent: u64 = 0;
                            for (degraded_adg, mask_desc) in
                                quarantine_candidates(&adg_now, &fault)
                            {
                                let res = dsagen_scheduler::schedule(
                                    &degraded_adg,
                                    kernel,
                                    &relaxed,
                                );
                                spent += u64::from(res.iterations);
                                if res.is_legal() {
                                    found = Some((res, degraded_adg, mask_desc));
                                    break;
                                }
                            }
                            dspan.arg("iterations", spent);
                            dspan.arg("legal", found.is_some());
                            dspan.end();
                            let Some((res, degraded_adg, mask_desc)) = found else {
                                span.arg("outcome", "unrecoverable");
                                span.end();
                                tel.recorder().record("recovery", || {
                                    (
                                        "unrecoverable".to_string(),
                                        format!(
                                            "kind={} victim={} iterations_spent={spent}",
                                            fault.kind, fault.victim
                                        ),
                                    )
                                });
                                let _ =
                                    tel.recorder().dump_on_error("recovery_unrecoverable");
                                return Err(RecoveryError::Unrecoverable {
                                    fault: Box::new(fault),
                                    reason: format!(
                                        "every ladder rung failed; no quarantine of the \
surviving fabric reschedules legally ({spent} iterations spent)"
                                    ),
                                });
                            };
                            degraded = true;
                            masked_resources.extend(mask_desc);
                            adg_now = degraded_adg;
                            tel.metrics().add("recovery.rung.degraded.chosen", 1);
                            tel.recorder().record("recovery", || {
                                (
                                    "degraded_entered".to_string(),
                                    format!(
                                        "kind={} victim={}",
                                        fault.kind, fault.victim
                                    ),
                                )
                            });
                            tel.emit(|| {
                                dsagen_telemetry::EventData::new(
                                    "recovery/degraded",
                                    "entered",
                                )
                                .arg("fault", fault.kind.to_string())
                                .arg("victim", fault.victim.to_string())
                            });
                            (
                                RecoveryAction::DegradedReschedule {
                                    iterations: res.iterations,
                                },
                                Some(res.schedule),
                                Some(res.eval),
                            )
                        }
                    }
                } else {
                    (RecoveryAction::RollbackOnly, None, None)
                };

                // 3. Verify the configuration that will be (re)loaded.
                let target_schedule = sched_now.as_ref().unwrap_or_else(|| sim.schedule());
                let target_eval = eval_now.as_ref().unwrap_or_else(|| sim.eval());
                let problem = Problem::new(&adg_now, kernel);
                let verified =
                    match verify_round_trip_timed(&problem, target_schedule, target_eval) {
                        Ok(v) => v,
                        Err(e) => {
                            span.arg("outcome", "verify-failed");
                            span.end();
                            tel.recorder().record("recovery", || {
                                ("verify_failed".to_string(), format!("error={e}"))
                            });
                            let _ = tel.recorder().dump_on_error("recovery_verify");
                            return Err(RecoveryError::Verify {
                                fault: Box::new(fault),
                                reason: e.to_string(),
                            });
                        }
                    };

                // 4. Reprogram through the CRC-framed session.
                let mut session = ProgrammingSession::new(verified.bitstream(), policy.session);
                let srep = session.program(|_, frames| frames.to_vec());
                if srep.state != SessionState::Verified {
                    span.arg("outcome", "reprogram-failed");
                    span.end();
                    tel.recorder().record("recovery", || {
                        (
                            "reprogram_failed".to_string(),
                            format!("state={:?}", srep.state),
                        )
                    });
                    let _ = tel.recorder().dump_on_error("recovery_reprogram");
                    return Err(RecoveryError::Reprogram {
                        fault: Box::new(fault),
                        error: srep
                            .error
                            .unwrap_or(SessionError::Undelivered { missing_words: 0 }),
                    });
                }
                if needs_repair {
                    cpl_now = generate_config_paths(
                        &adg_now,
                        policy.config_paths.max(1),
                        policy.scheduler.seed,
                    )
                    .longest() as u32;
                }
                let reprogram_cycles =
                    srep.frames_sent + srep.backoff_cycles + u64::from(cpl_now);

                // 5. Resume from the checkpoint on the (new) mapping.
                //    When other domains exist and there is work to
                //    replay, try a domain-sliced rollback first: only the
                //    afflicted domain rewinds, the rest keep their
                //    progress and the replay they were spared is
                //    accounted as saved.
                let afflicted_vec: Vec<usize> = afflicted.iter().copied().collect();
                let (replayed_cycles, replayed_cycles_saved) =
                    if scoped && replayed > 0 && sim.restore_scoped(&ckpt, &afflicted_vec) {
                        (0, replayed)
                    } else {
                        sim.restore(&ckpt);
                        (replayed, 0)
                    };
                if let (Some(s), Some(e)) = (sched_now, eval_now) {
                    sim.reprogram(adg_now.clone(), s, e, cpl_now)?;
                    domains = RecoveryDomains::derive(sim.adg(), kernel, sim.schedule());
                }

                let event = RecoveryEvent {
                    detection_latency: fault.detection_latency(),
                    fault,
                    action,
                    replayed_cycles,
                    replayed_cycles_saved,
                    domain,
                    reprogram_cycles,
                };
                overhead += event.overhead_cycles();
                {
                    let m = tel.metrics();
                    if m.is_enabled() {
                        m.add("recovery.recoveries", 1);
                        m.add("recovery.replayed_cycles", event.replayed_cycles);
                        m.add(
                            "recovery.replayed_cycles_saved",
                            event.replayed_cycles_saved,
                        );
                        m.observe("recovery.mttr_cycles", event.mttr_cycles());
                    }
                }
                tel.recorder().record("recovery", || {
                    (
                        "resume".to_string(),
                        format!(
                            "action={} replayed={} saved={}",
                            event.action, event.replayed_cycles, event.replayed_cycles_saved
                        ),
                    )
                });
                tel.emit(|| {
                    dsagen_telemetry::EventData::new("recovery", "resume")
                        .arg("action", event.action.to_string())
                        .arg("replayed_cycles", event.replayed_cycles)
                        .arg("replayed_cycles_saved", event.replayed_cycles_saved)
                        .arg("reprogram_cycles", event.reprogram_cycles)
                        .arg("mttr_cycles", event.mttr_cycles())
                });
                events.push(event);
            }
        }
    }

    let report = sim.report();
    let total_cycles = report.cycles + overhead;
    // Degraded runs measure their throughput against the fault-free
    // baseline on the pristine inputs (computed only when needed).
    let throughput_ratio = if degraded {
        let baseline =
            crate::try_simulate(adg, kernel, schedule, eval, config_path_len, cfg)?;
        let ratio = if total_cycles == 0 {
            1.0
        } else {
            (baseline.cycles as f64 / total_cycles as f64).clamp(f64::MIN_POSITIVE, 1.0)
        };
        tel.emit(|| {
            dsagen_telemetry::EventData::new("recovery/degraded", "throughput")
                .arg("baseline_cycles", baseline.cycles)
                .arg("total_cycles", total_cycles)
                .arg("ratio", format!("{ratio:.4}"))
        });
        Some(ratio)
    } else {
        None
    };
    span.arg("recoveries", events.len() as u64);
    span.arg("overhead_cycles", overhead);
    span.arg("total_cycles", total_cycles);
    span.arg("degraded", degraded);
    span.end();
    let firing_traces = sim.firing_traces().map(<[Vec<(usize, u64)>]>::to_vec);
    Ok(RecoveryReport {
        report,
        events,
        overhead_cycles: overhead,
        total_cycles,
        config_path_len: cpl_now,
        degraded,
        throughput_ratio,
        masked_resources,
        firing_traces,
    })
}

/// The structural rungs to try for `fault`, least to most destructive.
/// Edge-victim faults (severed links, dead ports, stuck lanes, degraded
/// links) get the port rungs first; node victims go straight to
/// decommission. A `Word` victim has no hardware to mask (it can only
/// reach here defensively) and yields no structural rungs.
fn ladder(adg: &Adg, fault: &RuntimeFault) -> Vec<(RepairRung, CapabilityMask)> {
    match fault.victim {
        FaultTarget::Edge(e) => {
            let mut rungs = vec![
                (RepairRung::PortReroute, CapabilityMask::new().with_edge(e)),
                (RepairRung::PortMask, CapabilityMask::new().with_edge(e)),
            ];
            if let Some(edge) = adg.edge(e) {
                rungs.push((
                    RepairRung::NodeDecommission,
                    CapabilityMask::new().with_node(edge.dst),
                ));
            }
            rungs
        }
        FaultTarget::Node(n) => vec![(
            RepairRung::NodeDecommission,
            CapabilityMask::new().with_node(n),
        )],
        FaultTarget::Word(_) => Vec::new(),
    }
}

/// Quarantine masks for the partial-replace rung, most to least
/// protective: the owning node for node victims; the owning node then
/// just the link for edge victims. Unlike [`quarantine_candidates`] there
/// is deliberately no fabric-as-is entry — partial replacement is a
/// full-fidelity rung, so it must place *around* the damage, never on it.
fn partial_masks(adg: &Adg, fault: &RuntimeFault) -> Vec<CapabilityMask> {
    match fault.victim {
        FaultTarget::Node(n) => vec![CapabilityMask::new().with_node(n)],
        FaultTarget::Edge(e) => {
            let mut m = Vec::new();
            if let Some(edge) = adg.edge(e) {
                m.push(CapabilityMask::new().with_node(edge.dst));
            }
            m.push(CapabilityMask::new().with_edge(e));
            m
        }
        FaultTarget::Word(_) => Vec::new(),
    }
}

/// For the degraded-mode rung: every quarantine the fabric can
/// structurally afford, most to least protective — whole node if it
/// validates, then just the link, and finally the fabric as-is (the
/// fault's effects have been consumed, so an unmasked reschedule still
/// models a reconfigured-but-bruised fabric). The degraded rung tries
/// these in order and keeps the first one that reschedules legally, so
/// an over-eager quarantine can never turn into an avoidable abort.
fn quarantine_candidates(adg: &Adg, fault: &RuntimeFault) -> Vec<(Adg, Vec<String>)> {
    let masks: Vec<CapabilityMask> = match fault.victim {
        FaultTarget::Node(n) => vec![CapabilityMask::new().with_node(n)],
        FaultTarget::Edge(e) => {
            let mut m = Vec::new();
            if let Some(edge) = adg.edge(e) {
                m.push(CapabilityMask::new().with_node(edge.dst));
            }
            m.push(CapabilityMask::new().with_edge(e));
            m
        }
        FaultTarget::Word(_) => Vec::new(),
    };
    let mut out = Vec::new();
    for mask in masks {
        if let Ok(masked) = mask.apply(adg) {
            let desc = mask.describe(adg);
            out.push((masked, desc));
        }
    }
    out.push((adg.clone(), Vec::new()));
    out
}

/// Scheduler configuration for the partial-replace rung: the *same*
/// full-fidelity objectives as online repair, but with the degraded
/// rung's floored iteration budget and a distinct seed. Partial
/// re-placement starts from scratch inside the afflicted domain, so the
/// deliberately-skinny incremental-repair budget is the wrong size for
/// it — and every success here is a full-throughput finish that the
/// relaxed rung below would have served at reduced throughput.
fn partial_replace_config(base: &SchedulerConfig) -> SchedulerConfig {
    SchedulerConfig {
        max_iters: base.max_iters.saturating_mul(4).clamp(512, 4096),
        seed: base.seed ^ 0x9A27_71A1,
        ..*base
    }
}

/// Scheduler configuration for the degraded-mode reschedule: feasibility
/// over performance. II and timing-mismatch pressure are dropped (a
/// high-II, throttled mapping is acceptable), route-length pressure is
/// zeroed, and the iteration budget is raised — the degraded rung runs
/// once, so spending more search there is cheap insurance against an
/// avoidable abort.
fn relaxed_config(base: &SchedulerConfig) -> SchedulerConfig {
    SchedulerConfig {
        // Floor the budget: the degraded rung is the last resort, so it
        // must not inherit a deliberately-skinny online-repair budget.
        max_iters: base.max_iters.saturating_mul(4).clamp(512, 4096),
        seed: base.seed ^ 0xDE6A_ADED,
        weights: Weights {
            ii: 1.0,
            mismatch: 1.0,
            recurrence: 0.0,
            hops: 0.0,
            ..base.weights
        },
        ..*base
    }
}

/// The typed outcome of [`run_with_degradation`]: either full-fidelity
/// recovery or a degraded-mode finish, never a panic and never an abort
/// while any rung of the ladder can still serve.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// Every detected fault was recovered at full fidelity: outputs and
    /// throughput-class match the fault-free run (modulo recovery
    /// overhead).
    Recovered(RecoveryReport),
    /// At least one fault exhausted the structural rungs; the run
    /// finished on a relaxed-objective mapping at reduced throughput.
    Degraded {
        /// Measured `fault_free_cycles / total_cycles`, in `(0, 1]`.
        throughput_ratio: f64,
        /// Capabilities the ladder took offline, in recovery order.
        masked_resources: Vec<String>,
        /// The full recovery report (with [`RecoveryReport::degraded`]
        /// set).
        report: RecoveryReport,
    },
}

impl RecoveryOutcome {
    /// The underlying recovery report, whichever arm this is.
    #[must_use]
    pub fn report(&self) -> &RecoveryReport {
        match self {
            RecoveryOutcome::Recovered(r) => r,
            RecoveryOutcome::Degraded { report, .. } => report,
        }
    }

    /// Whether the run finished in degraded mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, RecoveryOutcome::Degraded { .. })
    }

    /// Throughput relative to the fault-free run: the measured ratio for
    /// degraded runs, `1.0` for full-fidelity recoveries (recovery
    /// overhead is reported separately via
    /// [`RecoveryReport::overhead_vs`]).
    #[must_use]
    pub fn throughput_ratio(&self) -> f64 {
        match self {
            RecoveryOutcome::Recovered(_) => 1.0,
            RecoveryOutcome::Degraded {
                throughput_ratio, ..
            } => *throughput_ratio,
        }
    }
}

impl fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryOutcome::Recovered(r) => {
                write!(f, "recovered ({} recoveries)", r.recoveries())
            }
            RecoveryOutcome::Degraded {
                throughput_ratio,
                masked_resources,
                report,
            } => write!(
                f,
                "degraded (throughput {:.2}, {} masked, {} recoveries)",
                throughput_ratio,
                masked_resources.len(),
                report.recoveries()
            ),
        }
    }
}

/// [`run_with_recovery`] with the degraded/recovered distinction typed:
/// wraps the report in a [`RecoveryOutcome`] so callers (the DSE
/// reliability mode, the soak harness) can score degraded throughput
/// without re-deriving it.
///
/// # Errors
///
/// Exactly [`run_with_recovery`]'s: every terminal failure mode is a
/// typed [`RecoveryError`]; never panics.
#[allow(clippy::too_many_arguments)] // mirrors `run_with_recovery`
pub fn run_with_degradation(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
    faults: &FaultSchedule,
    policy: &RecoveryPolicy,
    tel: &Telemetry,
) -> Result<RecoveryOutcome, RecoveryError> {
    let report = run_with_recovery(
        adg,
        kernel,
        schedule,
        eval,
        config_path_len,
        cfg,
        faults,
        policy,
        tel,
    )?;
    Ok(if report.degraded {
        RecoveryOutcome::Degraded {
            // `degraded` implies the ratio was measured; 0.0 would mean
            // a zero-cycle baseline, which `clamp` above rules out.
            throughput_ratio: report.throughput_ratio.unwrap_or(1.0),
            masked_resources: report.masked_resources.clone(),
            report,
        }
    } else {
        RecoveryOutcome::Recovered(report)
    })
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_faults::FaultKind;
    use dsagen_scheduler::{schedule, Evaluation};

    use super::*;
    use crate::try_simulate;

    fn dot(n: u64) -> dsagen_dfg::Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let c = k.array("c", dsagen_adg::BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(dsagen_adg::Opcode::Mul, va, vb);
        let acc = r.reduce(dsagen_adg::Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    fn fixture(n: u64) -> (Adg, CompiledKernel, Schedule, Evaluation) {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(n), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &dsagen_scheduler::SchedulerConfig::default());
        assert!(s.is_legal(), "schedule: {:?}", s.eval);
        (adg, ck, s.schedule, s.eval)
    }

    fn recover(
        fixture: &(Adg, CompiledKernel, Schedule, Evaluation),
        faults: &FaultSchedule,
        policy: &RecoveryPolicy,
        tel: &Telemetry,
    ) -> Result<RecoveryReport, RecoveryError> {
        let (adg, ck, sch, ev) = fixture;
        run_with_recovery(
            adg,
            ck,
            sch,
            ev,
            0,
            &SimConfig::default(),
            faults,
            policy,
            tel,
        )
    }

    #[test]
    fn fault_free_run_has_no_events_and_no_overhead() {
        let fx = fixture(1024);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let rep = recover(
            &fx,
            &FaultSchedule::new(1),
            &RecoveryPolicy::default(),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert!(rep.events.is_empty());
        assert_eq!(rep.overhead_cycles, 0);
        assert_eq!(rep.report, plain);
        assert_eq!(rep.total_cycles, plain.cycles);
        assert_eq!(rep.mttr_cycles(), 0.0);
        assert_eq!(rep.overhead_vs(plain.cycles), 0.0);
    }

    #[test]
    fn transient_blocking_fault_recovers_with_rollback_only() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        // Long enough to trip the 64-cycle watchdog; transient, so recovery
        // is rollback-only (no repair).
        let faults = FaultSchedule::new(7).with(
            200,
            dsagen_faults::FaultLifetime::Transient { duration: 2048 },
            FaultKind::DeadPe,
        );
        let tel = Telemetry::in_memory();
        let rep = recover(&fx, &faults, &RecoveryPolicy::default(), &tel).unwrap();
        assert_eq!(rep.events.len(), 1);
        let ev = &rep.events[0];
        assert!(matches!(ev.action, RecoveryAction::RollbackOnly), "{}", ev.action);
        assert!(ev.detection_latency <= RecoveryPolicy::default().rt.watchdog_bound);
        assert!(ev.reprogram_cycles > 0, "config replay must be charged");
        assert!(ev.mttr_cycles() > 0);
        // Functional outputs equal the fault-free run.
        assert_eq!(rep.report.firings, plain.firings);
        assert!(rep.total_cycles > plain.cycles, "overhead must be visible");
        assert!(rep.overhead_vs(plain.cycles) > 0.0);
        // Telemetry: detection and resume events under recovery/*.
        let events = tel.events();
        assert!(events.iter().any(|e| e.cat == "recovery" && e.name == "detect"));
        assert!(events.iter().any(|e| e.cat == "recovery" && e.name == "resume"));
        assert!(events.iter().any(|e| e.cat == "recovery" && e.name == "run_with_recovery"));
    }

    #[test]
    fn permanent_fault_repairs_or_fails_typed() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let faults = FaultSchedule::new(11).with(
            200,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::DeadPe,
        );
        match recover(&fx, &faults, &RecoveryPolicy::default(), &Telemetry::disabled()) {
            Ok(rep) => {
                assert_eq!(rep.events.len(), 1);
                assert!(
                    matches!(
                        rep.events[0].action,
                        RecoveryAction::Repaired { .. }
                            | RecoveryAction::DegradedReschedule { .. }
                    ),
                    "permanent faults must be repaired or degraded, got {}",
                    rep.events[0].action
                );
                assert_eq!(rep.report.firings, plain.firings, "recovered outputs differ");
                if rep.degraded {
                    let ratio = rep.throughput_ratio.expect("degraded measures throughput");
                    assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio}");
                }
            }
            Err(e) => {
                // Failing typed is acceptable; panicking is not.
                assert!(
                    matches!(
                        e,
                        RecoveryError::Unrecoverable { .. }
                            | RecoveryError::Verify { .. }
                            | RecoveryError::Reprogram { .. }
                    ),
                    "unexpected error {e}"
                );
                assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn poison_fault_rolls_back_to_a_clean_timeline() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let faults = FaultSchedule::new(13).with(
            300,
            dsagen_faults::FaultLifetime::Transient { duration: 100 },
            FaultKind::StuckSwitch,
        );
        let rep =
            recover(&fx, &faults, &RecoveryPolicy::default(), &Telemetry::disabled()).unwrap();
        assert_eq!(rep.events.len(), 1);
        let ev = &rep.events[0];
        assert_eq!(ev.fault.detector, crate::runtime::Detector::Residue);
        // Rollback discards every poisoned firing and replays clean, so the
        // functional report is *exactly* the fault-free one.
        assert_eq!(rep.report, plain);
        assert!(ev.replayed_cycles > 0, "corruption forces replay");
    }

    #[test]
    fn permanent_link_fault_repairs_at_port_granularity() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let faults = FaultSchedule::new(23).with(
            200,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::SeveredLink,
        );
        let tel = Telemetry::in_memory();
        let rep = recover(&fx, &faults, &RecoveryPolicy::default(), &tel).unwrap();
        assert_eq!(rep.events.len(), 1);
        let RecoveryAction::Repaired { rung, .. } = rep.events[0].action else {
            panic!("expected structural repair, got {}", rep.events[0].action);
        };
        // The ladder tries the port rungs first; on a healthy softbrain
        // rerouting one link must succeed without decommissioning a node.
        assert_ne!(
            rung,
            RepairRung::NodeDecommission,
            "a single severed link must not cost a whole node"
        );
        assert_eq!(rep.masked_resources.len(), 1, "{:?}", rep.masked_resources);
        assert!(
            rep.masked_resources[0].starts_with("link"),
            "{:?}",
            rep.masked_resources
        );
        assert!(!rep.degraded);
        assert_eq!(rep.report.firings, plain.firings);
        // Telemetry attributes the rung.
        assert!(tel
            .events()
            .iter()
            .any(|e| e.cat == "recovery" && e.name == "rung"));
    }

    #[test]
    fn dead_port_fault_masks_only_the_port() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let faults = FaultSchedule::new(29).with(
            200,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::DeadPort,
        );
        let rep =
            recover(&fx, &faults, &RecoveryPolicy::default(), &Telemetry::disabled()).unwrap();
        assert_eq!(rep.events.len(), 1);
        assert!(matches!(rep.events[0].fault.victim, FaultTarget::Edge(_)));
        assert!(
            matches!(
                rep.events[0].action,
                RecoveryAction::Repaired { .. } | RecoveryAction::DegradedReschedule { .. }
            ),
            "{}",
            rep.events[0].action
        );
        assert_eq!(rep.report.firings, plain.firings);
    }

    /// A saturated fabric: a 1×2 mesh whose two dedicated PEs are both
    /// needed by the dot kernel, so decommissioning either is
    /// structurally infeasible and repair must fall through the ladder.
    fn saturated_fixture(n: u64) -> (Adg, CompiledKernel, Schedule, Evaluation) {
        use dsagen_adg::{OpSet, PeSpec, Scheduling, Sharing};
        let pe = PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu().union(OpSet::integer_mul()),
        );
        let adg = presets::mesh(&presets::MeshConfig::new("saturated", 1, 2, pe));
        let ck = compile_kernel(&dot(n), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &dsagen_scheduler::SchedulerConfig::default());
        assert!(s.is_legal(), "saturated fixture schedule: {:?}", s.eval);
        (adg, ck, s.schedule, s.eval)
    }

    #[test]
    fn exhausted_structural_rungs_degrade_instead_of_aborting() {
        let fx = saturated_fixture(1024);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        // Both PEs are busy, so whichever the permanent fault hits,
        // node decommission cannot produce a legal repair. Before the
        // ladder this returned RecoveryError::Unrecoverable; now the
        // degraded rung must finish the run.
        let faults = FaultSchedule::new(11).with(
            200,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::DeadPe,
        );
        let (adg, ck, sch, ev) = &fx;
        let out = run_with_degradation(
            adg,
            ck,
            sch,
            ev,
            0,
            &SimConfig::default(),
            &faults,
            &RecoveryPolicy::default(),
            &Telemetry::disabled(),
        )
        .unwrap_or_else(|e| panic!("degraded rung aborted: {e}"));
        let RecoveryOutcome::Degraded {
            throughput_ratio,
            masked_resources: _,
            report,
        } = &out
        else {
            panic!("expected a degraded finish, got {out}");
        };
        assert!(
            *throughput_ratio > 0.0 && *throughput_ratio <= 1.0,
            "ratio {throughput_ratio}"
        );
        assert!(report.degraded);
        assert_eq!(report.throughput_ratio, Some(*throughput_ratio));
        assert!(
            matches!(
                report.events[0].action,
                RecoveryAction::DegradedReschedule { .. }
            ),
            "{}",
            report.events[0].action
        );
        assert_eq!(out.throughput_ratio(), *throughput_ratio);
        assert!(out.is_degraded());
        assert_eq!(
            report.report.firings, plain.firings,
            "degraded run must still complete all work"
        );
    }

    #[test]
    fn recovery_with_degradation_is_deterministic() {
        let fx = fixture(4096);
        let faults = FaultSchedule::new(31).with(
            250,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::SeveredLink,
        );
        let (adg, ck, sch, ev) = &fx;
        let run = || {
            run_with_degradation(
                adg,
                ck,
                sch,
                ev,
                0,
                &SimConfig::default(),
                &faults,
                &RecoveryPolicy::default(),
                &Telemetry::disabled(),
            )
            .unwrap()
        };
        assert_eq!(run(), run(), "replay must be bit-identical");
    }

    #[test]
    fn zero_recovery_budget_fails_typed() {
        let fx = fixture(4096);
        let faults = FaultSchedule::new(11).with(
            200,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::DeadPe,
        );
        let policy = RecoveryPolicy {
            max_recoveries: 0,
            ..RecoveryPolicy::default()
        };
        let err =
            recover(&fx, &faults, &policy, &Telemetry::disabled()).unwrap_err();
        assert!(
            matches!(err, RecoveryError::BudgetExhausted { recoveries: 0 }),
            "unexpected error {err}"
        );
    }
}
