//! The recovery orchestrator: detection → checkpoint → online repair →
//! verified reprogramming → resume.
//!
//! [`run_with_recovery`] drives a [`RuntimeSim`] to completion under a
//! [`FaultSchedule`], intervening on every detected [`RuntimeFault`]:
//!
//! 1. **Checkpoint** — pick the rollback target
//!    ([`RuntimeSim::rollback_target`]): the current state for blocking
//!    faults (stalls corrupt nothing), the newest pre-corruption
//!    checkpoint for residue-detected faults.
//! 2. **Repair** — for permanent/intermittent faults the victim is
//!    decommissioned from the ADG and the schedule repaired around it
//!    with [`repair_with_escalation`]; transient faults skip this step
//!    (the hardware is healthy again by resume).
//! 3. **Verify** — the (repaired or original) configuration is proven by
//!    [`verify_round_trip_timed`] before it is allowed near the fabric.
//! 4. **Reprogram** — the verified bitstream is replayed through a
//!    CRC-framed [`ProgrammingSession`] with retransmission/backoff; the
//!    frames, backoff, and the regenerated configuration path are
//!    charged as recovery overhead cycles.
//! 5. **Resume** — the engine state is restored and (if repaired)
//!    rebound to the new mapping; execution continues from the
//!    checkpoint.
//!
//! The result is a [`RecoveryReport`]: the functional run report (equal
//! to the fault-free run for recovered faults) plus one
//! [`RecoveryEvent`] per intervention and the total overhead in cycles.
//! Every failure mode is a typed [`RecoveryError`];
//! [`RecoveryError::Unrecoverable`] means repair exhausted its
//! escalation budget — nothing in this module panics.

use std::fmt;

use dsagen_adg::Adg;
use dsagen_dfg::CompiledKernel;
use dsagen_faults::{FaultLifetime, FaultSchedule, FaultTarget};
use dsagen_hwgen::{
    generate_config_paths, verify_round_trip_timed, ProgrammingSession, SessionConfig,
    SessionError, SessionState,
};
use dsagen_scheduler::{
    repair_with_escalation, Evaluation, Problem, RepairOutcome, Schedule, SchedulerConfig,
};
use dsagen_telemetry::Telemetry;

use crate::runtime::{RuntimeConfig, RuntimeFault, RuntimeSim, StepOutcome};
use crate::{SimConfig, SimError, SimReport};

/// Tunables for the recovery flow.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Detection / checkpointing tunables.
    pub rt: RuntimeConfig,
    /// Scheduler configuration used for online repair.
    pub scheduler: SchedulerConfig,
    /// Retry/backoff tunables for reprogramming.
    pub session: SessionConfig,
    /// Maximum recoveries before [`RecoveryError::BudgetExhausted`].
    pub max_recoveries: usize,
    /// Escalation attempts handed to [`repair_with_escalation`].
    pub repair_attempts: u32,
    /// Parallel configuration paths regenerated after a repair.
    pub config_paths: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            rt: RuntimeConfig::default(),
            scheduler: SchedulerConfig::default(),
            session: SessionConfig::default(),
            max_recoveries: 8,
            repair_attempts: 4,
            config_paths: 4,
        }
    }
}

/// What the orchestrator did about one detected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// Transient fault: rolled back (if needed) and resumed on the same
    /// mapping after a verified configuration scrub.
    RollbackOnly,
    /// Permanent/intermittent fault: victim decommissioned, schedule
    /// repaired, fabric reprogrammed with the repaired configuration.
    Repaired {
        /// How much of the previous schedule survived.
        outcome: RepairOutcome,
        /// Scheduler iterations the repair took.
        iterations: u32,
    },
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::RollbackOnly => f.write_str("rollback-only"),
            RecoveryAction::Repaired { outcome, iterations } => {
                write!(f, "repaired ({outcome:?}, {iterations} iters)")
            }
        }
    }
}

/// One complete recovery: detection, action, and its cycle costs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The detected fault.
    pub fault: RuntimeFault,
    /// What was done about it.
    pub action: RecoveryAction,
    /// Cycles from first observable effect to detection.
    pub detection_latency: u64,
    /// Work cycles re-executed after rollback (detected_at − checkpoint).
    pub replayed_cycles: u64,
    /// Reprogramming cost: frames sent + retransmission backoff + the
    /// regenerated configuration-path load.
    pub reprogram_cycles: u64,
}

impl RecoveryEvent {
    /// Mean-time-to-repair contribution of this event: cycles the
    /// accelerator was not making forward progress because of the fault.
    #[must_use]
    pub fn mttr_cycles(&self) -> u64 {
        self.detection_latency + self.replayed_cycles + self.reprogram_cycles
    }

    /// Overhead charged against the run (replay + reprogram; detection
    /// latency cycles are already part of the engine timeline).
    #[must_use]
    pub fn overhead_cycles(&self) -> u64 {
        self.replayed_cycles + self.reprogram_cycles
    }
}

/// Why a run could not be recovered. Every variant is a terminal,
/// typed outcome — the orchestrator never panics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// The simulation could not start or resume (schedule/hardware
    /// mismatch).
    Sim(SimError),
    /// Repair exhausted its escalation budget (or the victim could not
    /// be decommissioned): the fabric cannot run this kernel any more.
    Unrecoverable {
        /// The fault that ended the run.
        fault: Box<RuntimeFault>,
        /// Human-readable reason.
        reason: String,
    },
    /// The repaired configuration failed round-trip verification.
    Verify {
        /// The fault being recovered when verification failed.
        fault: Box<RuntimeFault>,
        /// The verifier's message.
        reason: String,
    },
    /// The programming session could not deliver the configuration
    /// within its retry budget.
    Reprogram {
        /// The fault being recovered when delivery failed.
        fault: Box<RuntimeFault>,
        /// The session's terminal error.
        error: SessionError,
    },
    /// More faults were detected than [`RecoveryPolicy::max_recoveries`]
    /// allows.
    BudgetExhausted {
        /// Recoveries completed before the budget ran out.
        recoveries: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Sim(e) => write!(f, "simulation error: {e}"),
            RecoveryError::Unrecoverable { fault, reason } => {
                write!(f, "unrecoverable fault ({fault}): {reason}")
            }
            RecoveryError::Verify { fault, reason } => {
                write!(f, "config verification failed recovering {fault}: {reason}")
            }
            RecoveryError::Reprogram { fault, error } => {
                write!(f, "reprogramming failed recovering {fault}: {error}")
            }
            RecoveryError::BudgetExhausted { recoveries } => {
                write!(f, "recovery budget exhausted after {recoveries} recoveries")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<SimError> for RecoveryError {
    fn from(e: SimError) -> Self {
        RecoveryError::Sim(e)
    }
}

/// The outcome of a fully-recovered run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The functional simulation report. For recovered faults the
    /// firings/outputs equal the fault-free run; `report.cycles` is the
    /// *engine* timeline (excluding recovery overhead).
    pub report: SimReport,
    /// One entry per recovered fault, in detection order.
    pub events: Vec<RecoveryEvent>,
    /// Total recovery overhead (replayed work + reprogramming).
    pub overhead_cycles: u64,
    /// End-to-end cycles including recovery overhead.
    pub total_cycles: u64,
    /// Configuration-path length programmed at the end of the run (may
    /// differ from the initial one after repairs).
    pub config_path_len: u32,
}

impl RecoveryReport {
    /// Number of recoveries performed.
    #[must_use]
    pub fn recoveries(&self) -> usize {
        self.events.len()
    }

    /// Mean time to repair across all recoveries, in cycles.
    #[must_use]
    pub fn mttr_cycles(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| e.mttr_cycles() as f64).sum::<f64>()
            / self.events.len() as f64
    }

    /// Relative overhead versus a fault-free run of `fault_free_cycles`.
    #[must_use]
    pub fn overhead_vs(&self, fault_free_cycles: u64) -> f64 {
        if fault_free_cycles == 0 {
            return 0.0;
        }
        (self.total_cycles as f64 / fault_free_cycles as f64) - 1.0
    }
}

/// Runs `schedule` on `adg` under `faults`, recovering every detected
/// fault per `policy`. Emits `recovery/*` telemetry spans/events into
/// `tel` (no-ops when disabled).
///
/// # Errors
///
/// A typed [`RecoveryError`] for every terminal failure mode; see the
/// module docs for the ladder. Never panics.
#[allow(clippy::too_many_arguments)] // mirrors `try_simulate` plus the fault plane
pub fn run_with_recovery(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
    faults: &FaultSchedule,
    policy: &RecoveryPolicy,
    tel: &Telemetry,
) -> Result<RecoveryReport, RecoveryError> {
    let mut span = tel.span("recovery", "run_with_recovery");
    span.arg("faults", faults.faults.len() as u64);

    let mut sim = RuntimeSim::new(
        adg,
        kernel,
        schedule,
        eval,
        config_path_len,
        *cfg,
        policy.rt,
        faults,
    )?;
    // The orchestrator's evolving view of the (possibly degraded,
    // possibly repaired) hardware.
    let mut adg_now = adg.clone();
    let mut cpl_now = config_path_len;
    let mut events: Vec<RecoveryEvent> = Vec::new();
    let mut overhead: u64 = 0;

    loop {
        match sim.run_until_event() {
            StepOutcome::Finished => break,
            StepOutcome::Detected(fault) => {
                let fault = *fault;
                if events.len() >= policy.max_recoveries {
                    span.arg("outcome", "budget-exhausted");
                    span.end();
                    return Err(RecoveryError::BudgetExhausted {
                        recoveries: events.len(),
                    });
                }
                tel.emit(|| {
                    dsagen_telemetry::EventData::new("recovery", "detect")
                        .arg("kind", fault.kind.to_string())
                        .arg("victim", fault.victim.to_string())
                        .arg("detector", fault.detector.to_string())
                        .arg("detected_at", fault.detected_at)
                        .arg("latency", fault.detection_latency())
                });

                // 1. Checkpoint: pick the rollback target before anything
                //    mutates the simulation.
                let ckpt = sim.rollback_target(&fault);
                let replayed = fault.detected_at.saturating_sub(ckpt.wall());

                // 2. Repair (permanent/intermittent only).
                let needs_repair =
                    !matches!(fault.lifetime, FaultLifetime::Transient { .. });
                let (action, sched_now, eval_now) = if needs_repair {
                    let mut rspan = tel.span("recovery", "repair");
                    decommission(&mut adg_now, &fault)?;
                    let res = repair_with_escalation(
                        &adg_now,
                        kernel,
                        sim.schedule(),
                        &policy.scheduler,
                        policy.repair_attempts,
                    );
                    rspan.arg("iterations", u64::from(res.iterations));
                    rspan.arg("legal", res.is_legal());
                    rspan.end();
                    if !res.is_legal() {
                        span.arg("outcome", "unrecoverable");
                        span.end();
                        return Err(RecoveryError::Unrecoverable {
                            fault: Box::new(fault),
                            reason: format!(
                                "repair exhausted escalation after {} iterations \
(outcome {:?})",
                                res.iterations, res.outcome
                            ),
                        });
                    }
                    (
                        RecoveryAction::Repaired {
                            outcome: res.outcome,
                            iterations: res.iterations,
                        },
                        Some(res.schedule),
                        Some(res.eval),
                    )
                } else {
                    (RecoveryAction::RollbackOnly, None, None)
                };

                // 3. Verify the configuration that will be (re)loaded.
                let target_schedule = sched_now.as_ref().unwrap_or_else(|| sim.schedule());
                let target_eval = eval_now.as_ref().unwrap_or_else(|| sim.eval());
                let problem = Problem::new(&adg_now, kernel);
                let verified =
                    match verify_round_trip_timed(&problem, target_schedule, target_eval) {
                        Ok(v) => v,
                        Err(e) => {
                            span.arg("outcome", "verify-failed");
                            span.end();
                            return Err(RecoveryError::Verify {
                                fault: Box::new(fault),
                                reason: e.to_string(),
                            });
                        }
                    };

                // 4. Reprogram through the CRC-framed session.
                let mut session = ProgrammingSession::new(verified.bitstream(), policy.session);
                let srep = session.program(|_, frames| frames.to_vec());
                if srep.state != SessionState::Verified {
                    span.arg("outcome", "reprogram-failed");
                    span.end();
                    return Err(RecoveryError::Reprogram {
                        fault: Box::new(fault),
                        error: srep
                            .error
                            .unwrap_or(SessionError::Undelivered { missing_words: 0 }),
                    });
                }
                if needs_repair {
                    cpl_now = generate_config_paths(
                        &adg_now,
                        policy.config_paths.max(1),
                        policy.scheduler.seed,
                    )
                    .longest() as u32;
                }
                let reprogram_cycles =
                    srep.frames_sent + srep.backoff_cycles + u64::from(cpl_now);

                // 5. Resume from the checkpoint on the (new) mapping.
                sim.restore(&ckpt);
                if let (Some(s), Some(e)) = (sched_now, eval_now) {
                    sim.reprogram(adg_now.clone(), s, e, cpl_now)?;
                }

                let event = RecoveryEvent {
                    detection_latency: fault.detection_latency(),
                    fault,
                    action,
                    replayed_cycles: replayed,
                    reprogram_cycles,
                };
                overhead += event.overhead_cycles();
                tel.emit(|| {
                    dsagen_telemetry::EventData::new("recovery", "resume")
                        .arg("action", event.action.to_string())
                        .arg("replayed_cycles", event.replayed_cycles)
                        .arg("reprogram_cycles", event.reprogram_cycles)
                        .arg("mttr_cycles", event.mttr_cycles())
                });
                events.push(event);
            }
        }
    }

    let report = sim.report();
    let total_cycles = report.cycles + overhead;
    span.arg("recoveries", events.len() as u64);
    span.arg("overhead_cycles", overhead);
    span.arg("total_cycles", total_cycles);
    span.end();
    Ok(RecoveryReport {
        report,
        events,
        overhead_cycles: overhead,
        total_cycles,
        config_path_len: cpl_now,
    })
}

/// Removes the fault's victim from the hardware graph so repair cannot
/// map anything onto it again.
fn decommission(adg: &mut Adg, fault: &RuntimeFault) -> Result<(), RecoveryError> {
    let res = match fault.victim {
        FaultTarget::Node(n) => adg.remove_node(n).map(|_| ()).map_err(|e| e.to_string()),
        FaultTarget::Edge(e) => adg.remove_edge(e).map(|_| ()).map_err(|e| e.to_string()),
        FaultTarget::Word(_) => Err("fault has no hardware victim".to_string()),
    };
    res.map_err(|reason| RecoveryError::Unrecoverable {
        fault: Box::new(fault.clone()),
        reason: format!("cannot decommission victim: {reason}"),
    })
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_faults::FaultKind;
    use dsagen_scheduler::{schedule, Evaluation};

    use super::*;
    use crate::try_simulate;

    fn dot(n: u64) -> dsagen_dfg::Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", dsagen_adg::BitWidth::B64, n, MemClass::MainMemory);
        let c = k.array("c", dsagen_adg::BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(dsagen_adg::Opcode::Mul, va, vb);
        let acc = r.reduce(dsagen_adg::Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    fn fixture(n: u64) -> (Adg, CompiledKernel, Schedule, Evaluation) {
        let adg = presets::softbrain();
        let ck = compile_kernel(&dot(n), &TransformConfig::fallback(), &adg.features()).unwrap();
        let s = schedule(&adg, &ck, &dsagen_scheduler::SchedulerConfig::default());
        assert!(s.is_legal(), "schedule: {:?}", s.eval);
        (adg, ck, s.schedule, s.eval)
    }

    fn recover(
        fixture: &(Adg, CompiledKernel, Schedule, Evaluation),
        faults: &FaultSchedule,
        policy: &RecoveryPolicy,
        tel: &Telemetry,
    ) -> Result<RecoveryReport, RecoveryError> {
        let (adg, ck, sch, ev) = fixture;
        run_with_recovery(
            adg,
            ck,
            sch,
            ev,
            0,
            &SimConfig::default(),
            faults,
            policy,
            tel,
        )
    }

    #[test]
    fn fault_free_run_has_no_events_and_no_overhead() {
        let fx = fixture(1024);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let rep = recover(
            &fx,
            &FaultSchedule::new(1),
            &RecoveryPolicy::default(),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert!(rep.events.is_empty());
        assert_eq!(rep.overhead_cycles, 0);
        assert_eq!(rep.report, plain);
        assert_eq!(rep.total_cycles, plain.cycles);
        assert_eq!(rep.mttr_cycles(), 0.0);
        assert_eq!(rep.overhead_vs(plain.cycles), 0.0);
    }

    #[test]
    fn transient_blocking_fault_recovers_with_rollback_only() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        // Long enough to trip the 64-cycle watchdog; transient, so recovery
        // is rollback-only (no repair).
        let faults = FaultSchedule::new(7).with(
            200,
            dsagen_faults::FaultLifetime::Transient { duration: 2048 },
            FaultKind::DeadPe,
        );
        let tel = Telemetry::in_memory();
        let rep = recover(&fx, &faults, &RecoveryPolicy::default(), &tel).unwrap();
        assert_eq!(rep.events.len(), 1);
        let ev = &rep.events[0];
        assert!(matches!(ev.action, RecoveryAction::RollbackOnly), "{}", ev.action);
        assert!(ev.detection_latency <= RecoveryPolicy::default().rt.watchdog_bound);
        assert!(ev.reprogram_cycles > 0, "config replay must be charged");
        assert!(ev.mttr_cycles() > 0);
        // Functional outputs equal the fault-free run.
        assert_eq!(rep.report.firings, plain.firings);
        assert!(rep.total_cycles > plain.cycles, "overhead must be visible");
        assert!(rep.overhead_vs(plain.cycles) > 0.0);
        // Telemetry: detection and resume events under recovery/*.
        let events = tel.events();
        assert!(events.iter().any(|e| e.cat == "recovery" && e.name == "detect"));
        assert!(events.iter().any(|e| e.cat == "recovery" && e.name == "resume"));
        assert!(events.iter().any(|e| e.cat == "recovery" && e.name == "run_with_recovery"));
    }

    #[test]
    fn permanent_fault_repairs_or_fails_typed() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let faults = FaultSchedule::new(11).with(
            200,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::DeadPe,
        );
        match recover(&fx, &faults, &RecoveryPolicy::default(), &Telemetry::disabled()) {
            Ok(rep) => {
                assert_eq!(rep.events.len(), 1);
                assert!(
                    matches!(rep.events[0].action, RecoveryAction::Repaired { .. }),
                    "permanent faults must be repaired, got {}",
                    rep.events[0].action
                );
                assert_eq!(rep.report.firings, plain.firings, "recovered outputs differ");
            }
            Err(e) => {
                // Degrading typed is acceptable; panicking is not.
                assert!(
                    matches!(
                        e,
                        RecoveryError::Unrecoverable { .. }
                            | RecoveryError::Verify { .. }
                            | RecoveryError::Reprogram { .. }
                    ),
                    "unexpected error {e}"
                );
                assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn poison_fault_rolls_back_to_a_clean_timeline() {
        let fx = fixture(4096);
        let plain =
            try_simulate(&fx.0, &fx.1, &fx.2, &fx.3, 0, &SimConfig::default()).unwrap();
        let faults = FaultSchedule::new(13).with(
            300,
            dsagen_faults::FaultLifetime::Transient { duration: 100 },
            FaultKind::StuckSwitch,
        );
        let rep =
            recover(&fx, &faults, &RecoveryPolicy::default(), &Telemetry::disabled()).unwrap();
        assert_eq!(rep.events.len(), 1);
        let ev = &rep.events[0];
        assert_eq!(ev.fault.detector, crate::runtime::Detector::Residue);
        // Rollback discards every poisoned firing and replays clean, so the
        // functional report is *exactly* the fault-free one.
        assert_eq!(rep.report, plain);
        assert!(ev.replayed_cycles > 0, "corruption forces replay");
    }

    #[test]
    fn zero_recovery_budget_fails_typed() {
        let fx = fixture(4096);
        let faults = FaultSchedule::new(11).with(
            200,
            dsagen_faults::FaultLifetime::Permanent,
            FaultKind::DeadPe,
        );
        let policy = RecoveryPolicy {
            max_recoveries: 0,
            ..RecoveryPolicy::default()
        };
        let err =
            recover(&fx, &faults, &policy, &Telemetry::disabled()).unwrap_err();
        assert!(
            matches!(err, RecoveryError::BudgetExhausted { recoveries: 0 }),
            "unexpected error {err}"
        );
    }
}
