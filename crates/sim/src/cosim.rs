//! Co-simulation: the cycle-level timing engine and the dataflow
//! functional reference run in lockstep over one kernel execution.
//!
//! The timing engine is value-free by design — streams are compiled
//! access *patterns*, not array snapshots — so "did the accelerator
//! compute the right answer" decomposes into two contracts that this
//! module checks together:
//!
//! 1. **Delivery** — the cycle-level engine must drive every region to
//!    completion: the schedule must still be executable on the ADG (no
//!    dead nodes/edges, a live control core) and each region must fire
//!    exactly its compiled instance count. A region that stalls out or
//!    under-fires would silently drop dataflow instances in real
//!    hardware; [`CoSimError::FiringMismatch`] makes that loud.
//! 2. **Values** — the kernel's value semantics are produced by the
//!    dataflow interpreter ([`dsagen_dfg::interp::execute`]) over the
//!    same source kernel, yielding the output arrays a correct
//!    accelerator execution must match.
//!
//! [`simulate_functional`] returns both: the timing report and the
//! functional outputs. The differential test harness compares those
//! outputs against an independent reference execution per workload.

use std::collections::BTreeMap;

use dsagen_adg::Adg;
use dsagen_dfg::interp::{execute, ExecError};
use dsagen_dfg::{CompiledKernel, Kernel};
use dsagen_hwgen::{verify_round_trip_timed, VerifyError};
use dsagen_scheduler::{Evaluation, Problem, Schedule};

use crate::{try_simulate_verified, SimConfig, SimError, SimReport};

/// Why a co-simulation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoSimError {
    /// The timing engine refused the schedule (stale hardware references).
    Sim(SimError),
    /// Bitstream round-trip verification failed: the configuration the
    /// encoder emits does not decode back to the schedule being simulated,
    /// so the hardware would be silently misprogrammed.
    Config(VerifyError),
    /// A region did not fire exactly its compiled instance count — the
    /// engine dropped or duplicated dataflow instances (e.g. a deadlock
    /// cut short by the cycle cap).
    FiringMismatch {
        /// Region index within the compiled kernel.
        region: usize,
        /// Firings the engine delivered.
        fired: u64,
        /// Instances the compiled region demands.
        expected: f64,
    },
    /// The functional reference itself failed (out-of-bounds access,
    /// malformed join/consume) — the kernel, not the hardware, is wrong.
    Exec(ExecError),
}

impl std::fmt::Display for CoSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoSimError::Sim(e) => write!(f, "timing engine rejected the schedule: {e}"),
            CoSimError::Config(e) => {
                write!(f, "configuration failed round-trip verification: {e}")
            }
            CoSimError::FiringMismatch {
                region,
                fired,
                expected,
            } => write!(
                f,
                "region {region} fired {fired} of {expected} compiled instances"
            ),
            CoSimError::Exec(e) => write!(f, "functional reference failed: {e}"),
        }
    }
}

impl std::error::Error for CoSimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoSimError::Sim(e) => Some(e),
            CoSimError::Config(e) => Some(e),
            CoSimError::Exec(e) => Some(e),
            CoSimError::FiringMismatch { .. } => None,
        }
    }
}

impl From<SimError> for CoSimError {
    fn from(e: SimError) -> Self {
        CoSimError::Sim(e)
    }
}

impl From<VerifyError> for CoSimError {
    fn from(e: VerifyError) -> Self {
        CoSimError::Config(e)
    }
}

impl From<ExecError> for CoSimError {
    fn from(e: ExecError) -> Self {
        CoSimError::Exec(e)
    }
}

/// One verified accelerator execution: cycle-level timing plus the
/// functional outputs the execution computes.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSimReport {
    /// The cycle-level timing report.
    pub timing: SimReport,
    /// Output arrays by name (every array the kernel writes).
    pub outputs: BTreeMap<String, Vec<f64>>,
}

/// Runs the cycle-level engine and the functional reference together,
/// gated on configuration integrity.
///
/// Before any cycle is simulated the schedule is encoded to a bitstream
/// and round-trip verified ([`dsagen_hwgen::verify_round_trip_timed`]):
/// an encoder/decoder disagreement is a typed [`CoSimError::Config`]
/// rejection, never an undefined simulation. Then it fails if the
/// schedule references dead hardware, if any region's firing count
/// diverges from its compiled instance count (delivery contract), or if
/// the functional reference itself traps. On success the returned report
/// carries both the timing facts and the computed output arrays.
///
/// `inputs` maps array names to initial contents; arrays the kernel
/// declares but the map omits are zero-filled (matching
/// [`dsagen_dfg::interp::execute`]).
#[allow(clippy::too_many_arguments)] // mirrors `try_simulate` plus the kernel/inputs
pub fn simulate_functional(
    adg: &Adg,
    kernel: &Kernel,
    version: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
    inputs: &BTreeMap<String, Vec<f64>>,
) -> Result<CoSimReport, CoSimError> {
    let problem = Problem::new(adg, version);
    let config = verify_round_trip_timed(&problem, schedule, eval)?;
    let timing = try_simulate_verified(adg, version, schedule, eval, &config, config_path_len, cfg)?;
    for (ri, region) in version.regions.iter().enumerate() {
        let fired = timing.firings.get(ri).copied().unwrap_or(0);
        // Instance counts are products of trip counts and can be fractional
        // only for statistical patterns; a correct engine lands within
        // rounding of the demanded count.
        if (fired as f64 - region.instances).abs() > 0.5 {
            return Err(CoSimError::FiringMismatch {
                region: ri,
                fired,
                expected: region.instances,
            });
        }
    }
    let outputs = execute(kernel, inputs)?;
    Ok(CoSimReport { timing, outputs })
}

#[cfg(test)]
mod tests {
    use std::error::Error;

    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_scheduler::{schedule, SchedulerConfig};

    use super::*;

    type TestResult = Result<(), Box<dyn Error>>;

    fn axpy(n: u64) -> Result<Kernel, Box<dyn Error>> {
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, n, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let two = r.imm(2);
        let m = r.bin(Opcode::Mul, va, two);
        let s = r.bin(Opcode::Add, m, vb);
        r.store(b, AffineExpr::var(i), s);
        k.finish_region(r);
        Ok(k.build()?)
    }

    #[test]
    fn cosim_reports_timing_and_values_together() -> TestResult {
        let adg = presets::softbrain();
        let kernel = axpy(64)?;
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())?;
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(s.is_legal());
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_string(), (0..64).map(f64::from).collect::<Vec<_>>());
        inputs.insert("b".to_string(), vec![1.0; 64]);
        let report = simulate_functional(
            &adg,
            &kernel,
            &ck,
            &s.schedule,
            &s.eval,
            0,
            &SimConfig::default(),
            &inputs,
        )?;
        assert!(report.timing.cycles >= 64);
        let b = report.outputs.get("b").ok_or("output b missing")?;
        for (i, v) in b.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f64 + 1.0, "b[{i}]");
        }
        Ok(())
    }

    #[test]
    fn cosim_verifies_the_config_before_simulating() -> TestResult {
        // The verification gate must hold for a healthy run: the same
        // problem/schedule pair the cosim just accepted round-trips.
        let adg = presets::softbrain();
        let kernel = axpy(64)?;
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())?;
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        let problem = Problem::new(&adg, &ck);
        let config = verify_round_trip_timed(&problem, &s.schedule, &s.eval)?;
        assert!(config.matches(&s.schedule));
        assert!(config.word_count() > 0);
        // A token minted for a *different* schedule is refused with a
        // typed error, not an undefined simulation.
        let mut other = s.schedule.clone();
        if let Some(slot) = other.placement.iter_mut().find(|p| p.is_some()) {
            *slot = None;
        }
        let err = try_simulate_verified(
            &adg,
            &ck,
            &other,
            &s.eval,
            &config,
            0,
            &SimConfig::default(),
        )
        .err()
        .ok_or("mismatched token must be refused")?;
        assert!(
            matches!(err, SimError::UnverifiedConfig { .. }),
            "got {err}"
        );
        Ok(())
    }

    #[test]
    fn cosim_rejects_stale_schedule() -> TestResult {
        let mut adg = presets::softbrain();
        let kernel = axpy(64)?;
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())?;
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        let victim = s
            .schedule
            .placement
            .iter()
            .flatten()
            .copied()
            .next()
            .ok_or("something placed")?;
        adg.remove_node(victim)?;
        let err = simulate_functional(
            &adg,
            &kernel,
            &ck,
            &s.schedule,
            &s.eval,
            0,
            &SimConfig::default(),
            &BTreeMap::new(),
        )
        .err()
        .ok_or("stale schedule must fail")?;
        assert!(matches!(err, CoSimError::Sim(_)), "got {err}");
        assert!(!err.to_string().is_empty());
        Ok(())
    }

    #[test]
    fn cosim_flags_underfired_regions() -> TestResult {
        // A starved cycle cap cuts the region short: the engine cannot
        // deliver every instance and the mismatch must be loud.
        let adg = presets::softbrain();
        let kernel = axpy(4096)?;
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())?;
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(s.is_legal());
        let err = simulate_functional(
            &adg,
            &kernel,
            &ck,
            &s.schedule,
            &s.eval,
            0,
            &SimConfig { max_cycles: 16 },
            &BTreeMap::new(),
        )
        .err()
        .ok_or("16-cycle cap cannot deliver 4096 instances")?;
        match err {
            CoSimError::FiringMismatch {
                region,
                fired,
                expected,
            } => {
                assert_eq!(region, 0);
                assert!((fired as f64) < expected);
            }
            other => return Err(format!("unexpected error {other}").into()),
        }
        Ok(())
    }
}
