//! The cycle-by-cycle execution engine.
//!
//! Each pipeline group of regions is simulated jointly: every cycle the
//! control core issues stream commands, the memories arbitrate line/bank
//! requests into port FIFOs, and each region's dataflow fabric fires when
//! its operands are buffered, its outputs have space, its initiation
//! interval has elapsed, and its recurrences allow.
//!
//! The engine is a **stateful, cloneable machine** ([`EngineCore`]) driven
//! one cycle at a time by [`EngineCore::tick`]. Every public entry point —
//! [`simulate`], [`simulate_instrumented`], [`try_simulate`], and the
//! runtime fault path in [`crate::runtime`] — drives the *same* core, so a
//! checkpointed-and-resumed run is bit-identical to an uninterrupted one
//! by construction: checkpointing is just cloning the core.

use std::collections::{BTreeMap, HashMap};

use dsagen_adg::{Adg, CtrlSpec, NodeId, NodeKind};
use dsagen_dfg::{CompiledKernel, CompiledRegion, StreamDir, StreamSource};
use dsagen_scheduler::{Evaluation, Problem, Schedule};

use crate::telemetry::{RegionTally, SimTelemetry, StreamCounters};
use crate::{SimConfig, SimReport, StallBreakdown};

/// Cycles charged for each inter-group barrier + fence drain.
pub(crate) const BARRIER_CYCLES: u64 = 64;

/// Effective fraction of banks usable by random indirect traffic (expected
/// distinct banks hit by b uniform requests ≈ 1 − 1/e).
const BANK_EFFICIENCY: f64 = 0.65;

/// Fixed memory response latency before the first element of a stream
/// command lands in its port FIFO.
const MEM_LATENCY: u64 = 12;

/// Floating-point slack below which stream element counts are treated as
/// exhausted (fractional per-firing accounting leaves residues).
const EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
pub(crate) struct StreamState {
    /// Elements still to deliver/drain across the whole region execution.
    pub(crate) remaining: f64,
    /// Elements buffered in the port FIFO (fabric side).
    pub(crate) fifo: f64,
    /// FIFO capacity in elements.
    fifo_cap: f64,
    /// Elements consumed (reads) / produced (writes) per firing.
    per_firing: f64,
    /// Elements left before the next re-issue pause.
    until_reissue: f64,
    /// Elements per command (re-issue granularity).
    per_command: f64,
    /// Whether the initial command has been issued and the memory latency
    /// elapsed.
    active_at: u64,
    /// Memory this stream is bound to (None for forwarded / control-core).
    pub(crate) mem: Option<NodeId>,
    /// Whether the stream pays per-element (strided/indirect) or per-line.
    pub(crate) elems_per_cycle: f64,
    /// Read (memory→fabric) or write.
    is_read: bool,
    /// Served by the control core element-by-element.
    ctrl_fed: bool,
    // ---- hardware counters (always tallied; plain increments) ----
    /// Cycles in which the stream delivered at least one element.
    issued: u64,
    /// Cycles in which the stream wanted to move data but could not.
    stalled: u64,
    /// Highest FIFO occupancy observed.
    highwater: f64,
    /// Total elements moved.
    moved: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct RegionState {
    pub(crate) firings_left: f64,
    next_fire: f64,
    pub(crate) ii: f64,
    pub(crate) rec_gate: f64,
    fired: u64,
    pub(crate) done_at: Option<u64>,
    pub(crate) streams: Vec<StreamState>,
    /// The region cannot complete before the control core has executed its
    /// scalar fallback work (1 op/cycle).
    ctrl_floor: u64,
    /// Exclusive per-cycle stall/fire tallies (hardware counters).
    tally: RegionTally,
}

/// Per-region fault effect for one upcoming cycle, resolved by the
/// runtime layer ([`crate::runtime`]). The plain entry points pass an
/// empty slice, which reads as [`Effect::Normal`] everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum Effect {
    /// Healthy: the region fires under its normal gating.
    #[default]
    Normal,
    /// A blocking fault (dead PE, severed link) is active: the region's
    /// fabric cannot fire this cycle. Stream-side drain still proceeds.
    Blocked,
    /// A silent-corruption fault (stuck switch) is active: the region
    /// fires normally but every firing produces poisoned results.
    Poisoned,
}

/// What one [`EngineCore::tick`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tick {
    /// One cycle of the current pipeline group was executed.
    Cycle,
    /// The current group completed (or hit the cycle cap) and was
    /// harvested; the next group will initialize on the next tick.
    GroupDone,
    /// All groups are complete; the run is over.
    Finished,
}

/// Borrowed, schedule-derived context the engine steps against. Cheap to
/// construct (all references), so the runtime layer can rebuild it after a
/// repair changes the ADG/schedule without touching the [`EngineCore`].
#[derive(Clone, Copy)]
pub(crate) struct EngineCtx<'a> {
    pub(crate) adg: &'a Adg,
    pub(crate) kernel: &'a CompiledKernel,
    pub(crate) eval: &'a Evaluation,
    pub(crate) cfg: &'a SimConfig,
    pub(crate) stream_mems: &'a BTreeMap<(usize, bool, usize), NodeId>,
    pub(crate) ctrl: &'a CtrlSpec,
    pub(crate) groups: &'a [Vec<usize>],
}

/// Partitions a kernel's regions into pipeline groups (consecutive
/// regions linked by `pipelined_with_next` execute jointly).
pub(crate) fn pipeline_groups(kernel: &CompiledKernel) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut current = vec![0usize];
    for i in 0..kernel.regions.len().saturating_sub(1) {
        if kernel.regions[i].pipelined_with_next {
            current.push(i + 1);
        } else {
            groups.push(std::mem::take(&mut current));
            current = vec![i + 1];
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Checks that `schedule` only references hardware that exists in `adg`
/// (and that the ADG can issue commands at all).
pub(crate) fn validate_schedule(adg: &Adg, schedule: &Schedule) -> Result<(), crate::SimError> {
    if adg.control().is_none() {
        return Err(crate::SimError::NoControlCore);
    }
    for (entity, placed) in schedule.placement.iter().enumerate() {
        if let Some(node) = placed {
            if adg.node(*node).is_none() {
                return Err(crate::SimError::MissingNode {
                    entity,
                    node: *node,
                });
            }
        }
    }
    for (route, path) in &schedule.routes {
        for eid in path {
            if adg.edge(*eid).is_none() {
                return Err(crate::SimError::MissingEdge {
                    route: *route,
                    edge: *eid,
                });
            }
        }
    }
    Ok(())
}

/// The cloneable machine state of one simulation: everything that evolves
/// cycle by cycle. Checkpointing the run is cloning this struct; resuming
/// is continuing to [`EngineCore::tick`] a clone.
#[derive(Debug, Clone)]
pub(crate) struct EngineCore {
    /// Index of the pipeline group currently executing.
    group_idx: usize,
    /// Cycle within the current group (the group-local timeline).
    cycle: u64,
    /// Cycles accumulated before the current group: configuration load,
    /// completed groups, and inter-group barriers.
    total_before: u64,
    /// Per-region state of the current group (None = initialize on the
    /// next tick).
    regions: Option<Vec<(usize, RegionState)>>,
    region_cycles: Vec<u64>,
    firings: Vec<u64>,
    active_cycles: Vec<u64>,
    stalls: StallBreakdown,
    tallies: Vec<RegionTally>,
    stream_counters: Vec<StreamCounters>,
    group_cycles: Vec<u64>,
    config_cycles: u64,
    /// Poisoned firings per region (silent-corruption fault accounting;
    /// rolls back with the rest of the state on restore).
    pub(crate) poisoned: Vec<u64>,
}

impl EngineCore {
    pub(crate) fn new(n_regions: usize, config_path_len: u32) -> Self {
        let config_cycles = u64::from(config_path_len);
        EngineCore {
            group_idx: 0,
            cycle: 0,
            total_before: config_cycles,
            regions: None,
            region_cycles: vec![0; n_regions],
            firings: vec![0; n_regions],
            active_cycles: vec![0; n_regions],
            stalls: StallBreakdown::default(),
            tallies: vec![RegionTally::default(); n_regions],
            stream_counters: Vec::new(),
            group_cycles: Vec::new(),
            config_cycles,
            poisoned: vec![0; n_regions],
        }
    }

    /// The global simulated cycle: config load + completed groups +
    /// barriers + the current group-local cycle.
    pub(crate) fn wall(&self) -> u64 {
        self.total_before + self.cycle
    }

    /// Whether a region can still be affected by a fabric fault right now:
    /// it is part of the currently-executing group, not done, and still has
    /// firings to execute.
    pub(crate) fn region_live(&self, ctx: EngineCtx<'_>, ri: usize) -> bool {
        if self.group_idx >= ctx.groups.len() || !ctx.groups[self.group_idx].contains(&ri) {
            return false;
        }
        match &self.regions {
            // Group not initialized yet: it will run, so the region is live.
            None => true,
            Some(regions) => regions
                .iter()
                .find(|(i, _)| *i == ri)
                .is_some_and(|(_, rs)| rs.done_at.is_none() && rs.firings_left > 0.0),
        }
    }

    /// Advances the machine by (at most) one cycle.
    pub(crate) fn tick(&mut self, ctx: EngineCtx<'_>, effects: &[Effect]) -> Tick {
        if self.group_idx >= ctx.groups.len() {
            return Tick::Finished;
        }
        if self.regions.is_none() {
            self.init_group(ctx);
        }
        let all_done = self
            .regions
            .as_ref()
            .is_some_and(|rs| rs.iter().all(|(_, r)| r.done_at.is_some()));
        if all_done || self.cycle >= ctx.cfg.max_cycles {
            self.finish_group(ctx);
            return if self.group_idx >= ctx.groups.len() {
                Tick::Finished
            } else {
                Tick::GroupDone
            };
        }
        self.cycle += 1;
        self.step_cycle(effects);
        Tick::Cycle
    }

    /// Builds the per-region state of the current group and issues every
    /// stream command (the control core issues them one at a time).
    fn init_group(&mut self, ctx: EngineCtx<'_>) {
        let group = &ctx.groups[self.group_idx];
        let mut regions: Vec<(usize, RegionState)> = group
            .iter()
            .map(|&ri| {
                (
                    ri,
                    region_state(
                        ctx.adg,
                        &ctx.kernel.regions[ri],
                        ctx.eval.regions.get(ri),
                        ri,
                        ctx.stream_mems,
                    ),
                )
            })
            .collect();
        let mut issue_cursor = 0u64;
        for (_, rs) in regions.iter_mut() {
            for s in rs.streams.iter_mut() {
                issue_cursor += u64::from(ctx.ctrl.command_issue_cycles);
                s.active_at = issue_cursor + MEM_LATENCY;
            }
        }
        self.cycle = 0;
        self.regions = Some(regions);
    }

    /// Harvests the finished (or capped) group and advances to the next.
    fn finish_group(&mut self, ctx: EngineCtx<'_>) {
        let gi = self.group_idx;
        let cycle = self.cycle;
        if let Some(regions) = self.regions.take() {
            for (ri, rs) in &regions {
                if rs.done_at.is_none() {
                    self.region_cycles[*ri] = cycle;
                }
            }
            for (ri, rs) in regions {
                self.tallies[ri] = rs.tally;
                self.tallies[ri].group = gi;
                for (si, s) in rs.streams.into_iter().enumerate() {
                    self.stream_counters.push(StreamCounters {
                        region: ri,
                        index: si,
                        is_read: s.is_read,
                        ctrl_fed: s.ctrl_fed,
                        issued: s.issued,
                        stalled: s.stalled,
                        elems: s.moved,
                        fifo_highwater: s.highwater,
                        fifo_cap: s.fifo_cap,
                    });
                }
            }
        }
        self.group_cycles.push(cycle);
        self.total_before += cycle;
        if gi + 1 < ctx.groups.len() {
            self.total_before += BARRIER_CYCLES; // barrier + fence drain
        }
        self.group_idx += 1;
        self.cycle = 0;
    }

    /// One cycle of the current group: memory arbitration, control-core
    /// delivery, then fabric firing — with per-region fault `effects`
    /// overlaid (empty slice = fault-free).
    fn step_cycle(&mut self, effects: &[Effect]) {
        let cycle = self.cycle;
        let Some(regions) = self.regions.as_mut() else {
            return;
        };

        // ---- memory arbitration: each memory serves one line request (or
        // a bank-parallel gather batch) per cycle, round-robin over the
        // streams bound to it.
        let mut mem_budget: HashMap<NodeId, f64> = HashMap::new();
        for (_, rs) in regions.iter_mut() {
            for s in rs.streams.iter_mut() {
                if s.remaining <= EPS || cycle < s.active_at {
                    continue;
                }
                let Some(mem) = s.mem else {
                    // Forwarded streams move without memory involvement,
                    // but writes can only drain what the fabric produced
                    // and reads only fill available FIFO space.
                    if !s.ctrl_fed {
                        let amount = s.remaining.min(s.elems_per_cycle).min(if s.is_read {
                            (s.fifo_cap - s.fifo).max(0.0)
                        } else {
                            s.fifo
                        });
                        if amount > 0.0 {
                            deliver(s, amount);
                        } else {
                            s.stalled += 1; // blocked on the fabric-side FIFO
                        }
                    }
                    continue;
                };
                let budget = mem_budget.entry(mem).or_insert(1.0);
                if *budget <= 0.0 {
                    self.stalls.memory += 1;
                    s.stalled += 1; // lost memory-port arbitration
                    continue;
                }
                let amount = s
                    .remaining
                    .min(s.elems_per_cycle)
                    .min(if s.is_read {
                        (s.fifo_cap - s.fifo).max(0.0)
                    } else {
                        s.fifo // writes drain what the fabric produced
                    });
                if amount > 0.0 {
                    *budget -= 1.0;
                    deliver(s, amount);
                } else {
                    s.stalled += 1; // port FIFO full (read) / empty (write)
                }
            }
        }

        // ---- control core: scalar fallback work feeds ControlCore
        // streams at the scalar rate (their `elems_per_cycle` was derived
        // from the region's total control work).
        for (_, rs) in regions.iter_mut() {
            for s in rs.streams.iter_mut() {
                if s.ctrl_fed && s.remaining > EPS && cycle >= s.active_at {
                    let amount = s.remaining.min(s.elems_per_cycle).min(if s.is_read {
                        (s.fifo_cap - s.fifo).max(0.0)
                    } else {
                        s.fifo
                    });
                    if amount > 0.0 {
                        deliver(s, amount);
                    } else {
                        self.stalls.ctrl += 1;
                        s.stalled += 1; // control core could not feed
                    }
                }
            }
        }

        // ---- fabric firing.
        for (ri, rs) in regions.iter_mut() {
            if rs.done_at.is_some() {
                continue;
            }
            if rs.firings_left <= 0.0 {
                // Drain: done once write streams are empty and the control
                // core has retired its scalar fallback work.
                // A write FIFO may hold a sub-element residue when the
                // rounded firing count slightly over-produces; tolerate it.
                let drained = rs
                    .streams
                    .iter()
                    .all(|s| s.is_read || (s.remaining <= EPS && s.fifo <= 0.01));
                if drained && cycle >= rs.ctrl_floor {
                    rs.done_at = Some(cycle);
                    self.region_cycles[*ri] = cycle;
                }
                continue;
            }
            let effect = effects.get(*ri).copied().unwrap_or(Effect::Normal);
            if effect == Effect::Blocked {
                // A blocking fault holds the fabric: no firing, no II
                // progress. The progress watchdog in `runtime` observes
                // exactly these cycles.
                continue;
            }
            if (cycle as f64) < rs.next_fire {
                self.stalls.ii += 1;
                rs.tally.ii += 1;
                continue;
            }
            // Operand availability & output space.
            let inputs_ready = rs
                .streams
                .iter()
                .filter(|s| s.is_read)
                .all(|s| s.fifo + 1e-9 >= s.firing_need());
            let outputs_ready = rs
                .streams
                .iter()
                .filter(|s| !s.is_read)
                .all(|s| s.fifo_cap - s.fifo + 1e-9 >= s.per_firing);
            if !inputs_ready {
                self.stalls.operands += 1;
                rs.tally.operands += 1;
                continue;
            }
            if !outputs_ready {
                self.stalls.backpressure += 1;
                rs.tally.backpressure += 1;
                continue;
            }
            // Fire one instance.
            for s in rs.streams.iter_mut() {
                if s.is_read {
                    let need = s.firing_need();
                    s.fifo = (s.fifo - need).max(0.0);
                } else {
                    s.fifo += s.per_firing;
                    if s.fifo > s.highwater {
                        s.highwater = s.fifo;
                    }
                }
            }
            rs.firings_left -= 1.0;
            rs.fired += 1;
            rs.tally.fired_cycles += 1;
            self.firings[*ri] += 1;
            self.active_cycles[*ri] += 1;
            rs.next_fire = cycle as f64 + rs.ii.max(rs.rec_gate);
            if effect == Effect::Poisoned {
                // The firing happened, but a stuck switch delivered wrong
                // operands: the produced results are corrupt. The residue
                // checker in `runtime` observes this counter.
                self.poisoned[*ri] += 1;
            }
        }
    }

    /// Rebinds the schedule-derived fields of the current group's state to
    /// a new context (after a repair changed the ADG/schedule/eval):
    /// memory bindings, service rates, initiation interval, and recurrence
    /// gate are refreshed; all dynamic progress (remaining elements, FIFO
    /// contents, completed firings, counters) is preserved.
    pub(crate) fn rebind(&mut self, ctx: EngineCtx<'_>) {
        let Some(regions) = self.regions.as_mut() else {
            return;
        };
        for (ri, rs) in regions.iter_mut() {
            let fresh = region_state(
                ctx.adg,
                &ctx.kernel.regions[*ri],
                ctx.eval.regions.get(*ri),
                *ri,
                ctx.stream_mems,
            );
            rs.ii = fresh.ii;
            rs.rec_gate = fresh.rec_gate;
            for (s, fs) in rs.streams.iter_mut().zip(fresh.streams) {
                s.mem = fs.mem;
                s.elems_per_cycle = fs.elems_per_cycle;
            }
        }
    }

    /// Total poisoned firings currently accounted (rolls back with the
    /// core on restore).
    pub(crate) fn poisoned_total(&self) -> u64 {
        self.poisoned.iter().sum()
    }

    /// Index of the pipeline group currently executing.
    pub(crate) fn group_idx(&self) -> usize {
        self.group_idx
    }

    /// The group-local cycle of the current group.
    pub(crate) fn group_cycle(&self) -> u64 {
        self.cycle
    }

    /// Rewinds only `regions` to their state in `from`, leaving every other
    /// region's progress (and the wall clock) untouched. Both cores must be
    /// inside the same pipeline group with initialized region state — the
    /// group-local timeline is the shared frame of reference that makes a
    /// per-region splice meaningful. Returns false (and changes nothing)
    /// when that precondition fails.
    pub(crate) fn splice_regions_from(&mut self, from: &EngineCore, regions: &[usize]) -> bool {
        if self.group_idx != from.group_idx {
            return false;
        }
        let (Some(cur), Some(old)) = (self.regions.as_ref(), from.regions.as_ref()) else {
            return false;
        };
        if cur.len() != old.len() || cur.iter().map(|(i, _)| i).ne(old.iter().map(|(i, _)| i)) {
            return false;
        }
        let spliced: Vec<(usize, RegionState)> = self
            .regions
            .as_ref()
            .expect("checked above")
            .iter()
            .zip(old.iter())
            .map(|((ri, rs), (_, old_rs))| {
                if regions.contains(ri) {
                    (*ri, old_rs.clone())
                } else {
                    (*ri, rs.clone())
                }
            })
            .collect();
        self.regions = Some(spliced);
        for &ri in regions {
            if ri < self.firings.len() {
                self.firings[ri] = from.firings[ri];
                self.poisoned[ri] = from.poisoned[ri];
                self.region_cycles[ri] = from.region_cycles[ri];
                self.active_cycles[ri] = from.active_cycles[ri];
                self.tallies[ri] = from.tallies[ri];
            }
        }
        true
    }

    /// Completed firings per region so far.
    pub(crate) fn firings(&self) -> &[u64] {
        &self.firings
    }

    /// Assembles the public report from the accumulated state. Valid once
    /// [`Tick::Finished`] has been returned (calling earlier yields a
    /// partial view).
    pub(crate) fn report(&self, kernel: &CompiledKernel) -> SimReport {
        let total_cycles = self.wall();
        let total_insts: f64 = kernel
            .regions
            .iter()
            .map(|r| r.dfg.inst_count() as f64 * r.instances)
            .sum();
        SimReport {
            cycles: total_cycles,
            region_cycles: self.region_cycles.clone(),
            firings: self.firings.clone(),
            active_cycles: self.active_cycles.clone(),
            ipc: total_insts / total_cycles.max(1) as f64,
            stalls: self.stalls,
        }
    }

    /// Joins the engine's raw tallies against the schedule's placement to
    /// produce per-PE counters that satisfy the conservation laws
    /// documented in [`crate::telemetry`].
    pub(crate) fn telemetry(&self, ctx: EngineCtx<'_>, schedule: &Schedule) -> SimTelemetry {
        let problem = Problem::new(ctx.adg, ctx.kernel);
        let report = self.report(ctx.kernel);
        let barrier_cycles = BARRIER_CYCLES * (ctx.groups.len() as u64).saturating_sub(1);
        crate::telemetry::attribute(
            ctx.adg,
            schedule,
            &problem,
            &report,
            &self.tallies,
            self.stream_counters.clone(),
            self.group_cycles.clone(),
            self.config_cycles,
            barrier_cycles,
        )
    }
}

/// Runs a pre-validated simulation to completion on a fresh core and
/// returns the report plus hardware counters. This is the single code path
/// behind every public entry point.
fn run_to_completion(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
    tel: &dsagen_telemetry::Telemetry,
) -> (SimReport, SimTelemetry) {
    let problem = Problem::new(adg, kernel);
    let stream_mems = schedule.stream_memories(&problem);
    let ctrl = control_spec(adg);
    let groups = pipeline_groups(kernel);
    let ctx = EngineCtx {
        adg,
        kernel,
        eval,
        cfg,
        stream_mems: &stream_mems,
        ctrl: &ctrl,
        groups: &groups,
    };
    let mut core = EngineCore::new(kernel.regions.len(), config_path_len);
    // The tick loop is the simulator's hot path: count iterations in a
    // plain local and flush metrics once after the run, so an enabled
    // registry costs nothing per tick.
    let mut tick_span = tel.span("sim", "tick_loop");
    let mut ticks: u64 = 0;
    while core.tick(ctx, &[]) != Tick::Finished {
        ticks += 1;
    }
    let report = core.report(kernel);
    let telemetry = core.telemetry(ctx, schedule);
    tick_span.arg("ticks", ticks);
    tick_span.arg("cycles", report.cycles);
    tick_span.end();
    flush_engine_metrics(tel, ticks, &report, groups.len() as u64);
    (report, telemetry)
}

/// One post-run flush of engine counters into the metrics registry. The
/// tick loop itself never touches the registry; this keeps the enabled
/// cost to a handful of map operations per simulation.
fn flush_engine_metrics(
    tel: &dsagen_telemetry::Telemetry,
    ticks: u64,
    report: &SimReport,
    groups: u64,
) {
    let m = tel.metrics();
    if !m.is_enabled() {
        return;
    }
    m.add("sim.engine.runs", 1);
    m.add("sim.engine.ticks", ticks);
    m.add("sim.engine.cycles", report.cycles);
    m.add("sim.engine.pipeline_groups", groups);
    m.observe("sim.engine.cycles_per_run", report.cycles);
}

/// Simulates one kernel version end to end, after checking that the
/// schedule only references hardware that still exists in `adg`.
///
/// This is the fault-tolerant entry point: a schedule minted against a
/// healthy graph and then run against a fault-degraded one (dead PE,
/// severed link) fails with a typed [`SimError`](crate::SimError) instead
/// of producing nonsense or panicking deep inside the engine.
///
/// # Errors
///
/// * [`SimError::NoControlCore`](crate::SimError::NoControlCore) — the ADG
///   has no control core to issue stream commands;
/// * [`SimError::MissingNode`](crate::SimError::MissingNode) — a placement
///   references a node absent from the ADG (for example a dead PE);
/// * [`SimError::MissingEdge`](crate::SimError::MissingEdge) — a route
///   references an edge absent from the ADG (for example a severed link).
pub fn try_simulate(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
) -> Result<SimReport, crate::SimError> {
    validate_schedule(adg, schedule)?;
    let tel = dsagen_telemetry::Telemetry::disabled();
    Ok(run_to_completion(adg, kernel, schedule, eval, config_path_len, cfg, &tel).0)
}

/// [`try_simulate`] plus full hardware counters.
///
/// # Errors
///
/// Same contract as [`try_simulate`].
pub fn try_simulate_collect(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
) -> Result<(SimReport, SimTelemetry), crate::SimError> {
    validate_schedule(adg, schedule)?;
    let tel = dsagen_telemetry::Telemetry::disabled();
    Ok(run_to_completion(adg, kernel, schedule, eval, config_path_len, cfg, &tel))
}

/// Simulates one kernel version end to end.
///
/// Alias for [`try_simulate`], kept as the stable entry point: it
/// returns the same typed [`SimError`](crate::SimError) instead of
/// panicking, so a stale schedule over a degraded ADG is an ordinary
/// recoverable condition for the caller.
///
/// # Errors
///
/// If the schedule references hardware absent from `adg` (see
/// [`try_simulate`] for the cases).
pub fn simulate(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
) -> Result<SimReport, crate::SimError> {
    try_simulate(adg, kernel, schedule, eval, config_path_len, cfg)
}

/// [`simulate`] plus full hardware counters, with telemetry events for
/// the run emitted into `tel` (a span covering the engine, per-PE /
/// per-stream counter instants, and a summary). The returned
/// [`SimReport`] is **bit-identical** to what [`simulate`] produces for
/// the same inputs — instrumentation never perturbs the simulation.
///
/// Thin wrapper over the same fallible core as [`try_simulate`]; a
/// failed run ends the telemetry span with the error before returning
/// it, so traces stay well-formed even on the error path.
///
/// # Errors
///
/// If the schedule references hardware absent from `adg` (see
/// [`try_simulate`]).
pub fn simulate_instrumented(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
    tel: &dsagen_telemetry::Telemetry,
) -> Result<(SimReport, SimTelemetry), crate::SimError> {
    let mut span = tel.span("phase", "simulate");
    if let Err(e) = validate_schedule(adg, schedule) {
        span.arg("error", e.to_string());
        span.end();
        tel.recorder().record("sim", || {
            ("sim_error".to_string(), format!("error={e}"))
        });
        let _ = tel.recorder().dump_on_error("sim_error");
        return Err(e);
    }
    let (report, telemetry) =
        run_to_completion(adg, kernel, schedule, eval, config_path_len, cfg, tel);
    span.arg("cycles", report.cycles);
    span.arg("pes", telemetry.pes.len());
    span.arg("streams", telemetry.streams.len());
    span.end();
    telemetry.emit(tel);
    Ok((report, telemetry))
}

impl StreamState {
    /// Elements a firing needs from this stream right now: the nominal
    /// per-firing amount, capped by what the stream can still supply (so a
    /// fractional final firing does not deadlock on residue).
    fn firing_need(&self) -> f64 {
        self.per_firing.min(self.fifo + self.remaining)
    }
}

fn deliver(s: &mut StreamState, amount: f64) {
    s.issued += 1;
    s.moved += amount;
    if s.is_read {
        s.fifo = (s.fifo + amount).min(s.fifo_cap);
        if s.fifo > s.highwater {
            s.highwater = s.fifo;
        }
    } else {
        s.fifo = (s.fifo - amount).max(0.0);
    }
    s.remaining -= amount;
    if s.remaining <= EPS {
        s.remaining = 0.0;
    }
    if s.fifo <= EPS {
        s.fifo = 0.0;
    }
    s.until_reissue -= amount;
    if s.until_reissue <= EPS && s.remaining > EPS {
        // Re-issue pause: the next command's latency applies. This is where
        // command-heavy patterns (many short streams) lose time that the
        // analytical model's max() formulation partially hides (§VIII-B:
        // the model "does not yet capture the performance impact of
        // excessive control instructions").
        s.until_reissue = s.per_command;
        s.active_at += MEM_LATENCY / 2;
    }
}

fn region_state(
    adg: &Adg,
    region: &CompiledRegion,
    eval: Option<&dsagen_scheduler::RegionEval>,
    ri: usize,
    stream_mems: &BTreeMap<(usize, bool, usize), NodeId>,
) -> RegionState {
    let instances = region.instances.max(1.0);
    let (ii, mismatch, rec_lats) = match eval {
        Some(e) => (e.max_ii, e.mismatch_excess, e.recurrence_latencies.clone()),
        None => (1.0, 0.0, vec![]),
    };
    let rec_gate = region
        .dfg
        .recurrences()
        .iter()
        .zip(rec_lats.iter().chain(std::iter::repeat(&1.0)))
        .map(|(rec, lat)| lat / rec.independent_chains.max(1.0))
        .fold(1.0, f64::max);

    let mut streams = Vec::new();
    for (is_input, s) in region
        .in_streams
        .iter()
        .map(|s| (true, s))
        .chain(region.out_streams.iter().map(|s| (false, s)))
    {
        if !s.to_fabric && is_input {
            // Index streams are folded into their memory's budget via the
            // data stream's per-element service; skip explicit state.
            continue;
        }
        let total = s.pattern.total_elems();
        let mem = stream_mems.get(&(ri, is_input, s.port)).copied();
        let ctrl_fed = matches!(s.source, StreamSource::ControlCore);
        let elems_per_cycle = match (&s.source, mem) {
            (StreamSource::ControlCore, _) => {
                // The core spreads its scalar work across the elements it
                // must feed: total elements / total scalar ops.
                (total / region.ctrl_ops.max(1.0)).clamp(1e-6, 1.0)
            }
            (StreamSource::Memory(_), Some(m)) => {
                if s.pattern.indirect || s.dir == StreamDir::AtomicUpdate {
                    indirect_rate(adg, m)
                } else if s.pattern.stride_bytes.unsigned_abs() as u32 == s.elem_bytes
                    || mem_coalesces(adg, m)
                {
                    64.0 / f64::from(s.elem_bytes) // one line per cycle
                } else if s.pattern.stride_bytes == 0 {
                    f64::from(s.lanes.max(1)) * 4.0
                } else {
                    // Strided: one lane-group request per cycle (the
                    // group's lanes are consecutive elements).
                    f64::from(s.lanes.max(1))
                }
            }
            _ => f64::from(s.lanes.max(1)) * 2.0,
        };
        streams.push(StreamState {
            remaining: total,
            fifo: 0.0,
            fifo_cap: (f64::from(s.lanes.max(1)) * 16.0).max(16.0),
            per_firing: total / instances,
            until_reissue: s.pattern.elems_per_command,
            per_command: s.pattern.elems_per_command,
            active_at: 0,
            mem: if matches!(s.source, StreamSource::Memory(_)) {
                mem
            } else {
                None
            },
            elems_per_cycle,
            is_read: is_input,
            ctrl_fed,
            issued: 0,
            stalled: 0,
            highwater: 0.0,
            moved: 0.0,
        });
    }

    RegionState {
        firings_left: instances.round(),
        next_fire: 0.0,
        ii: (ii + mismatch).max(1.0),
        rec_gate,
        fired: 0,
        done_at: None,
        streams,
        ctrl_floor: region.ctrl_ops.ceil() as u64,
        tally: RegionTally::default(),
    }
}

/// Refines the bank-parallel service rate for indirect streams using the
/// bound memory's actual bank count.
pub(crate) fn indirect_rate(adg: &Adg, mem: NodeId) -> f64 {
    match adg.kind(mem) {
        Ok(NodeKind::Memory(spec)) => f64::from(spec.banks.max(1)) * BANK_EFFICIENCY,
        _ => 1.0,
    }
}

/// Whether a memory's controller coalesces strided requests.
fn mem_coalesces(adg: &Adg, mem: NodeId) -> bool {
    matches!(adg.kind(mem), Ok(NodeKind::Memory(spec)) if spec.controllers.coalescing)
}

pub(crate) fn control_spec(adg: &Adg) -> CtrlSpec {
    adg.control()
        .and_then(|c| match adg.kind(c) {
            Ok(NodeKind::Control(spec)) => Some(*spec),
            _ => None,
        })
        .unwrap_or_default()
}
