//! The cycle-by-cycle execution engine.
//!
//! Each pipeline group of regions is simulated jointly: every cycle the
//! control core issues stream commands, the memories arbitrate line/bank
//! requests into port FIFOs, and each region's dataflow fabric fires when
//! its operands are buffered, its outputs have space, its initiation
//! interval has elapsed, and its recurrences allow.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dsagen_adg::{Adg, CtrlSpec, NodeId, NodeKind};
use dsagen_dfg::{CompiledKernel, CompiledRegion, StreamDir, StreamSource};
use dsagen_scheduler::{Evaluation, Problem, Schedule};

use crate::telemetry::{PeCounters, RegionTally, SimTelemetry, StallTaxonomy, StreamCounters};
use crate::{SimConfig, SimReport, StallBreakdown};

/// Cycles charged for each inter-group barrier + fence drain.
const BARRIER_CYCLES: u64 = 64;

/// Effective fraction of banks usable by random indirect traffic (expected
/// distinct banks hit by b uniform requests ≈ 1 − 1/e).
const BANK_EFFICIENCY: f64 = 0.65;

/// Fixed memory response latency before the first element of a stream
/// command lands in its port FIFO.
const MEM_LATENCY: u64 = 12;

/// Floating-point slack below which stream element counts are treated as
/// exhausted (fractional per-firing accounting leaves residues).
const EPS: f64 = 1e-6;

struct StreamState {
    /// Elements still to deliver/drain across the whole region execution.
    remaining: f64,
    /// Elements buffered in the port FIFO (fabric side).
    fifo: f64,
    /// FIFO capacity in elements.
    fifo_cap: f64,
    /// Elements consumed (reads) / produced (writes) per firing.
    per_firing: f64,
    /// Elements left before the next re-issue pause.
    until_reissue: f64,
    /// Elements per command (re-issue granularity).
    per_command: f64,
    /// Whether the initial command has been issued and the memory latency
    /// elapsed.
    active_at: u64,
    /// Memory this stream is bound to (None for forwarded / control-core).
    mem: Option<NodeId>,
    /// Whether the stream pays per-element (strided/indirect) or per-line.
    elems_per_cycle: f64,
    /// Read (memory→fabric) or write.
    is_read: bool,
    /// Served by the control core element-by-element.
    ctrl_fed: bool,
    // ---- hardware counters (always tallied; plain increments) ----
    /// Cycles in which the stream delivered at least one element.
    issued: u64,
    /// Cycles in which the stream wanted to move data but could not.
    stalled: u64,
    /// Highest FIFO occupancy observed.
    highwater: f64,
    /// Total elements moved.
    moved: f64,
}

struct RegionState {
    firings_left: f64,
    next_fire: f64,
    ii: f64,
    rec_gate: f64,
    fired: u64,
    done_at: Option<u64>,
    streams: Vec<StreamState>,
    /// The region cannot complete before the control core has executed its
    /// scalar fallback work (1 op/cycle).
    ctrl_floor: u64,
    /// Exclusive per-cycle stall/fire tallies (hardware counters).
    tally: RegionTally,
}

/// Simulates one kernel version end to end, after checking that the
/// schedule only references hardware that still exists in `adg`.
///
/// This is the fault-tolerant entry point: a schedule minted against a
/// healthy graph and then run against a fault-degraded one (dead PE,
/// severed link) fails with a typed [`SimError`](crate::SimError) instead
/// of producing nonsense or panicking deep inside the engine.
///
/// # Errors
///
/// * [`SimError::NoControlCore`](crate::SimError::NoControlCore) — the ADG
///   has no control core to issue stream commands;
/// * [`SimError::MissingNode`](crate::SimError::MissingNode) — a placement
///   references a node absent from the ADG (for example a dead PE);
/// * [`SimError::MissingEdge`](crate::SimError::MissingEdge) — a route
///   references an edge absent from the ADG (for example a severed link).
pub fn try_simulate(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
) -> Result<SimReport, crate::SimError> {
    if adg.control().is_none() {
        return Err(crate::SimError::NoControlCore);
    }
    for (entity, placed) in schedule.placement.iter().enumerate() {
        if let Some(node) = placed {
            if adg.node(*node).is_none() {
                return Err(crate::SimError::MissingNode {
                    entity,
                    node: *node,
                });
            }
        }
    }
    for (route, path) in &schedule.routes {
        for eid in path {
            if adg.edge(*eid).is_none() {
                return Err(crate::SimError::MissingEdge {
                    route: *route,
                    edge: *eid,
                });
            }
        }
    }
    Ok(simulate(adg, kernel, schedule, eval, config_path_len, cfg))
}

/// Simulates one kernel version end to end.
#[must_use]
pub fn simulate(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
) -> SimReport {
    simulate_collect(adg, kernel, schedule, eval, config_path_len, cfg).0
}

/// [`simulate`] plus full hardware counters, with telemetry events for
/// the run emitted into `tel` (a span covering the engine, per-PE /
/// per-stream counter instants, and a summary). The returned
/// [`SimReport`] is **bit-identical** to what [`simulate`] produces for
/// the same inputs — instrumentation never perturbs the simulation.
#[must_use]
pub fn simulate_instrumented(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
    tel: &dsagen_telemetry::Telemetry,
) -> (SimReport, SimTelemetry) {
    let mut span = tel.span("phase", "simulate");
    let (report, telemetry) = simulate_collect(adg, kernel, schedule, eval, config_path_len, cfg);
    span.arg("cycles", report.cycles);
    span.arg("pes", telemetry.pes.len());
    span.arg("streams", telemetry.streams.len());
    span.end();
    telemetry.emit(tel);
    (report, telemetry)
}

/// Shared engine body: runs the cycle loop and harvests both the public
/// report and the attributed hardware counters.
///
/// Kept out-of-line so [`simulate`] and [`simulate_instrumented`] execute
/// the *same machine code* for the engine itself — the instrumented entry
/// adds only the span/emit wrappers, which is what the telemetry_overhead
/// gate measures.
#[inline(never)]
fn simulate_collect(
    adg: &Adg,
    kernel: &CompiledKernel,
    schedule: &Schedule,
    eval: &Evaluation,
    config_path_len: u32,
    cfg: &SimConfig,
) -> (SimReport, SimTelemetry) {
    let problem = Problem::new(adg, kernel);
    let stream_mems = schedule.stream_memories(&problem);
    let ctrl = control_spec(adg);

    let config_cycles = u64::from(config_path_len);
    let mut total_cycles = config_cycles; // configuration load
    let mut region_cycles = vec![0u64; kernel.regions.len()];
    let mut firings = vec![0u64; kernel.regions.len()];
    let mut active_cycles = vec![0u64; kernel.regions.len()];
    let mut stalls = StallBreakdown::default();
    let mut tallies = vec![RegionTally::default(); kernel.regions.len()];
    let mut stream_counters: Vec<StreamCounters> = Vec::new();

    // Partition regions into pipeline groups.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut current = vec![0usize];
    for i in 0..kernel.regions.len().saturating_sub(1) {
        if kernel.regions[i].pipelined_with_next {
            current.push(i + 1);
        } else {
            groups.push(std::mem::take(&mut current));
            current = vec![i + 1];
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }

    let mut group_cycles = Vec::with_capacity(groups.len());
    for (gi, group) in groups.iter().enumerate() {
        let cycles = simulate_group(
            adg,
            kernel,
            eval,
            &stream_mems,
            &ctrl,
            group,
            cfg,
            &mut region_cycles,
            &mut firings,
            &mut active_cycles,
            &mut stalls,
            &mut tallies,
            &mut stream_counters,
        );
        group_cycles.push(cycles);
        for &ri in group {
            tallies[ri].group = gi;
        }
        total_cycles += cycles;
        if gi + 1 < groups.len() {
            total_cycles += BARRIER_CYCLES; // barrier + fence drain between groups
        }
    }

    let total_insts: f64 = kernel
        .regions
        .iter()
        .map(|r| r.dfg.inst_count() as f64 * r.instances)
        .sum();
    let report = SimReport {
        cycles: total_cycles,
        region_cycles,
        firings,
        active_cycles,
        ipc: total_insts / total_cycles.max(1) as f64,
        stalls,
    };
    let barrier_cycles = BARRIER_CYCLES * (groups.len() as u64).saturating_sub(1);
    let telemetry = attribute(
        adg,
        schedule,
        &problem,
        &report,
        &tallies,
        stream_counters,
        group_cycles,
        config_cycles,
        barrier_cycles,
    );
    (report, telemetry)
}

/// Joins the engine's raw tallies against the schedule's placement to
/// produce per-PE counters that satisfy the conservation laws documented
/// in [`crate::telemetry`].
#[allow(clippy::too_many_arguments)]
fn attribute(
    adg: &Adg,
    schedule: &Schedule,
    problem: &Problem<'_>,
    report: &SimReport,
    tallies: &[RegionTally],
    streams: Vec<StreamCounters>,
    group_cycles: Vec<u64>,
    config_cycles: u64,
    barrier_cycles: u64,
) -> SimTelemetry {
    let mut pes = Vec::new();
    for (ri, tally) in tallies.iter().enumerate() {
        // Distinct PE nodes hosting this region's operations.
        let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
        if let Some(ops) = problem.op_entity.get(ri) {
            for &entity in ops {
                if entity == usize::MAX {
                    continue; // constants are not placed
                }
                if let Some(Some(node)) = schedule.placement.get(entity) {
                    if matches!(adg.kind(*node), Ok(NodeKind::Pe(_))) {
                        nodes.insert(*node);
                    }
                }
            }
        }
        let taxonomy = StallTaxonomy {
            backpressure: tally.backpressure,
            operand_wait: tally.operands,
            memory: 0, // stream-level; see module docs
            barrier: barrier_cycles,
            config: config_cycles,
            ii: tally.ii,
            ctrl: 0, // stream-level; see module docs
        };
        let stalled = taxonomy.total();
        let busy = tally.fired_cycles;
        for node in nodes {
            pes.push(PeCounters {
                node,
                region: ri,
                cycles: report.cycles,
                fired: report.firings.get(ri).copied().unwrap_or(0),
                busy,
                stalled,
                idle: report.cycles.saturating_sub(busy + stalled),
                stalls: taxonomy,
            });
        }
    }
    let taxonomy = StallTaxonomy {
        backpressure: report.stalls.backpressure,
        operand_wait: report.stalls.operands,
        memory: report.stalls.memory,
        barrier: barrier_cycles,
        config: config_cycles,
        ii: report.stalls.ii,
        ctrl: report.stalls.ctrl,
    };
    SimTelemetry {
        cycles: report.cycles,
        config_cycles,
        barrier_cycles,
        region_group: tallies.iter().map(|t| t.group).collect(),
        region_tallies: tallies.to_vec(),
        group_cycles,
        pes,
        streams,
        taxonomy,
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate_group(
    adg: &Adg,
    kernel: &CompiledKernel,
    eval: &Evaluation,
    stream_mems: &BTreeMap<(usize, bool, usize), NodeId>,
    ctrl: &CtrlSpec,
    group: &[usize],
    cfg: &SimConfig,
    region_cycles: &mut [u64],
    firings: &mut [u64],
    active_cycles: &mut [u64],
    stalls: &mut StallBreakdown,
    tallies: &mut [RegionTally],
    stream_counters: &mut Vec<StreamCounters>,
) -> u64 {
    // Build per-region state.
    let mut regions: Vec<(usize, RegionState)> = group
        .iter()
        .map(|&ri| {
            (
                ri,
                region_state(adg, &kernel.regions[ri], eval.regions.get(ri), ri, stream_mems),
            )
        })
        .collect();

    // The control core issues every stream command up front, one at a time.
    let mut issue_cursor = 0u64;
    for (_, rs) in regions.iter_mut() {
        for s in rs.streams.iter_mut() {
            issue_cursor += u64::from(ctrl.command_issue_cycles);
            s.active_at = issue_cursor + MEM_LATENCY;
        }
    }

    let mut cycle = 0u64;
    while cycle < cfg.max_cycles {
        let all_done = regions.iter().all(|(_, r)| r.done_at.is_some());
        if all_done {
            break;
        }
        cycle += 1;

        // ---- memory arbitration: each memory serves one line request (or
        // a bank-parallel gather batch) per cycle, round-robin over the
        // streams bound to it.
        let mut mem_budget: HashMap<NodeId, f64> = HashMap::new();
        for (_, rs) in regions.iter_mut() {
            for s in rs.streams.iter_mut() {
                if s.remaining <= EPS || cycle < s.active_at {
                    continue;
                }
                let Some(mem) = s.mem else {
                    // Forwarded streams move without memory involvement,
                    // but writes can only drain what the fabric produced
                    // and reads only fill available FIFO space.
                    if !s.ctrl_fed {
                        let amount = s.remaining.min(s.elems_per_cycle).min(if s.is_read {
                            (s.fifo_cap - s.fifo).max(0.0)
                        } else {
                            s.fifo
                        });
                        if amount > 0.0 {
                            deliver(s, amount);
                        } else {
                            s.stalled += 1; // blocked on the fabric-side FIFO
                        }
                    }
                    continue;
                };
                let budget = mem_budget.entry(mem).or_insert(1.0);
                if *budget <= 0.0 {
                    stalls.memory += 1;
                    s.stalled += 1; // lost memory-port arbitration
                    continue;
                }
                let amount = s
                    .remaining
                    .min(s.elems_per_cycle)
                    .min(if s.is_read {
                        (s.fifo_cap - s.fifo).max(0.0)
                    } else {
                        s.fifo // writes drain what the fabric produced
                    });
                if amount > 0.0 {
                    *budget -= 1.0;
                    deliver(s, amount);
                } else {
                    s.stalled += 1; // port FIFO full (read) / empty (write)
                }
            }
        }

        // ---- control core: scalar fallback work feeds ControlCore
        // streams at the scalar rate (their `elems_per_cycle` was derived
        // from the region's total control work).
        for (_, rs) in regions.iter_mut() {
            for s in rs.streams.iter_mut() {
                if s.ctrl_fed && s.remaining > EPS && cycle >= s.active_at {
                    let amount = s.remaining.min(s.elems_per_cycle).min(if s.is_read {
                        (s.fifo_cap - s.fifo).max(0.0)
                    } else {
                        s.fifo
                    });
                    if amount > 0.0 {
                        deliver(s, amount);
                    } else {
                        stalls.ctrl += 1;
                        s.stalled += 1; // control core could not feed
                    }
                }
            }
        }

        // ---- fabric firing.
        for (ri, rs) in regions.iter_mut() {
            if rs.done_at.is_some() {
                continue;
            }
            if rs.firings_left <= 0.0 {
                // Drain: done once write streams are empty and the control
                // core has retired its scalar fallback work.
                // A write FIFO may hold a sub-element residue when the
                // rounded firing count slightly over-produces; tolerate it.
                let drained = rs
                    .streams
                    .iter()
                    .all(|s| s.is_read || (s.remaining <= EPS && s.fifo <= 0.01));
                if drained && cycle >= rs.ctrl_floor {
                    rs.done_at = Some(cycle);
                    region_cycles[*ri] = cycle;
                }
                continue;
            }
            if (cycle as f64) < rs.next_fire {
                stalls.ii += 1;
                rs.tally.ii += 1;
                continue;
            }
            // Operand availability & output space.
            let inputs_ready = rs
                .streams
                .iter()
                .filter(|s| s.is_read)
                .all(|s| s.fifo + 1e-9 >= s.firing_need());
            let outputs_ready = rs
                .streams
                .iter()
                .filter(|s| !s.is_read)
                .all(|s| s.fifo_cap - s.fifo + 1e-9 >= s.per_firing);
            if !inputs_ready {
                stalls.operands += 1;
                rs.tally.operands += 1;
                continue;
            }
            if !outputs_ready {
                stalls.backpressure += 1;
                rs.tally.backpressure += 1;
                continue;
            }
            // Fire one instance.
            for s in rs.streams.iter_mut() {
                if s.is_read {
                    let need = s.firing_need();
                    s.fifo = (s.fifo - need).max(0.0);
                } else {
                    s.fifo += s.per_firing;
                    if s.fifo > s.highwater {
                        s.highwater = s.fifo;
                    }
                }
            }
            rs.firings_left -= 1.0;
            rs.fired += 1;
            rs.tally.fired_cycles += 1;
            firings[*ri] += 1;
            active_cycles[*ri] += 1;
            rs.next_fire = cycle as f64 + rs.ii.max(rs.rec_gate);
        }
    }

    for (ri, rs) in &regions {
        if rs.done_at.is_none() {
            region_cycles[*ri] = cycle;
        }
    }

    // Harvest hardware counters.
    for (ri, rs) in regions {
        tallies[ri] = rs.tally;
        for (si, s) in rs.streams.into_iter().enumerate() {
            stream_counters.push(StreamCounters {
                region: ri,
                index: si,
                is_read: s.is_read,
                ctrl_fed: s.ctrl_fed,
                issued: s.issued,
                stalled: s.stalled,
                elems: s.moved,
                fifo_highwater: s.highwater,
                fifo_cap: s.fifo_cap,
            });
        }
    }
    cycle
}

impl StreamState {
    /// Elements a firing needs from this stream right now: the nominal
    /// per-firing amount, capped by what the stream can still supply (so a
    /// fractional final firing does not deadlock on residue).
    fn firing_need(&self) -> f64 {
        self.per_firing.min(self.fifo + self.remaining)
    }
}

fn deliver(s: &mut StreamState, amount: f64) {
    s.issued += 1;
    s.moved += amount;
    if s.is_read {
        s.fifo = (s.fifo + amount).min(s.fifo_cap);
        if s.fifo > s.highwater {
            s.highwater = s.fifo;
        }
    } else {
        s.fifo = (s.fifo - amount).max(0.0);
    }
    s.remaining -= amount;
    if s.remaining <= EPS {
        s.remaining = 0.0;
    }
    if s.fifo <= EPS {
        s.fifo = 0.0;
    }
    s.until_reissue -= amount;
    if s.until_reissue <= EPS && s.remaining > EPS {
        // Re-issue pause: the next command's latency applies. This is where
        // command-heavy patterns (many short streams) lose time that the
        // analytical model's max() formulation partially hides (§VIII-B:
        // the model "does not yet capture the performance impact of
        // excessive control instructions").
        s.until_reissue = s.per_command;
        s.active_at += MEM_LATENCY / 2;
    }
}

fn region_state(
    adg: &Adg,
    region: &CompiledRegion,
    eval: Option<&dsagen_scheduler::RegionEval>,
    ri: usize,
    stream_mems: &BTreeMap<(usize, bool, usize), NodeId>,
) -> RegionState {
    let instances = region.instances.max(1.0);
    let (ii, mismatch, rec_lats) = match eval {
        Some(e) => (e.max_ii, e.mismatch_excess, e.recurrence_latencies.clone()),
        None => (1.0, 0.0, vec![]),
    };
    let rec_gate = region
        .dfg
        .recurrences()
        .iter()
        .zip(rec_lats.iter().chain(std::iter::repeat(&1.0)))
        .map(|(rec, lat)| lat / rec.independent_chains.max(1.0))
        .fold(1.0, f64::max);

    let mut streams = Vec::new();
    for (is_input, s) in region
        .in_streams
        .iter()
        .map(|s| (true, s))
        .chain(region.out_streams.iter().map(|s| (false, s)))
    {
        if !s.to_fabric && is_input {
            // Index streams are folded into their memory's budget via the
            // data stream's per-element service; skip explicit state.
            continue;
        }
        let total = s.pattern.total_elems();
        let mem = stream_mems.get(&(ri, is_input, s.port)).copied();
        let ctrl_fed = matches!(s.source, StreamSource::ControlCore);
        let elems_per_cycle = match (&s.source, mem) {
            (StreamSource::ControlCore, _) => {
                // The core spreads its scalar work across the elements it
                // must feed: total elements / total scalar ops.
                (total / region.ctrl_ops.max(1.0)).clamp(1e-6, 1.0)
            }
            (StreamSource::Memory(_), Some(m)) => {
                if s.pattern.indirect || s.dir == StreamDir::AtomicUpdate {
                    indirect_rate(adg, m)
                } else if s.pattern.stride_bytes.unsigned_abs() as u32 == s.elem_bytes
                    || mem_coalesces(adg, m)
                {
                    64.0 / f64::from(s.elem_bytes) // one line per cycle
                } else if s.pattern.stride_bytes == 0 {
                    f64::from(s.lanes.max(1)) * 4.0
                } else {
                    // Strided: one lane-group request per cycle (the
                    // group's lanes are consecutive elements).
                    f64::from(s.lanes.max(1))
                }
            }
            _ => f64::from(s.lanes.max(1)) * 2.0,
        };
        streams.push(StreamState {
            remaining: total,
            fifo: 0.0,
            fifo_cap: (f64::from(s.lanes.max(1)) * 16.0).max(16.0),
            per_firing: total / instances,
            until_reissue: s.pattern.elems_per_command,
            per_command: s.pattern.elems_per_command,
            active_at: 0,
            mem: if matches!(s.source, StreamSource::Memory(_)) {
                mem
            } else {
                None
            },
            elems_per_cycle,
            is_read: is_input,
            ctrl_fed,
            issued: 0,
            stalled: 0,
            highwater: 0.0,
            moved: 0.0,
        });
    }

    RegionState {
        firings_left: instances.round(),
        next_fire: 0.0,
        ii: (ii + mismatch).max(1.0),
        rec_gate,
        fired: 0,
        done_at: None,
        streams,
        ctrl_floor: region.ctrl_ops.ceil() as u64,
        tally: RegionTally::default(),
    }
}

/// Refines the bank-parallel service rate for indirect streams using the
/// bound memory's actual bank count.
pub(crate) fn indirect_rate(adg: &Adg, mem: NodeId) -> f64 {
    match adg.kind(mem) {
        Ok(NodeKind::Memory(spec)) => f64::from(spec.banks.max(1)) * BANK_EFFICIENCY,
        _ => 1.0,
    }
}

/// Whether a memory's controller coalesces strided requests.
fn mem_coalesces(adg: &Adg, mem: NodeId) -> bool {
    matches!(adg.kind(mem), Ok(NodeKind::Memory(spec)) if spec.controllers.coalescing)
}

fn control_spec(adg: &Adg) -> CtrlSpec {
    adg.control()
        .and_then(|c| match adg.kind(c) {
            Ok(NodeKind::Control(spec)) => Some(*spec),
            _ => None,
        })
        .unwrap_or_default()
}
