//! Configuration-path generation (§VI "Config. Path Generation").
//!
//! The spatial architecture is configured by routing bitstream words along
//! one or more *configuration paths* that together cover every configurable
//! node; configuration time is dominated by the longest path. The paper's
//! approach — reproduced here — first grows multiple initial paths with a
//! spanning-tree-like pass, then iteratively cuts a node from the longest
//! path and reattaches it to a nearby shorter path until the maximum length
//! converges.
//!
//! The walker is written panic-free: every structural assumption that used
//! to be an `expect()` is now either locally impossible by construction
//! (and degrades to a safe fallback) or reported through
//! [`ConfigPathError`] by [`try_generate_config_paths`].

use std::collections::{HashMap, VecDeque};
use std::fmt;

use dsagen_adg::{Adg, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A set of configuration paths over an ADG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigPaths {
    /// Each path is a walk over adjacent nodes; nodes it *covers* (owns for
    /// configuration) may be fewer than its length when it passes through
    /// nodes another path covers.
    pub paths: Vec<Vec<NodeId>>,
}

impl ConfigPaths {
    /// Length (in hops/words) of the longest path — the configuration
    /// latency.
    #[must_use]
    pub fn longest(&self) -> usize {
        self.paths.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The ideal longest-path bound `⌈n/p⌉` for `n` nodes and `p` paths
    /// (§VIII-B: "for a network with n nodes, p paths, the longest path
    /// cannot be shorter than ⌈n/p⌉").
    #[must_use]
    pub fn ideal(nodes: usize, paths: usize) -> usize {
        nodes.div_ceil(paths.max(1))
    }

    /// Overhead of the generated paths versus the ideal bound.
    #[must_use]
    pub fn overhead(&self, nodes: usize) -> f64 {
        let ideal = Self::ideal(nodes, self.paths.len());
        self.longest() as f64 / ideal.max(1) as f64
    }

    /// Every covered node, across all paths (deduplicated).
    #[must_use]
    pub fn covered(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.paths.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        all
    }
}

/// Typed failure of configuration-path generation.
///
/// Only the strict entry point ([`try_generate_config_paths`]) surfaces
/// these; the lenient [`generate_config_paths`] degrades gracefully
/// instead (empty path set, or disconnected nodes appended off-walk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigPathError {
    /// The ADG has no configurable nodes at all — nothing to cover.
    NoConfigurableNodes,
    /// A configurable node cannot be reached through the configurable
    /// subgraph: the walker had to teleport to place it, so the delivery
    /// network cannot actually program it.
    DisconnectedNode {
        /// The unreachable node.
        node: NodeId,
    },
}

impl fmt::Display for ConfigPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoConfigurableNodes => {
                write!(f, "config-path: ADG has no configurable nodes")
            }
            Self::DisconnectedNode { node } => write!(
                f,
                "config-path: node {node} is unreachable through the configurable subgraph"
            ),
        }
    }
}

impl std::error::Error for ConfigPathError {}

/// Undirected adjacency over the configurable nodes of `adg`.
fn adjacency(adg: &Adg) -> HashMap<NodeId, Vec<NodeId>> {
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let configurable = |id: NodeId| {
        adg.kind(id)
            .map(|k| k.is_configurable())
            .unwrap_or(false)
    };
    for node in adg.nodes() {
        if configurable(node.id()) {
            adj.entry(node.id()).or_default();
        }
    }
    for edge in adg.edges() {
        if configurable(edge.src) && configurable(edge.dst) {
            adj.entry(edge.src).or_default().push(edge.dst);
            adj.entry(edge.dst).or_default().push(edge.src);
        }
    }
    for list in adj.values_mut() {
        list.sort();
        list.dedup();
    }
    adj
}

/// BFS distances within the configurable subgraph.
fn bfs(adj: &HashMap<NodeId, Vec<NodeId>>, from: NodeId) -> HashMap<NodeId, u32> {
    let mut dist = HashMap::new();
    dist.insert(from, 0u32);
    let mut q = VecDeque::from([from]);
    while let Some(n) = q.pop_front() {
        let d = dist.get(&n).copied().unwrap_or(0);
        for m in adj.get(&n).into_iter().flatten() {
            if !dist.contains_key(m) {
                dist.insert(*m, d + 1);
                q.push_back(*m);
            }
        }
    }
    dist
}

/// Shortest hop path between two nodes in the configurable subgraph
/// (inclusive of both endpoints).
fn shortest_walk(
    adj: &HashMap<NodeId, Vec<NodeId>>,
    from: NodeId,
    to: NodeId,
) -> Option<Vec<NodeId>> {
    let mut pred: HashMap<NodeId, NodeId> = HashMap::new();
    let mut q = VecDeque::from([from]);
    pred.insert(from, from);
    while let Some(n) = q.pop_front() {
        if n == to {
            break;
        }
        for m in adj.get(&n).into_iter().flatten() {
            if !pred.contains_key(m) {
                pred.insert(*m, n);
                q.push_back(*m);
            }
        }
    }
    if !pred.contains_key(&to) {
        return None;
    }
    let mut walk = vec![to];
    let mut cur = to;
    while cur != from {
        let Some(&prev) = pred.get(&cur) else {
            // Unreachable: every queued node has a predecessor entry. Bail
            // out rather than loop forever.
            return None;
        };
        cur = prev;
        walk.push(cur);
    }
    walk.reverse();
    Some(walk)
}

/// Generates `p` configuration paths covering every configurable node.
///
/// Deterministic for a given `seed`. Lenient: an ADG with no configurable
/// nodes yields an empty path set, and nodes disconnected from the
/// configurable subgraph are still placed (appended off-walk) so coverage
/// is total. Use [`try_generate_config_paths`] to surface those conditions
/// as typed errors instead.
#[must_use]
pub fn generate_config_paths(adg: &Adg, p: usize, seed: u64) -> ConfigPaths {
    generate_with_report(adg, p, seed).0
}

/// Strict variant of [`generate_config_paths`]: identical paths on
/// success, but an ADG without configurable nodes or with a configurable
/// node unreachable through the configurable subgraph is a typed
/// [`ConfigPathError`] instead of a silent degradation.
pub fn try_generate_config_paths(
    adg: &Adg,
    p: usize,
    seed: u64,
) -> Result<ConfigPaths, ConfigPathError> {
    let (paths, disconnected) = generate_with_report(adg, p, seed);
    if paths.paths.is_empty() {
        return Err(ConfigPathError::NoConfigurableNodes);
    }
    if let Some(&node) = disconnected.first() {
        return Err(ConfigPathError::DisconnectedNode { node });
    }
    Ok(paths)
}

/// Shared generator: returns the paths plus every node that had to be
/// placed without a connecting walk (disconnected from the configurable
/// subgraph).
fn generate_with_report(adg: &Adg, p: usize, seed: u64) -> (ConfigPaths, Vec<NodeId>) {
    let adj = adjacency(adg);
    let mut nodes: Vec<NodeId> = adj.keys().copied().collect();
    nodes.sort();
    let Some(&first_node) = nodes.first() else {
        return (ConfigPaths { paths: Vec::new() }, Vec::new());
    };
    let p = p.clamp(1, nodes.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut disconnected: Vec<NodeId> = Vec::new();

    // --- seeds: spread by farthest-point heuristic.
    let mut seeds = vec![first_node];
    while seeds.len() < p {
        let mut best = None;
        let mut best_d = 0u32;
        let dists: Vec<HashMap<NodeId, u32>> = seeds.iter().map(|s| bfs(&adj, *s)).collect();
        for n in &nodes {
            if seeds.contains(n) {
                continue;
            }
            let d = dists
                .iter()
                .map(|dm| dm.get(n).copied().unwrap_or(0))
                .min()
                .unwrap_or(0);
            if d >= best_d {
                best_d = d;
                best = Some(*n);
            }
        }
        match best {
            Some(n) => seeds.push(n),
            None => break,
        }
    }

    // --- cluster: each node joins its nearest seed ("spanning-tree like").
    let seed_dists: Vec<HashMap<NodeId, u32>> = seeds.iter().map(|s| bfs(&adj, *s)).collect();
    let mut clusters: Vec<Vec<NodeId>> = vec![Vec::new(); seeds.len()];
    for n in &nodes {
        // `seeds` is nonempty, so the min always exists; fall back to the
        // first cluster rather than panicking if it somehow did not.
        let best = seed_dists
            .iter()
            .enumerate()
            .map(|(i, dm)| (i, dm.get(n).copied().unwrap_or(u32::MAX)))
            .min_by_key(|(_, d)| *d)
            .map_or(0, |(i, _)| i);
        if let Some(cluster) = clusters.get_mut(best) {
            cluster.push(*n);
        }
    }

    // --- route each cluster with a nearest-neighbor walk (revisits allowed
    // through shortest connecting walks).
    let mut paths: Vec<Vec<NodeId>> = clusters
        .iter()
        .map(|cluster| walk_cluster(&adj, cluster, &mut rng, &mut disconnected))
        .collect();

    prune(&mut paths);

    // --- improvement: cut a node from the longest path, attach it to a
    // nearby shorter path (§VI), until converged.
    for _ in 0..4 * nodes.len() {
        prune(&mut paths);
        let longest = match paths
            .iter()
            .enumerate()
            .max_by_key(|(_, path)| path.len())
        {
            Some((i, path)) if path.len() > 1 => i,
            _ => break,
        };
        let before = paths[longest].len();
        // Candidate node to cut: an endpoint of the longest path that is
        // not a pass-through for coverage.
        let Some(&victim) = paths[longest].last() else {
            break;
        };
        // Find the shorter path with the cheapest attachment.
        let mut best: Option<(usize, usize)> = None; // (path, new length)
        for (pi, path) in paths.iter().enumerate() {
            if pi == longest || path.len() + 1 >= before {
                continue;
            }
            let Some(&tail) = path.last() else { continue };
            if let Some(w) = shortest_walk(&adj, tail, victim) {
                let new_len = path.len() + w.len() - 1;
                if new_len < before && best.is_none_or(|(_, l)| new_len < l) {
                    best = Some((pi, new_len));
                }
            }
        }
        let Some((target, _)) = best else { break };
        // Commit: remove the victim from the longest path (and any trailing
        // pass-through nodes that were only there to reach it), append the
        // connecting walk to the target path.
        paths[longest].pop();
        let Some(&tail) = paths[target].last() else { break };
        let Some(walk) = shortest_walk(&adj, tail, victim) else {
            // The attachment was validated a moment ago; if it vanished,
            // restore the victim and stop improving rather than panic.
            paths[longest].push(victim);
            break;
        };
        paths[target].extend_from_slice(&walk[1..]);
    }

    // Safety: guarantee coverage (anything lost re-appends to the shortest
    // path).
    let covered: std::collections::HashSet<NodeId> =
        paths.iter().flatten().copied().collect();
    for n in &nodes {
        if !covered.contains(n) {
            let Some(shortest) = paths.iter_mut().min_by_key(|p| p.len()) else {
                break; // p >= 1 paths by construction
            };
            match shortest.last().copied() {
                Some(tail) => {
                    if let Some(w) = shortest_walk(&adj, tail, *n) {
                        shortest.extend_from_slice(&w[1..]);
                    } else {
                        disconnected.push(*n);
                        shortest.push(*n);
                    }
                }
                None => shortest.push(*n),
            }
        }
    }

    disconnected.sort();
    disconnected.dedup();
    (ConfigPaths { paths }, disconnected)
}

/// Removes redundant path endpoints: a trailing or leading node that is
/// already covered elsewhere (another path, or earlier in the same path)
/// adds length without adding coverage.
fn prune(paths: &mut [Vec<NodeId>]) {
    use std::collections::HashMap;
    // Global coverage counts.
    let mut count: HashMap<NodeId, u32> = HashMap::new();
    for p in paths.iter() {
        for n in p {
            *count.entry(*n).or_insert(0) += 1;
        }
    }
    for p in paths.iter_mut() {
        loop {
            let mut trimmed = false;
            if p.len() > 1 {
                if let Some(&last) = p.last() {
                    if count.get(&last).copied().unwrap_or(0) > 1 {
                        p.pop();
                        if let Some(c) = count.get_mut(&last) {
                            *c -= 1;
                        }
                        trimmed = true;
                    }
                }
            }
            if p.len() > 1 {
                let first = p[0];
                if count.get(&first).copied().unwrap_or(0) > 1 {
                    p.remove(0);
                    if let Some(c) = count.get_mut(&first) {
                        *c -= 1;
                    }
                    trimmed = true;
                }
            }
            if !trimmed {
                break;
            }
        }
    }
}

/// Nearest-neighbor walk covering every node of `cluster`. Nodes that
/// cannot be reached through the configurable subgraph are still placed
/// (appended off-walk) and recorded in `disconnected`.
fn walk_cluster(
    adj: &HashMap<NodeId, Vec<NodeId>>,
    cluster: &[NodeId],
    rng: &mut StdRng,
    disconnected: &mut Vec<NodeId>,
) -> Vec<NodeId> {
    if cluster.is_empty() {
        return Vec::new();
    }
    let mut remaining: Vec<NodeId> = cluster.to_vec();
    remaining.shuffle(rng);
    let Some(start) = remaining.pop() else {
        return Vec::new();
    };
    let mut path = vec![start];
    while !remaining.is_empty() {
        let Some(&cur) = path.last() else { break };
        let dist = bfs(adj, cur);
        // Nearest remaining node.
        let Some((idx, _)) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| dist.get(n).copied().unwrap_or(u32::MAX))
        else {
            break;
        };
        let next = remaining.swap_remove(idx);
        match shortest_walk(adj, cur, next) {
            Some(w) => path.extend_from_slice(&w[1..]),
            None => {
                // Disconnected; charged but placed.
                disconnected.push(next);
                path.push(next);
            }
        }
        // Anything passed through is covered for free.
        remaining.retain(|n| !path.contains(n));
    }
    path
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, OpSet, PeSpec, Scheduling, Sharing, SwitchSpec};

    use super::*;

    #[test]
    fn covers_every_configurable_node() {
        let adg = presets::softbrain();
        let configurable = adg
            .nodes()
            .filter(|n| n.kind.is_configurable())
            .count();
        for p in [1, 3, 6, 9] {
            let cp = generate_config_paths(&adg, p, 7);
            assert_eq!(
                cp.covered().len(),
                configurable,
                "p={p}: coverage incomplete"
            );
        }
    }

    #[test]
    fn more_paths_shorter_longest() {
        let adg = presets::softbrain();
        let one = generate_config_paths(&adg, 1, 7).longest();
        let nine = generate_config_paths(&adg, 9, 7).longest();
        assert!(nine < one, "1 path {one} vs 9 paths {nine}");
    }

    #[test]
    fn overhead_is_modest_on_meshes() {
        // Fig 13: mean ~1.4× over the ⌈n/p⌉ ideal.
        let adg = presets::softbrain();
        let n = adg.nodes().filter(|x| x.kind.is_configurable()).count();
        for p in [3usize, 6, 9] {
            let cp = generate_config_paths(&adg, p, 7);
            let over = cp.overhead(n);
            assert!(over >= 1.0);
            assert!(over < 2.5, "p={p} overhead {over}");
        }
    }

    #[test]
    fn paths_are_contiguous_walks() {
        let adg = presets::spu();
        let adj = adjacency(&adg);
        let cp = generate_config_paths(&adg, 4, 3);
        for path in &cp.paths {
            for pair in path.windows(2) {
                assert!(
                    adj[&pair[0]].contains(&pair[1]),
                    "{} !~ {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let adg = presets::revel();
        assert_eq!(
            generate_config_paths(&adg, 3, 11),
            generate_config_paths(&adg, 3, 11)
        );
    }

    #[test]
    fn strict_variant_agrees_with_lenient_on_connected_fabrics() {
        let adg = presets::softbrain();
        let strict = try_generate_config_paths(&adg, 4, 9).expect("connected mesh");
        assert_eq!(strict, generate_config_paths(&adg, 4, 9));
    }

    #[test]
    fn strict_variant_rejects_empty_fabric() {
        let adg = dsagen_adg::Adg::new("empty");
        assert_eq!(
            try_generate_config_paths(&adg, 2, 0),
            Err(ConfigPathError::NoConfigurableNodes)
        );
        // Lenient variant degrades to an empty path set.
        assert!(generate_config_paths(&adg, 2, 0).paths.is_empty());
    }

    #[test]
    fn strict_variant_reports_disconnected_nodes() {
        // Two PEs with no link between them: whichever is walked second is
        // unreachable through the configurable subgraph.
        let mut adg = dsagen_adg::Adg::new("split");
        let a = adg.add_pe(PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        let b = adg.add_pe(PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        match try_generate_config_paths(&adg, 1, 0) {
            Err(ConfigPathError::DisconnectedNode { node }) => {
                assert!(node == a || node == b);
            }
            other => panic!("expected DisconnectedNode, got {other:?}"),
        }
        // Lenient variant still covers both.
        assert_eq!(generate_config_paths(&adg, 1, 0).covered().len(), 2);
    }

    #[test]
    fn single_component_graph() {
        let mut adg = dsagen_adg::Adg::new("tiny");
        let pe = adg.add_pe(PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        let sw = adg.add_switch(SwitchSpec::new(dsagen_adg::BitWidth::B64));
        adg.add_link(sw, pe).unwrap();
        let cp = generate_config_paths(&adg, 2, 0);
        assert_eq!(cp.covered().len(), 2);
    }
}
