//! CRC-guarded configuration-path delivery (§VI, hardened).
//!
//! The raw bitstream is a bare sequence of 64-bit words; anything flipped,
//! dropped, duplicated, or reordered between the encoder and the fabric
//! silently misconfigures the accelerator. This module wraps every word in
//! a **frame** — payload word + sequence number + CRC32 — and drives
//! delivery through a [`ProgrammingSession`] state machine
//! (`Idle → Streaming → Verified | Failed`) with bounded retransmission:
//!
//! * any single-bit flip anywhere in a frame (payload, sequence field, or
//!   the CRC itself) is *detected*, never silently accepted;
//! * corrupted or missing frames are selectively retransmitted with an
//!   exponential backoff charge, up to [`SessionConfig::max_retries`];
//! * frames carry their word index as the sequence number, so duplicated
//!   and reordered frames are idempotently re-slotted;
//! * when the retry budget runs out the session degrades gracefully: it
//!   reports exactly which components are unreachable (via
//!   [`Bitstream::word_owners`]) instead of aborting.
//!
//! The CRC polynomial is the reflected IEEE 802.3 polynomial
//! `0xEDB88320`, computed over the 4 sequence bytes followed by the 8
//! payload bytes (little-endian).

use std::fmt;

use dsagen_adg::NodeId;

use crate::bitstream::{Bitstream, BitstreamError};

/// Reflected IEEE 802.3 CRC32 polynomial.
pub const CRC32_POLY: u32 = 0xEDB8_8320;

/// Byte-indexed CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (reflected IEEE 802.3) over a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// CRC over one frame's guarded content: sequence field then payload.
fn frame_crc(seq: u32, payload: u64) -> u32 {
    let mut bytes = [0u8; 12];
    bytes[..4].copy_from_slice(&seq.to_le_bytes());
    bytes[4..].copy_from_slice(&payload.to_le_bytes());
    crc32(&bytes)
}

/// Number of transport words per frame (payload word + guard word).
pub const FRAME_WORDS: usize = 2;

/// One config-path delivery unit: a payload word guarded by a sequence
/// number and a CRC32 over both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Word index within the bitstream this frame delivers.
    pub seq: u32,
    /// The configuration word.
    pub payload: u64,
}

impl Frame {
    /// Builds the frame for word `seq` of a stream.
    #[must_use]
    pub fn new(seq: u32, payload: u64) -> Self {
        Frame { seq, payload }
    }

    /// Serializes to two transport words: `[payload, seq<<32 | crc]`.
    #[must_use]
    pub fn pack(&self) -> [u64; 2] {
        let crc = frame_crc(self.seq, self.payload);
        [
            self.payload,
            (u64::from(self.seq) << 32) | u64::from(crc),
        ]
    }

    /// Parses and CRC-checks two transport words.
    ///
    /// # Errors
    ///
    /// [`FrameError::CrcMismatch`] when the stored CRC disagrees with the
    /// recomputed one — any single-bit flip in either word lands here.
    pub fn unpack(words: [u64; 2]) -> Result<Frame, FrameError> {
        let payload = words[0];
        let seq = (words[1] >> 32) as u32;
        let stored = words[1] as u32;
        let computed = frame_crc(seq, payload);
        if stored != computed {
            return Err(FrameError::CrcMismatch {
                seq,
                expected: computed,
                got: stored,
            });
        }
        Ok(Frame { seq, payload })
    }
}

/// Why a framed stream failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The stream length is not a whole number of frames.
    Truncated {
        /// Transport words present.
        words: usize,
    },
    /// A frame's CRC did not match its content.
    CrcMismatch {
        /// Sequence field as received (possibly itself corrupted).
        seq: u32,
        /// CRC recomputed from the received content.
        expected: u32,
        /// CRC stored in the frame.
        got: u32,
    },
    /// The same sequence number arrived twice with different payloads.
    ConflictingDuplicate {
        /// The duplicated sequence number.
        seq: u32,
    },
    /// A sequence number outside the expected stream.
    SeqOutOfRange {
        /// The out-of-range sequence number.
        seq: u32,
        /// Number of words the stream announces.
        expected: usize,
    },
    /// Frames are missing after reassembly.
    MissingFrames {
        /// Distinct sequence numbers received.
        got: usize,
        /// Sequence numbers expected.
        expected: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { words } => {
                write!(f, "framed stream truncated: {words} transport words is not a whole number of frames")
            }
            FrameError::CrcMismatch { seq, expected, got } => write!(
                f,
                "frame {seq}: CRC mismatch (computed {expected:#010x}, stored {got:#010x})"
            ),
            FrameError::ConflictingDuplicate { seq } => {
                write!(f, "frame {seq}: duplicate with conflicting payload")
            }
            FrameError::SeqOutOfRange { seq, expected } => {
                write!(f, "frame {seq}: sequence out of range (stream has {expected} words)")
            }
            FrameError::MissingFrames { got, expected } => {
                write!(f, "reassembly incomplete: {got} of {expected} frames")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps every word of `words` into a CRC-guarded frame, in order.
#[must_use]
pub fn frame_words(words: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(words.len() * FRAME_WORDS);
    for (i, w) in words.iter().enumerate() {
        out.extend_from_slice(&Frame::new(i as u32, *w).pack());
    }
    out
}

/// Strictly validates and unwraps a framed stream of `expected` payload
/// words: every frame must CRC-check, sequence numbers must cover
/// `0..expected` exactly (duplicates allowed only when byte-identical).
///
/// # Errors
///
/// The first [`FrameError`] encountered; a single-bit flip anywhere in
/// the stream is guaranteed to surface as one.
pub fn deframe_words(framed: &[u64], expected: usize) -> Result<Vec<u64>, FrameError> {
    if !framed.len().is_multiple_of(FRAME_WORDS) {
        return Err(FrameError::Truncated {
            words: framed.len(),
        });
    }
    let mut slots: Vec<Option<u64>> = vec![None; expected];
    let mut got = 0usize;
    for chunk in framed.chunks_exact(FRAME_WORDS) {
        let frame = Frame::unpack([chunk[0], chunk[1]])?;
        let seq = frame.seq as usize;
        if seq >= expected {
            return Err(FrameError::SeqOutOfRange {
                seq: frame.seq,
                expected,
            });
        }
        match slots[seq] {
            None => {
                slots[seq] = Some(frame.payload);
                got += 1;
            }
            Some(prev) if prev == frame.payload => {} // idempotent duplicate
            Some(_) => {
                return Err(FrameError::ConflictingDuplicate { seq: frame.seq });
            }
        }
    }
    if got != expected {
        return Err(FrameError::MissingFrames { got, expected });
    }
    Ok(slots.into_iter().flatten().collect())
}

/// Why a byte-chunk stream (see [`frame_chunk`]) failed validation.
///
/// The word-frame [`FrameError`] speaks in transport words; persistent
/// records are byte streams, so their framing errors carry byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChunkError {
    /// The buffer ends before the chunk it announces (a torn or truncated
    /// write — the header promised more bytes than the medium holds).
    Truncated {
        /// Byte offset of the chunk whose body is missing.
        offset: usize,
        /// Bytes the header announced.
        want: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A chunk's CRC32 disagrees with its payload (bit rot, torn tail).
    CrcMismatch {
        /// Byte offset of the offending chunk.
        offset: usize,
        /// CRC recomputed from the payload.
        expected: u32,
        /// CRC stored in the header.
        got: u32,
    },
    /// A chunk header announces an implausible length (corrupt header).
    OversizedChunk {
        /// Byte offset of the chunk.
        offset: usize,
        /// The announced length.
        len: usize,
    },
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Truncated { offset, want, have } => write!(
                f,
                "chunk at byte {offset} truncated: header announces {want} bytes, {have} present"
            ),
            ChunkError::CrcMismatch {
                offset,
                expected,
                got,
            } => write!(
                f,
                "chunk at byte {offset}: CRC mismatch (computed {expected:#010x}, stored {got:#010x})"
            ),
            ChunkError::OversizedChunk { offset, len } => {
                write!(f, "chunk at byte {offset}: implausible length {len}")
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// Upper bound on a single chunk's payload. Persistent records are small
/// (schedules + config words); anything past this is a corrupt header,
/// not a real chunk — rejecting it keeps a flipped length bit from
/// allocating gigabytes.
pub const MAX_CHUNK_LEN: usize = 1 << 24;

/// Frames one byte chunk for persistent storage:
/// `[len: u32 LE][crc32(payload): u32 LE][payload]`. The same CRC32
/// discipline the config-path transport uses ([`crc32`], reflected IEEE
/// 802.3), applied to byte records — the artifact store's record format
/// is a sequence of these.
#[must_use]
pub fn frame_chunk(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses and CRC-checks the chunk at the front of `buf` (whose position
/// within the whole record is `offset`, for error reporting), returning
/// `(payload, rest)`.
///
/// # Errors
///
/// A typed [`ChunkError`] on truncation, CRC mismatch, or an implausible
/// header — never a panic, whatever the bytes.
pub fn unframe_chunk(buf: &[u8], offset: usize) -> Result<(&[u8], &[u8]), ChunkError> {
    if buf.len() < 8 {
        return Err(ChunkError::Truncated {
            offset,
            want: 8,
            have: buf.len(),
        });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_CHUNK_LEN {
        return Err(ChunkError::OversizedChunk { offset, len });
    }
    let stored = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let body = &buf[8..];
    if body.len() < len {
        return Err(ChunkError::Truncated {
            offset,
            want: len,
            have: body.len(),
        });
    }
    let (payload, rest) = body.split_at(len);
    let computed = crc32(payload);
    if computed != stored {
        return Err(ChunkError::CrcMismatch {
            offset,
            expected: computed,
            got: stored,
        });
    }
    Ok((payload, rest))
}

/// Programming-session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Created, nothing transmitted yet.
    Idle,
    /// Frames in flight (also the state of an aborted mid-stream session).
    Streaming,
    /// Every word delivered, CRC-clean, and the reassembled stream decodes
    /// back to the encoder's exact configuration.
    Verified,
    /// Delivery or verification failed after the retry budget; see
    /// [`SessionReport::unreachable_nodes`] and [`SessionReport::error`].
    Failed,
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionState::Idle => "idle",
            SessionState::Streaming => "streaming",
            SessionState::Verified => "verified",
            SessionState::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// Retry/backoff tunables for a [`ProgrammingSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Retransmission rounds after the initial attempt.
    pub max_retries: u32,
    /// Backoff charge (cycles) before retry `r` is `backoff_base << r`.
    pub backoff_base: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_retries: 3,
            backoff_base: 4,
        }
    }
}

/// Why a completed session ended [`SessionState::Failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// Some words never arrived intact within the retry budget.
    Undelivered {
        /// Words still missing after the final retry.
        missing_words: usize,
    },
    /// All words arrived, but the reassembled stream does not decode back
    /// to the encoder's configuration (multi-bit corruption that collided
    /// past the CRC, or an encoder/decoder bug).
    VerificationFailed(BitstreamError),
    /// The reassembled stream decodes, but to a *different* configuration.
    ConfigDiverged,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Undelivered { missing_words } => {
                write!(f, "{missing_words} words undelivered after retry budget")
            }
            SessionError::VerificationFailed(e) => {
                write!(f, "delivered stream failed to decode: {e}")
            }
            SessionError::ConfigDiverged => {
                write!(f, "delivered stream decodes to a different configuration")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// The structured outcome of one programming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Final state ([`SessionState::Verified`] or [`SessionState::Failed`]).
    pub state: SessionState,
    /// Transmission rounds executed (1 = no retries needed).
    pub attempts: u32,
    /// Total frames put on the wire across all rounds.
    pub frames_sent: u64,
    /// Frames rejected by the CRC check.
    pub crc_failures: u64,
    /// Frames rejected for sequence violations (out-of-range, conflicting
    /// duplicate) or stream truncation.
    pub seq_violations: u64,
    /// Duplicated frames accepted idempotently.
    pub duplicates: u64,
    /// Total backoff cycles charged before retransmissions.
    pub backoff_cycles: u64,
    /// Components whose every word arrived intact (acknowledged).
    pub acked_nodes: Vec<NodeId>,
    /// Components still owed at least one word when the budget ran out.
    pub unreachable_nodes: Vec<NodeId>,
    /// The typed failure, when `state == Failed`.
    pub error: Option<SessionError>,
}

impl SessionReport {
    /// Whether the session delivered and verified everything.
    #[must_use]
    pub fn is_verified(&self) -> bool {
        self.state == SessionState::Verified
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} attempts, {} frames sent, {} crc failures, {} seq violations, {} backoff cycles, {} acked, {} unreachable",
            self.state,
            self.attempts,
            self.frames_sent,
            self.crc_failures,
            self.seq_violations,
            self.backoff_cycles,
            self.acked_nodes.len(),
            self.unreachable_nodes.len(),
        )?;
        if let Some(e) = &self.error {
            write!(f, " ({e})")?;
        }
        Ok(())
    }
}

/// Drives CRC-framed delivery of one bitstream over a (possibly lossy)
/// channel, with selective retransmission and per-node acknowledgment.
///
/// The channel is any `FnMut(attempt, &[u64]) -> Vec<u64>`: it receives
/// the framed transport words for one transmission round and returns what
/// the far end observed — corrupted, truncated, duplicated, reordered, or
/// intact. Determinstic fault injectors from `dsagen-faults` slot in
/// directly.
#[derive(Debug, Clone)]
pub struct ProgrammingSession {
    words: Vec<u64>,
    owners: Vec<NodeId>,
    cfg: SessionConfig,
    state: SessionState,
}

impl ProgrammingSession {
    /// Prepares a session for `bitstream` (state [`SessionState::Idle`]).
    #[must_use]
    pub fn new(bitstream: &Bitstream, cfg: SessionConfig) -> Self {
        ProgrammingSession {
            words: bitstream.to_words(),
            owners: bitstream.word_owners(),
            cfg,
            state: SessionState::Idle,
        }
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The words this session delivers.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Runs the session to completion over `channel`, never panicking:
    /// streams every word as a CRC32 frame, selectively retransmits
    /// corrupted/missing frames with exponential backoff up to the retry
    /// budget, then verifies the reassembled stream decodes back to the
    /// original configuration.
    pub fn program(
        &mut self,
        mut channel: impl FnMut(u32, &[u64]) -> Vec<u64>,
    ) -> SessionReport {
        let n = self.words.len();
        let mut received: Vec<Option<u64>> = vec![None; n];
        let mut attempts = 0u32;
        let mut frames_sent = 0u64;
        let mut crc_failures = 0u64;
        let mut seq_violations = 0u64;
        let mut duplicates = 0u64;
        let mut backoff_cycles = 0u64;

        self.state = SessionState::Streaming;
        for round in 0..=self.cfg.max_retries {
            let pending: Vec<u32> = (0..n as u32)
                .filter(|&i| received[i as usize].is_none())
                .collect();
            if pending.is_empty() {
                break;
            }
            if round > 0 {
                backoff_cycles += u64::from(self.cfg.backoff_base) << (round - 1).min(31);
            }
            attempts += 1;
            let mut framed = Vec::with_capacity(pending.len() * FRAME_WORDS);
            for &seq in &pending {
                framed.extend_from_slice(&Frame::new(seq, self.words[seq as usize]).pack());
            }
            frames_sent += pending.len() as u64;

            let observed = channel(round, &framed);
            if !observed.len().is_multiple_of(FRAME_WORDS) {
                // A truncated tail loses at most one frame; everything
                // before the cut still validates.
                seq_violations += 1;
            }
            for chunk in observed.chunks_exact(FRAME_WORDS) {
                match Frame::unpack([chunk[0], chunk[1]]) {
                    Ok(frame) => {
                        let seq = frame.seq as usize;
                        if seq >= n {
                            seq_violations += 1;
                            continue;
                        }
                        match received[seq] {
                            None => received[seq] = Some(frame.payload),
                            Some(prev) if prev == frame.payload => duplicates += 1,
                            Some(_) => {
                                // Conflicting CRC-clean duplicate: distrust
                                // both copies and re-request the word.
                                seq_violations += 1;
                                received[seq] = None;
                            }
                        }
                    }
                    Err(_) => crc_failures += 1,
                }
            }
        }

        let missing: Vec<usize> = (0..n).filter(|&i| received[i].is_none()).collect();
        let mut unreachable: Vec<NodeId> = missing
            .iter()
            .filter_map(|&i| self.owners.get(i).copied())
            .collect();
        unreachable.sort();
        unreachable.dedup();
        let mut acked: Vec<NodeId> = self
            .owners
            .iter()
            .copied()
            .filter(|o| !unreachable.contains(o))
            .collect();
        acked.sort();
        acked.dedup();

        let (state, error) = if missing.is_empty() {
            let delivered: Vec<u64> = received.into_iter().flatten().collect();
            if delivered == self.words {
                (SessionState::Verified, None)
            } else {
                match Bitstream::from_words(&delivered) {
                    Ok(_) => (SessionState::Failed, Some(SessionError::ConfigDiverged)),
                    Err(e) => (
                        SessionState::Failed,
                        Some(SessionError::VerificationFailed(e)),
                    ),
                }
            }
        } else {
            (
                SessionState::Failed,
                Some(SessionError::Undelivered {
                    missing_words: missing.len(),
                }),
            )
        };
        self.state = state;
        SessionReport {
            state,
            attempts,
            frames_sent,
            crc_failures,
            seq_violations,
            duplicates,
            backoff_cycles,
            acked_nodes: acked,
            unreachable_nodes: unreachable,
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_scheduler::{schedule, Problem, SchedulerConfig};

    use super::*;

    fn bitstream() -> Bitstream {
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let m = r.bin(Opcode::Mul, va, vb);
        let s = r.bin(Opcode::Add, m, vb);
        r.store(b, AffineExpr::var(i), s);
        k.finish_region(r);
        let kernel = k.build().expect("fixture kernel builds");
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .expect("fixture compiles");
        let res = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(res.is_legal());
        Bitstream::encode(&Problem::new(&adg, &ck), &res.schedule)
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip() {
        let words = bitstream().to_words();
        let framed = frame_words(&words);
        assert_eq!(framed.len(), words.len() * FRAME_WORDS);
        let back = deframe_words(&framed, words.len()).expect("clean stream deframes");
        assert_eq!(back, words);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let words = bitstream().to_words();
        let framed = frame_words(&words);
        // Exhaustive over a whole frame, sampled across the stream.
        for word_idx in [0usize, 1, framed.len() / 2, framed.len() - 2, framed.len() - 1] {
            for bit in 0..64 {
                let mut corrupted = framed.clone();
                corrupted[word_idx] ^= 1u64 << bit;
                let res = deframe_words(&corrupted, words.len());
                assert!(
                    res.is_err(),
                    "flip word {word_idx} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn session_verifies_on_a_clean_channel() {
        let bs = bitstream();
        let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
        assert_eq!(session.state(), SessionState::Idle);
        let report = session.program(|_, frames| frames.to_vec());
        assert!(report.is_verified(), "{report}");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.crc_failures, 0);
        assert!(report.unreachable_nodes.is_empty());
        assert_eq!(report.acked_nodes.len(), bs.configs.len());
        assert_eq!(session.state(), SessionState::Verified);
    }

    #[test]
    fn corrupted_frame_is_retried_with_backoff() {
        let bs = bitstream();
        let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
        let report = session.program(|round, frames| {
            let mut out = frames.to_vec();
            if round == 0 {
                out[0] ^= 1 << 17; // one flipped bit on the first attempt
            }
            out
        });
        assert!(report.is_verified(), "{report}");
        assert_eq!(report.attempts, 2);
        assert_eq!(report.crc_failures, 1);
        assert!(report.backoff_cycles > 0);
        assert!(report.unreachable_nodes.is_empty());
    }

    #[test]
    fn hostile_channel_degrades_gracefully() {
        let bs = bitstream();
        let cfg = SessionConfig {
            max_retries: 2,
            backoff_base: 4,
        };
        let mut session = ProgrammingSession::new(&bs, cfg);
        // The first frame is corrupted on *every* attempt: its word can
        // never be delivered, and the owning node must be reported.
        let report = session.program(|_, frames| {
            let mut out = frames.to_vec();
            out[1] ^= 1; // CRC word of the first pending frame
            out
        });
        assert_eq!(report.state, SessionState::Failed);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.crc_failures, 3);
        assert_eq!(report.unreachable_nodes.len(), 1);
        assert!(matches!(
            report.error,
            Some(SessionError::Undelivered { missing_words: 1 })
        ));
        // Everything else was still delivered — graceful degradation.
        assert_eq!(report.acked_nodes.len(), bs.configs.len() - 1);
    }

    #[test]
    fn reordered_and_duplicated_frames_are_idempotent() {
        let bs = bitstream();
        let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
        let report = session.program(|_, frames| {
            let mut out = frames.to_vec();
            // Swap the first two frames and duplicate the last one.
            out.swap(0, FRAME_WORDS);
            out.swap(1, FRAME_WORDS + 1);
            let tail: Vec<u64> = out[out.len() - FRAME_WORDS..].to_vec();
            out.extend_from_slice(&tail);
            out
        });
        assert!(report.is_verified(), "{report}");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.duplicates, 1);
    }

    #[test]
    fn truncated_stream_is_recovered_by_retransmit() {
        let bs = bitstream();
        let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
        let report = session.program(|round, frames| {
            if round == 0 {
                frames[..frames.len() / 2].to_vec() // drop the tail
            } else {
                frames.to_vec()
            }
        });
        assert!(report.is_verified(), "{report}");
        assert_eq!(report.attempts, 2);
    }

    #[test]
    fn deframe_rejects_conflicting_duplicates_and_bad_seq() {
        let words = bitstream().to_words();
        let framed = frame_words(&words);
        // Conflicting duplicate: re-frame word 0 with a different payload.
        let mut with_conflict = framed.clone();
        with_conflict.extend_from_slice(&Frame::new(0, !words[0]).pack());
        assert!(matches!(
            deframe_words(&with_conflict, words.len()),
            Err(FrameError::ConflictingDuplicate { seq: 0 })
        ));
        // Out-of-range sequence.
        let mut with_bad_seq = framed.clone();
        with_bad_seq.extend_from_slice(&Frame::new(words.len() as u32, 7).pack());
        assert!(matches!(
            deframe_words(&with_bad_seq, words.len()),
            Err(FrameError::SeqOutOfRange { .. })
        ));
        // Odd transport length.
        assert!(matches!(
            deframe_words(&framed[..framed.len() - 1], words.len()),
            Err(FrameError::Truncated { .. })
        ));
        // Missing frames.
        assert!(matches!(
            deframe_words(&framed[..framed.len() - FRAME_WORDS], words.len()),
            Err(FrameError::MissingFrames { .. })
        ));
    }
}
