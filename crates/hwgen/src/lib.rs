//! Hardware generation for DSAGEN (§VI).
//!
//! Three artifacts turn an ADG + schedule into deployable hardware:
//!
//! * [`Bitstream`] — per-component configuration words (routing tables,
//!   instruction slots with opcodes/timing/tags, sync-element delays),
//!   serializable and roundtrip-decodable;
//! * [`generate_config_paths`] — one or more network walks covering every
//!   configurable component, minimizing the longest path (which dominates
//!   configuration time, Fig 13);
//! * [`emit_verilog`] — structural Verilog for the whole fabric (the
//!   Chisel-backend substitute; see DESIGN.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitstream;
mod config_path;
mod frame;
mod rtl;

pub use bitstream::{
    schedule_digest, verify_round_trip, verify_round_trip_timed, Bitstream, BitstreamError,
    ComponentClass, DecodedConfig, DecodedInstr, DecodedNode, InstrConfig, NodeConfig, RouteConfig,
    SyncConfig, VerifiedConfig, VerifyError,
};
pub use config_path::{
    generate_config_paths, try_generate_config_paths, ConfigPathError, ConfigPaths,
};
pub use frame::{
    crc32, deframe_words, frame_chunk, frame_words, unframe_chunk, ChunkError, Frame, FrameError,
    ProgrammingSession, SessionConfig, SessionError, SessionReport, SessionState, CRC32_POLY,
    FRAME_WORDS, MAX_CHUNK_LEN,
};
pub use rtl::emit_verilog;
