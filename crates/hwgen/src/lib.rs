//! Hardware generation for DSAGEN (§VI).
//!
//! Three artifacts turn an ADG + schedule into deployable hardware:
//!
//! * [`Bitstream`] — per-component configuration words (routing tables,
//!   instruction slots with opcodes/timing/tags, sync-element delays),
//!   serializable and roundtrip-decodable;
//! * [`generate_config_paths`] — one or more network walks covering every
//!   configurable component, minimizing the longest path (which dominates
//!   configuration time, Fig 13);
//! * [`emit_verilog`] — structural Verilog for the whole fabric (the
//!   Chisel-backend substitute; see DESIGN.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitstream;
mod config_path;
mod rtl;

pub use bitstream::{Bitstream, InstrConfig, NodeConfig, RouteConfig, SyncConfig};
pub use config_path::{generate_config_paths, ConfigPaths};
pub use rtl::emit_verilog;
