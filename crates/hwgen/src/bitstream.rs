//! Bitstream encoding (§VI "Bitstream Encoding").
//!
//! Each component has local configuration registers: a switch's bitstream
//! encodes routing, a PE's encodes instruction opcodes, execution timing
//! (static PEs), and instruction tags (shared PEs); a sync element's
//! encodes delay/grouping. This module encodes a [`Schedule`] into 64-bit
//! configuration words addressed to components, and decodes them back
//! (roundtrip-tested).

use std::collections::BTreeMap;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use dsagen_adg::{NodeId, NodeKind, Opcode};
use dsagen_scheduler::{EntityKind, Problem, Schedule};

/// Why a word stream failed to parse back into a [`Bitstream`].
///
/// Every variant carries the index of the offending word plus enough
/// expected/got context to localize the corruption without a debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitstreamError {
    /// A component header announced more payload words than remain in the
    /// stream.
    TruncatedPayload {
        /// Index of the header word.
        word_index: usize,
        /// The component the header addresses.
        node: NodeId,
        /// Payload words the header announced.
        expected: usize,
        /// Payload words actually remaining.
        remaining: usize,
    },
    /// A header carried a component-kind field outside the encodable
    /// range (1 = PE, 2 = switch, 3 = sync).
    UnknownComponentKind {
        /// Index of the header word.
        word_index: usize,
        /// The out-of-range kind field.
        kind: u8,
    },
    /// A payload word carried an unknown type tag in its low nibble.
    UnknownPayloadTag {
        /// Index of the payload word.
        word_index: usize,
        /// The unknown tag.
        tag: u8,
    },
    /// An instruction word carried an opcode discriminant that decodes to
    /// no [`Opcode`] (only raised by [`Bitstream::decode`], which resolves
    /// opcodes; [`Bitstream::from_words`] keeps raw discriminants).
    UnknownOpcode {
        /// Index of the instruction word.
        word_index: usize,
        /// The component the instruction configures.
        node: NodeId,
        /// The unresolvable discriminant.
        discriminant: u8,
    },
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::TruncatedPayload {
                word_index,
                node,
                expected,
                remaining,
            } => write!(
                f,
                "word {word_index}: truncated payload for {node} (expected {expected} words, {remaining} remain)"
            ),
            BitstreamError::UnknownComponentKind { word_index, kind } => {
                write!(f, "word {word_index}: unknown component kind {kind}")
            }
            BitstreamError::UnknownPayloadTag { word_index, tag } => {
                write!(f, "word {word_index}: unknown payload tag {tag:#x}")
            }
            BitstreamError::UnknownOpcode {
                word_index,
                node,
                discriminant,
            } => write!(
                f,
                "word {word_index}: opcode discriminant {discriminant} of {node} resolves to no Opcode"
            ),
        }
    }
}

impl std::error::Error for BitstreamError {}

/// One PE instruction-slot configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrConfig {
    /// Opcode discriminant.
    pub opcode: u8,
    /// Input-port index at the PE for each operand (0xFF = unrouted /
    /// constant operand).
    pub operands: [u8; 3],
    /// Static-PE execution timing filler (delay before fire).
    pub delay: u8,
    /// Instruction tag (shared PEs).
    pub tag: u8,
}

/// One switch route configuration: input port → output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteConfig {
    /// Input port index at the switch.
    pub in_port: u8,
    /// Output port index at the switch.
    pub out_port: u8,
}

/// One sync-element configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// Vector lanes grouped by the ready logic.
    pub lanes: u8,
    /// FIFO fire-delay cycles.
    pub delay: u16,
    /// Port-group id (region × port), for coordinated firing.
    pub group: u8,
}

/// Decoded configuration of one component.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeConfig {
    /// PE instruction slots.
    pub instrs: Vec<InstrConfig>,
    /// Switch routes.
    pub routes: Vec<RouteConfig>,
    /// Sync configuration.
    pub sync: Option<SyncConfig>,
}

/// A complete bitstream: per-component configuration words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitstream {
    /// Configuration per node, in node-id order.
    pub configs: BTreeMap<NodeId, NodeConfig>,
}

const KIND_PE: u64 = 1;
const KIND_SWITCH: u64 = 2;
const KIND_SYNC: u64 = 3;

impl Bitstream {
    /// Encodes a schedule into per-component configuration, programming
    /// each static-PE instruction's balancing delay from the schedule's
    /// operand-arrival spread (§VI: a PE's bitstream encodes "execution
    /// timing (for static PEs only)").
    #[must_use]
    pub fn encode_with_timing(
        problem: &Problem<'_>,
        schedule: &Schedule,
        eval: &dsagen_scheduler::Evaluation,
    ) -> Bitstream {
        let mut bs = Bitstream::encode(problem, schedule);
        // Walk op entities again in the same order encode() did, so the
        // i-th instruction of each node lines up with its config slot.
        let mut slot_cursor: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (i, entity) in problem.entities.iter().enumerate() {
            let Some(node) = schedule.placement[i] else {
                continue;
            };
            if !matches!(entity.kind, EntityKind::Op { .. }) {
                continue;
            }
            let slot = *slot_cursor
                .entry(node)
                .and_modify(|s| *s += 1)
                .or_insert(0);
            let is_static = matches!(
                problem.adg.kind(node),
                Ok(NodeKind::Pe(pe)) if pe.scheduling == dsagen_adg::Scheduling::Static
            );
            if !is_static {
                continue;
            }
            let delay = eval
                .operand_spread
                .get(i)
                .copied()
                .unwrap_or(0.0)
                .clamp(0.0, 255.0) as u8;
            if let Some(cfg) = bs.configs.get_mut(&node) {
                if let Some(instr) = cfg.instrs.get_mut(slot) {
                    instr.delay = delay;
                }
            }
        }
        bs
    }

    /// Encodes a schedule into per-component configuration.
    #[must_use]
    pub fn encode(problem: &Problem<'_>, schedule: &Schedule) -> Bitstream {
        let adg = problem.adg;
        let mut configs: BTreeMap<NodeId, NodeConfig> = BTreeMap::new();

        // PE instructions.
        for (i, entity) in problem.entities.iter().enumerate() {
            let Some(node) = schedule.placement[i] else {
                continue;
            };
            match entity.kind {
                EntityKind::Op { .. } => {
                    let mut operands = [0xFFu8; 3];
                    for (ei, vedge) in problem.edges.iter().enumerate() {
                        if vedge.dst != i || vedge.operand >= 3 {
                            continue;
                        }
                        if let Some(path) = schedule.routes.get(&ei) {
                            if let Some(last) = path.last() {
                                if let Some(port) = adg.input_port_of(*last) {
                                    operands[vedge.operand] = port.min(254) as u8;
                                }
                            }
                        }
                    }
                    let opcode = entity.opcode.map_or(0u8, |oc| oc as u8);
                    let tag = configs
                        .get(&node)
                        .map_or(0, |c| c.instrs.len().min(255)) as u8;
                    configs.entry(node).or_default().instrs.push(InstrConfig {
                        opcode,
                        operands,
                        delay: 0,
                        tag,
                    });
                }
                EntityKind::InPort { region, port } | EntityKind::OutPort { region, port } => {
                    let lanes = entity.lanes.min(255) as u8;
                    let group = ((region * 16 + port) % 256) as u8;
                    let delay = match adg.kind(node) {
                        Ok(NodeKind::Sync(sy)) => sy.depth.min(4096),
                        _ => 0,
                    };
                    configs.entry(node).or_default().sync = Some(SyncConfig {
                        lanes,
                        delay,
                        group,
                    });
                }
            }
        }

        // Switch routes: walk every routed path and record in→out port
        // mappings at each intermediate node.
        for path in schedule.routes.values() {
            for pair in path.windows(2) {
                let (e_in, e_out) = (pair[0], pair[1]);
                let Some(edge_in) = adg.edge(e_in) else { continue };
                let node = edge_in.dst;
                if !matches!(adg.kind(node), Ok(NodeKind::Switch(_))) {
                    continue;
                }
                let (Some(ip), Some(op)) =
                    (adg.input_port_of(e_in), adg.output_port_of(e_out))
                else {
                    continue;
                };
                let rc = RouteConfig {
                    in_port: ip.min(254) as u8,
                    out_port: op.min(254) as u8,
                };
                let cfg = configs.entry(node).or_default();
                if !cfg.routes.contains(&rc) {
                    cfg.routes.push(rc);
                }
            }
        }
        Bitstream { configs }
    }

    /// Serializes into 64-bit words: a header word per component followed
    /// by its payload words. The header carries the destination id so
    /// "the component can identify relevant configuration data to keep and
    /// non-relevant data to forward" (§VI).
    #[must_use]
    pub fn to_words(&self) -> Vec<u64> {
        let mut words = Vec::new();
        for (node, cfg) in &self.configs {
            let payload = cfg.instrs.len() + cfg.routes.len() + usize::from(cfg.sync.is_some());
            let kind = if !cfg.instrs.is_empty() {
                KIND_PE
            } else if !cfg.routes.is_empty() {
                KIND_SWITCH
            } else {
                KIND_SYNC
            };
            words.push(
                ((node.index() as u64) << 48) | (kind << 45) | ((payload as u64 & 0xFF) << 37),
            );
            for i in &cfg.instrs {
                words.push(
                    (u64::from(i.opcode) << 56)
                        | (u64::from(i.operands[0]) << 48)
                        | (u64::from(i.operands[1]) << 40)
                        | (u64::from(i.operands[2]) << 32)
                        | (u64::from(i.delay) << 24)
                        | (u64::from(i.tag) << 16)
                        | 0x1,
                );
            }
            for r in &cfg.routes {
                words.push((u64::from(r.in_port) << 56) | (u64::from(r.out_port) << 48) | 0x2);
            }
            if let Some(s) = cfg.sync {
                words.push(
                    (u64::from(s.lanes) << 56)
                        | (u64::from(s.delay) << 40)
                        | (u64::from(s.group) << 32)
                        | 0x3,
                );
            }
        }
        words
    }

    /// Parses words back into per-component configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`BitstreamError`] locating the first malformed
    /// word (index, component, expected/got context).
    pub fn from_words(words: &[u64]) -> Result<Bitstream, BitstreamError> {
        let mut configs: BTreeMap<NodeId, NodeConfig> = BTreeMap::new();
        let mut i = 0usize;
        while i < words.len() {
            let header_index = i;
            let header = words[i];
            i += 1;
            let node = NodeId::from_index((header >> 48) as usize);
            let kind = ((header >> 45) & 0x7) as u8;
            if !(1..=3).contains(&kind) {
                return Err(BitstreamError::UnknownComponentKind {
                    word_index: header_index,
                    kind,
                });
            }
            let payload = ((header >> 37) & 0xFF) as usize;
            if i + payload > words.len() {
                return Err(BitstreamError::TruncatedPayload {
                    word_index: header_index,
                    node,
                    expected: payload,
                    remaining: words.len() - i,
                });
            }
            let cfg = configs.entry(node).or_default();
            for (off, w) in words[i..i + payload].iter().enumerate() {
                match w & 0xF {
                    0x1 => cfg.instrs.push(InstrConfig {
                        opcode: (w >> 56) as u8,
                        operands: [(w >> 48) as u8, (w >> 40) as u8, (w >> 32) as u8],
                        delay: (w >> 24) as u8,
                        tag: (w >> 16) as u8,
                    }),
                    0x2 => cfg.routes.push(RouteConfig {
                        in_port: (w >> 56) as u8,
                        out_port: (w >> 48) as u8,
                    }),
                    0x3 => {
                        cfg.sync = Some(SyncConfig {
                            lanes: (w >> 56) as u8,
                            delay: ((w >> 40) & 0xFFFF) as u16,
                            group: (w >> 32) as u8,
                        });
                    }
                    tag => {
                        return Err(BitstreamError::UnknownPayloadTag {
                            word_index: i + off,
                            tag: tag as u8,
                        })
                    }
                }
            }
            i += payload;
        }
        Ok(Bitstream { configs })
    }

    /// Fully decodes a word stream into a [`DecodedConfig`]: per-node
    /// resolved opcodes, routes, and stream/sync parameters.
    ///
    /// Stricter than [`Bitstream::from_words`]: every instruction word's
    /// opcode discriminant must resolve to a real [`Opcode`].
    ///
    /// # Errors
    ///
    /// Any [`BitstreamError`], including [`BitstreamError::UnknownOpcode`]
    /// with word-index and node context.
    pub fn decode(words: &[u64]) -> Result<DecodedConfig, BitstreamError> {
        let mut nodes: BTreeMap<NodeId, DecodedNode> = BTreeMap::new();
        let mut i = 0usize;
        while i < words.len() {
            let header_index = i;
            let header = words[i];
            i += 1;
            let node = NodeId::from_index((header >> 48) as usize);
            let kind = ((header >> 45) & 0x7) as u8;
            let class = match kind {
                1 => ComponentClass::Pe,
                2 => ComponentClass::Switch,
                3 => ComponentClass::Sync,
                _ => {
                    return Err(BitstreamError::UnknownComponentKind {
                        word_index: header_index,
                        kind,
                    })
                }
            };
            let payload = ((header >> 37) & 0xFF) as usize;
            if i + payload > words.len() {
                return Err(BitstreamError::TruncatedPayload {
                    word_index: header_index,
                    node,
                    expected: payload,
                    remaining: words.len() - i,
                });
            }
            let entry = nodes.entry(node).or_insert_with(|| DecodedNode {
                class,
                instrs: Vec::new(),
                routes: Vec::new(),
                sync: None,
            });
            for (off, w) in words[i..i + payload].iter().enumerate() {
                let word_index = i + off;
                match w & 0xF {
                    0x1 => {
                        let discriminant = (w >> 56) as u8;
                        let opcode = Bitstream::opcode_of(discriminant).ok_or(
                            BitstreamError::UnknownOpcode {
                                word_index,
                                node,
                                discriminant,
                            },
                        )?;
                        entry.instrs.push(DecodedInstr {
                            opcode,
                            operands: [(w >> 48) as u8, (w >> 40) as u8, (w >> 32) as u8],
                            delay: (w >> 24) as u8,
                            tag: (w >> 16) as u8,
                        });
                    }
                    0x2 => entry.routes.push(RouteConfig {
                        in_port: (w >> 56) as u8,
                        out_port: (w >> 48) as u8,
                    }),
                    0x3 => {
                        entry.sync = Some(SyncConfig {
                            lanes: (w >> 56) as u8,
                            delay: ((w >> 40) & 0xFFFF) as u16,
                            group: (w >> 32) as u8,
                        });
                    }
                    tag => {
                        return Err(BitstreamError::UnknownPayloadTag {
                            word_index,
                            tag: tag as u8,
                        })
                    }
                }
            }
            i += payload;
        }
        Ok(DecodedConfig { nodes })
    }

    /// The owning component of every word [`Bitstream::to_words`] emits,
    /// by word index (headers included). Lets config-path delivery map a
    /// lost or corrupted word back to the node it was configuring.
    #[must_use]
    pub fn word_owners(&self) -> Vec<NodeId> {
        let mut owners = Vec::new();
        for (node, cfg) in &self.configs {
            let payload = cfg.instrs.len() + cfg.routes.len() + usize::from(cfg.sync.is_some());
            for _ in 0..=payload {
                owners.push(*node);
            }
        }
        owners
    }

    /// Serializes to a byte buffer (big-endian words) for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let words = self.to_words();
        let mut buf = BytesMut::with_capacity(words.len() * 8);
        for w in words {
            buf.put_u64(w);
        }
        buf.freeze()
    }

    /// Total configuration words.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.to_words().len()
    }

    /// Opcode the discriminant decodes to, if valid.
    #[must_use]
    pub fn opcode_of(discriminant: u8) -> Option<Opcode> {
        Opcode::ALL
            .into_iter()
            .find(|op| *op as u8 == discriminant)
    }
}

/// Which class of component a decoded header addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentClass {
    /// A processing element (instruction slots).
    Pe,
    /// A switch (routing table).
    Switch,
    /// A synchronization element (stream parameters).
    Sync,
}

/// One fully decoded instruction slot: the raw discriminant resolved to a
/// real [`Opcode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The resolved opcode.
    pub opcode: Opcode,
    /// Input-port index per operand (0xFF = unrouted / constant).
    pub operands: [u8; 3],
    /// Static-PE balancing delay.
    pub delay: u8,
    /// Instruction tag (shared PEs).
    pub tag: u8,
}

/// One component's fully decoded configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedNode {
    /// What the header said this component is.
    pub class: ComponentClass,
    /// Decoded PE instruction slots (opcodes resolved).
    pub instrs: Vec<DecodedInstr>,
    /// Switch routes.
    pub routes: Vec<RouteConfig>,
    /// Sync/stream parameters.
    pub sync: Option<SyncConfig>,
}

/// A machine-checked decode of a configuration word stream: per-node
/// opcodes, routes, and stream parameters (see [`Bitstream::decode`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedConfig {
    /// Decoded configuration per component, in node-id order.
    pub nodes: BTreeMap<NodeId, DecodedNode>,
}

impl DecodedConfig {
    /// Every [`Opcode`] programmed anywhere in the fabric.
    #[must_use]
    pub fn opcodes(&self) -> Vec<Opcode> {
        let mut ops: Vec<Opcode> = self
            .nodes
            .values()
            .flat_map(|n| n.instrs.iter().map(|i| i.opcode))
            .collect();
        ops.sort_by_key(|op| *op as u8);
        ops.dedup();
        ops
    }

    /// Total decoded instruction slots.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.nodes.values().map(|n| n.instrs.len()).sum()
    }

    /// Total decoded switch routes.
    #[must_use]
    pub fn route_count(&self) -> usize {
        self.nodes.values().map(|n| n.routes.len()).sum()
    }
}

/// Why a bitstream round-trip verification failed: either the word stream
/// would not decode at all, or encode∘decode was not the identity.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The emitted words failed to decode.
    Decode(BitstreamError),
    /// The decoded configuration disagrees with the encoded one at `node`.
    ConfigMismatch {
        /// First component whose decoded config differs.
        node: NodeId,
    },
    /// Re-encoding the decoded configuration was not bit-identical.
    ReencodeMismatch {
        /// First differing word index.
        word_index: usize,
        /// The originally emitted word.
        expected: u64,
        /// The re-encoded word.
        got: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Decode(e) => write!(f, "emitted words failed to decode: {e}"),
            VerifyError::ConfigMismatch { node } => {
                write!(f, "decoded configuration of {node} disagrees with the encoder")
            }
            VerifyError::ReencodeMismatch {
                word_index,
                expected,
                got,
            } => write!(
                f,
                "re-encode diverges at word {word_index}: expected {expected:#018x}, got {got:#018x}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BitstreamError> for VerifyError {
    fn from(e: BitstreamError) -> Self {
        VerifyError::Decode(e)
    }
}

/// A stable FNV-1a digest of a schedule's placements and routes — the
/// identity a [`VerifiedConfig`] is bound to.
#[must_use]
pub fn schedule_digest(schedule: &Schedule) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for slot in &schedule.placement {
        match slot {
            Some(n) => mix(1 + n.index() as u64),
            None => mix(0),
        }
    }
    mix(u64::MAX); // placement/routes separator
    for (vedge, path) in &schedule.routes {
        mix(*vedge as u64);
        mix(path.len() as u64);
        for e in path {
            mix(e.index() as u64);
        }
    }
    h
}

/// Proof that a configuration survived the encode∘decode identity check:
/// the only token [`verify_round_trip`] mints, and the only form of
/// configuration the simulator accepts for a verified run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedConfig {
    bitstream: Bitstream,
    decoded: DecodedConfig,
    words: Vec<u64>,
    schedule_digest: u64,
}

impl VerifiedConfig {
    /// The verified per-component configuration.
    #[must_use]
    pub fn bitstream(&self) -> &Bitstream {
        &self.bitstream
    }

    /// The fully decoded view (opcodes resolved).
    #[must_use]
    pub fn decoded(&self) -> &DecodedConfig {
        &self.decoded
    }

    /// The verified word stream.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of configuration words.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Digest of the schedule this configuration was verified against.
    #[must_use]
    pub fn schedule_digest(&self) -> u64 {
        self.schedule_digest
    }

    /// Whether this verified configuration was minted for `schedule`.
    #[must_use]
    pub fn matches(&self, schedule: &Schedule) -> bool {
        self.schedule_digest == schedule_digest(schedule)
    }
}

/// Proves encode∘decode is the identity for `schedule` on `problem`:
/// encodes the schedule, serializes to words, decodes the words, demands
/// the decoded configuration equal the encoded one, re-encodes it and
/// demands bit-identical words, and fully resolves every opcode.
///
/// # Errors
///
/// A typed [`VerifyError`] if any step disagrees — an encoder/decoder
/// bug surfaces here as a first-class rejection instead of an undefined
/// simulation downstream.
pub fn verify_round_trip(
    problem: &Problem<'_>,
    schedule: &Schedule,
) -> Result<VerifiedConfig, VerifyError> {
    let bitstream = Bitstream::encode(problem, schedule);
    verify_bitstream(&bitstream, schedule)
}

/// [`verify_round_trip`] for a timing-annotated encode (static-PE
/// balancing delays from `eval`; see [`Bitstream::encode_with_timing`]).
///
/// # Errors
///
/// Same contract as [`verify_round_trip`].
pub fn verify_round_trip_timed(
    problem: &Problem<'_>,
    schedule: &Schedule,
    eval: &dsagen_scheduler::Evaluation,
) -> Result<VerifiedConfig, VerifyError> {
    let bitstream = Bitstream::encode_with_timing(problem, schedule, eval);
    verify_bitstream(&bitstream, schedule)
}

/// Shared verification core: words → decode → compare → re-encode →
/// compare → full opcode-resolving decode.
fn verify_bitstream(
    bitstream: &Bitstream,
    schedule: &Schedule,
) -> Result<VerifiedConfig, VerifyError> {
    let words = bitstream.to_words();
    let round = Bitstream::from_words(&words)?;
    if round != *bitstream {
        let node = bitstream
            .configs
            .iter()
            .find(|(n, cfg)| round.configs.get(n) != Some(cfg))
            .map(|(n, _)| *n)
            .or_else(|| {
                round
                    .configs
                    .keys()
                    .find(|n| !bitstream.configs.contains_key(n))
                    .copied()
            })
            .unwrap_or_else(|| NodeId::from_index(0));
        return Err(VerifyError::ConfigMismatch { node });
    }
    let reencoded = round.to_words();
    if reencoded != words {
        let word_index = words
            .iter()
            .zip(&reencoded)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| words.len().min(reencoded.len()));
        return Err(VerifyError::ReencodeMismatch {
            word_index,
            expected: words.get(word_index).copied().unwrap_or(0),
            got: reencoded.get(word_index).copied().unwrap_or(0),
        });
    }
    let decoded = Bitstream::decode(&words)?;
    Ok(VerifiedConfig {
        bitstream: bitstream.clone(),
        decoded,
        words,
        schedule_digest: schedule_digest(schedule),
    })
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_scheduler::{schedule, SchedulerConfig};

    use super::*;

    fn scheduled() -> (dsagen_adg::Adg, dsagen_dfg::CompiledKernel, Schedule) {
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 256, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let m = r.bin(Opcode::Mul, va, vb);
        let s = r.bin(Opcode::Add, m, vb);
        r.store(c, AffineExpr::var(i), s);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        let res = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(res.is_legal());
        (adg, ck, res.schedule)
    }

    #[test]
    fn encode_covers_used_components() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        // Two compute ops → at least one PE config with 2 instrs total.
        let instr_total: usize = bs.configs.values().map(|c| c.instrs.len()).sum();
        assert_eq!(instr_total, 2);
        // Some switches carry routes.
        assert!(bs.configs.values().any(|c| !c.routes.is_empty()));
        // Ports have sync configs.
        assert!(bs.configs.values().any(|c| c.sync.is_some()));
    }

    #[test]
    fn words_roundtrip() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        let words = bs.to_words();
        let decoded = Bitstream::from_words(&words).unwrap();
        assert_eq!(bs, decoded);
    }

    #[test]
    fn bytes_are_word_aligned() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        assert_eq!(bs.to_bytes().len(), bs.word_count() * 8);
    }

    #[test]
    fn truncated_words_error() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let words = Bitstream::encode(&problem, &sched).to_words();
        assert!(Bitstream::from_words(&words[..words.len() - 1]).is_err());
    }

    #[test]
    fn opcode_discriminants_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Bitstream::opcode_of(op as u8), Some(op));
        }
        assert_eq!(Bitstream::opcode_of(200), None);
    }

    #[test]
    fn timing_encode_programs_static_delays() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        // Re-evaluate to obtain timing facts.
        let eval = dsagen_scheduler::evaluate(
            &problem,
            &sched,
            &dsagen_scheduler::Weights::default(),
        );
        let bs = Bitstream::encode_with_timing(&problem, &sched, &eval);
        // The axpy add consumes the mul result and a port value — their
        // arrival times differ, so at least one static instruction carries
        // a nonzero balancing delay.
        let any_delay = bs
            .configs
            .values()
            .flat_map(|c| c.instrs.iter())
            .any(|i| i.delay > 0);
        assert!(any_delay, "expected a nonzero balancing delay");
        // And the result still roundtrips.
        let decoded = Bitstream::from_words(&bs.to_words()).unwrap();
        assert_eq!(bs, decoded);
    }

    #[test]
    fn truncated_words_error_is_typed() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let words = Bitstream::encode(&problem, &sched).to_words();
        match Bitstream::from_words(&words[..words.len() - 1]) {
            Err(BitstreamError::TruncatedPayload {
                expected,
                remaining,
                ..
            }) => assert_eq!(remaining + 1, expected),
            other => panic!("expected TruncatedPayload, got {other:?}"),
        }
    }

    #[test]
    fn decode_resolves_every_opcode() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        let decoded = Bitstream::decode(&bs.to_words()).expect("decodes");
        assert_eq!(decoded.instr_count(), 2);
        let ops = decoded.opcodes();
        assert!(ops.contains(&Opcode::Mul) && ops.contains(&Opcode::Add), "{ops:?}");
        assert!(decoded.route_count() > 0);
        // Classes line up with payload content.
        for node in decoded.nodes.values() {
            if !node.instrs.is_empty() {
                assert_eq!(node.class, ComponentClass::Pe);
            }
        }
    }

    #[test]
    fn decode_rejects_unknown_opcode_with_context() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let mut words = Bitstream::encode(&problem, &sched).to_words();
        // Overwrite the first instruction word's opcode with an invalid
        // discriminant, leaving the payload tag intact.
        let idx = words
            .iter()
            .position(|w| w & 0xF == 0x1)
            .expect("an instruction word exists");
        words[idx] = (words[idx] & !(0xFFu64 << 56)) | (0xEEu64 << 56);
        match Bitstream::decode(&words) {
            Err(BitstreamError::UnknownOpcode {
                word_index,
                discriminant,
                ..
            }) => {
                assert_eq!(word_index, idx);
                assert_eq!(discriminant, 0xEE);
            }
            other => panic!("expected UnknownOpcode, got {other:?}"),
        }
    }

    #[test]
    fn word_owners_parallel_to_words() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        let owners = bs.word_owners();
        assert_eq!(owners.len(), bs.word_count());
        // Every configured node owns at least its header word.
        for node in bs.configs.keys() {
            assert!(owners.contains(node));
        }
    }

    #[test]
    fn round_trip_verification_mints_a_matching_token() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let vc = verify_round_trip(&problem, &sched).expect("identity holds");
        assert!(vc.matches(&sched));
        assert_eq!(vc.word_count(), vc.bitstream().word_count());
        assert_eq!(vc.decoded().instr_count(), 2);
        // A different schedule does not match the token.
        let mut other = sched.clone();
        other.placement.push(None);
        assert!(!vc.matches(&other));
    }

    #[test]
    fn timed_verification_also_holds() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let eval = dsagen_scheduler::evaluate(
            &problem,
            &sched,
            &dsagen_scheduler::Weights::default(),
        );
        let vc = verify_round_trip_timed(&problem, &sched, &eval).expect("identity holds");
        assert!(vc.matches(&sched));
    }

    #[test]
    fn schedule_digest_is_stable_and_discriminating() {
        let (_, _, sched) = scheduled();
        assert_eq!(schedule_digest(&sched), schedule_digest(&sched));
        let mut other = sched.clone();
        if let Some(slot) = other.placement.iter_mut().find(|s| s.is_some()) {
            *slot = None;
        }
        assert_ne!(schedule_digest(&sched), schedule_digest(&other));
    }

    #[test]
    fn operand_ports_recorded() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        // Every instruction has at least one routed operand.
        for cfg in bs.configs.values() {
            for i in &cfg.instrs {
                assert!(
                    i.operands.iter().any(|p| *p != 0xFF),
                    "instruction with no routed operands"
                );
            }
        }
    }
}
