//! Bitstream encoding (§VI "Bitstream Encoding").
//!
//! Each component has local configuration registers: a switch's bitstream
//! encodes routing, a PE's encodes instruction opcodes, execution timing
//! (static PEs), and instruction tags (shared PEs); a sync element's
//! encodes delay/grouping. This module encodes a [`Schedule`] into 64-bit
//! configuration words addressed to components, and decodes them back
//! (roundtrip-tested).

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};
use dsagen_adg::{NodeId, NodeKind, Opcode};
use dsagen_scheduler::{EntityKind, Problem, Schedule};

/// One PE instruction-slot configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrConfig {
    /// Opcode discriminant.
    pub opcode: u8,
    /// Input-port index at the PE for each operand (0xFF = unrouted /
    /// constant operand).
    pub operands: [u8; 3],
    /// Static-PE execution timing filler (delay before fire).
    pub delay: u8,
    /// Instruction tag (shared PEs).
    pub tag: u8,
}

/// One switch route configuration: input port → output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteConfig {
    /// Input port index at the switch.
    pub in_port: u8,
    /// Output port index at the switch.
    pub out_port: u8,
}

/// One sync-element configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// Vector lanes grouped by the ready logic.
    pub lanes: u8,
    /// FIFO fire-delay cycles.
    pub delay: u16,
    /// Port-group id (region × port), for coordinated firing.
    pub group: u8,
}

/// Decoded configuration of one component.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeConfig {
    /// PE instruction slots.
    pub instrs: Vec<InstrConfig>,
    /// Switch routes.
    pub routes: Vec<RouteConfig>,
    /// Sync configuration.
    pub sync: Option<SyncConfig>,
}

/// A complete bitstream: per-component configuration words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitstream {
    /// Configuration per node, in node-id order.
    pub configs: BTreeMap<NodeId, NodeConfig>,
}

const KIND_PE: u64 = 1;
const KIND_SWITCH: u64 = 2;
const KIND_SYNC: u64 = 3;

impl Bitstream {
    /// Encodes a schedule into per-component configuration, programming
    /// each static-PE instruction's balancing delay from the schedule's
    /// operand-arrival spread (§VI: a PE's bitstream encodes "execution
    /// timing (for static PEs only)").
    #[must_use]
    pub fn encode_with_timing(
        problem: &Problem<'_>,
        schedule: &Schedule,
        eval: &dsagen_scheduler::Evaluation,
    ) -> Bitstream {
        let mut bs = Bitstream::encode(problem, schedule);
        // Walk op entities again in the same order encode() did, so the
        // i-th instruction of each node lines up with its config slot.
        let mut slot_cursor: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (i, entity) in problem.entities.iter().enumerate() {
            let Some(node) = schedule.placement[i] else {
                continue;
            };
            if !matches!(entity.kind, EntityKind::Op { .. }) {
                continue;
            }
            let slot = *slot_cursor
                .entry(node)
                .and_modify(|s| *s += 1)
                .or_insert(0);
            let is_static = matches!(
                problem.adg.kind(node),
                Ok(NodeKind::Pe(pe)) if pe.scheduling == dsagen_adg::Scheduling::Static
            );
            if !is_static {
                continue;
            }
            let delay = eval
                .operand_spread
                .get(i)
                .copied()
                .unwrap_or(0.0)
                .clamp(0.0, 255.0) as u8;
            if let Some(cfg) = bs.configs.get_mut(&node) {
                if let Some(instr) = cfg.instrs.get_mut(slot) {
                    instr.delay = delay;
                }
            }
        }
        bs
    }

    /// Encodes a schedule into per-component configuration.
    #[must_use]
    pub fn encode(problem: &Problem<'_>, schedule: &Schedule) -> Bitstream {
        let adg = problem.adg;
        let mut configs: BTreeMap<NodeId, NodeConfig> = BTreeMap::new();

        // PE instructions.
        for (i, entity) in problem.entities.iter().enumerate() {
            let Some(node) = schedule.placement[i] else {
                continue;
            };
            match entity.kind {
                EntityKind::Op { .. } => {
                    let mut operands = [0xFFu8; 3];
                    for (ei, vedge) in problem.edges.iter().enumerate() {
                        if vedge.dst != i || vedge.operand >= 3 {
                            continue;
                        }
                        if let Some(path) = schedule.routes.get(&ei) {
                            if let Some(last) = path.last() {
                                if let Some(port) = adg.input_port_of(*last) {
                                    operands[vedge.operand] = port.min(254) as u8;
                                }
                            }
                        }
                    }
                    let opcode = entity.opcode.map_or(0u8, |oc| oc as u8);
                    let tag = configs
                        .get(&node)
                        .map_or(0, |c| c.instrs.len().min(255)) as u8;
                    configs.entry(node).or_default().instrs.push(InstrConfig {
                        opcode,
                        operands,
                        delay: 0,
                        tag,
                    });
                }
                EntityKind::InPort { region, port } | EntityKind::OutPort { region, port } => {
                    let lanes = entity.lanes.min(255) as u8;
                    let group = ((region * 16 + port) % 256) as u8;
                    let delay = match adg.kind(node) {
                        Ok(NodeKind::Sync(sy)) => sy.depth.min(4096),
                        _ => 0,
                    };
                    configs.entry(node).or_default().sync = Some(SyncConfig {
                        lanes,
                        delay,
                        group,
                    });
                }
            }
        }

        // Switch routes: walk every routed path and record in→out port
        // mappings at each intermediate node.
        for path in schedule.routes.values() {
            for pair in path.windows(2) {
                let (e_in, e_out) = (pair[0], pair[1]);
                let Some(edge_in) = adg.edge(e_in) else { continue };
                let node = edge_in.dst;
                if !matches!(adg.kind(node), Ok(NodeKind::Switch(_))) {
                    continue;
                }
                let (Some(ip), Some(op)) =
                    (adg.input_port_of(e_in), adg.output_port_of(e_out))
                else {
                    continue;
                };
                let rc = RouteConfig {
                    in_port: ip.min(254) as u8,
                    out_port: op.min(254) as u8,
                };
                let cfg = configs.entry(node).or_default();
                if !cfg.routes.contains(&rc) {
                    cfg.routes.push(rc);
                }
            }
        }
        Bitstream { configs }
    }

    /// Serializes into 64-bit words: a header word per component followed
    /// by its payload words. The header carries the destination id so
    /// "the component can identify relevant configuration data to keep and
    /// non-relevant data to forward" (§VI).
    #[must_use]
    pub fn to_words(&self) -> Vec<u64> {
        let mut words = Vec::new();
        for (node, cfg) in &self.configs {
            let payload = cfg.instrs.len() + cfg.routes.len() + usize::from(cfg.sync.is_some());
            let kind = if !cfg.instrs.is_empty() {
                KIND_PE
            } else if !cfg.routes.is_empty() {
                KIND_SWITCH
            } else {
                KIND_SYNC
            };
            words.push(
                ((node.index() as u64) << 48) | (kind << 45) | ((payload as u64 & 0xFF) << 37),
            );
            for i in &cfg.instrs {
                words.push(
                    (u64::from(i.opcode) << 56)
                        | (u64::from(i.operands[0]) << 48)
                        | (u64::from(i.operands[1]) << 40)
                        | (u64::from(i.operands[2]) << 32)
                        | (u64::from(i.delay) << 24)
                        | (u64::from(i.tag) << 16)
                        | 0x1,
                );
            }
            for r in &cfg.routes {
                words.push((u64::from(r.in_port) << 56) | (u64::from(r.out_port) << 48) | 0x2);
            }
            if let Some(s) = cfg.sync {
                words.push(
                    (u64::from(s.lanes) << 56)
                        | (u64::from(s.delay) << 40)
                        | (u64::from(s.group) << 32)
                        | 0x3,
                );
            }
        }
        words
    }

    /// Parses words back into per-component configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed word.
    pub fn from_words(words: &[u64]) -> Result<Bitstream, String> {
        let mut configs: BTreeMap<NodeId, NodeConfig> = BTreeMap::new();
        let mut i = 0usize;
        while i < words.len() {
            let header = words[i];
            i += 1;
            let node = NodeId::from_index((header >> 48) as usize);
            let payload = ((header >> 37) & 0xFF) as usize;
            if i + payload > words.len() {
                return Err(format!("truncated payload for node {node}"));
            }
            let cfg = configs.entry(node).or_default();
            for w in &words[i..i + payload] {
                match w & 0xF {
                    0x1 => cfg.instrs.push(InstrConfig {
                        opcode: (w >> 56) as u8,
                        operands: [(w >> 48) as u8, (w >> 40) as u8, (w >> 32) as u8],
                        delay: (w >> 24) as u8,
                        tag: (w >> 16) as u8,
                    }),
                    0x2 => cfg.routes.push(RouteConfig {
                        in_port: (w >> 56) as u8,
                        out_port: (w >> 48) as u8,
                    }),
                    0x3 => {
                        cfg.sync = Some(SyncConfig {
                            lanes: (w >> 56) as u8,
                            delay: ((w >> 40) & 0xFFFF) as u16,
                            group: (w >> 32) as u8,
                        });
                    }
                    tag => return Err(format!("unknown payload tag {tag:#x}")),
                }
            }
            i += payload;
        }
        Ok(Bitstream { configs })
    }

    /// Serializes to a byte buffer (big-endian words) for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let words = self.to_words();
        let mut buf = BytesMut::with_capacity(words.len() * 8);
        for w in words {
            buf.put_u64(w);
        }
        buf.freeze()
    }

    /// Total configuration words.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.to_words().len()
    }

    /// Opcode the discriminant decodes to, if valid.
    #[must_use]
    pub fn opcode_of(discriminant: u8) -> Option<Opcode> {
        Opcode::ALL
            .into_iter()
            .find(|op| *op as u8 == discriminant)
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    use dsagen_scheduler::{schedule, SchedulerConfig};

    use super::*;

    fn scheduled() -> (dsagen_adg::Adg, dsagen_dfg::CompiledKernel, Schedule) {
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 256, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let m = r.bin(Opcode::Mul, va, vb);
        let s = r.bin(Opcode::Add, m, vb);
        r.store(c, AffineExpr::var(i), s);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        let res = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(res.is_legal());
        (adg, ck, res.schedule)
    }

    #[test]
    fn encode_covers_used_components() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        // Two compute ops → at least one PE config with 2 instrs total.
        let instr_total: usize = bs.configs.values().map(|c| c.instrs.len()).sum();
        assert_eq!(instr_total, 2);
        // Some switches carry routes.
        assert!(bs.configs.values().any(|c| !c.routes.is_empty()));
        // Ports have sync configs.
        assert!(bs.configs.values().any(|c| c.sync.is_some()));
    }

    #[test]
    fn words_roundtrip() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        let words = bs.to_words();
        let decoded = Bitstream::from_words(&words).unwrap();
        assert_eq!(bs, decoded);
    }

    #[test]
    fn bytes_are_word_aligned() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        assert_eq!(bs.to_bytes().len(), bs.word_count() * 8);
    }

    #[test]
    fn truncated_words_error() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let words = Bitstream::encode(&problem, &sched).to_words();
        assert!(Bitstream::from_words(&words[..words.len() - 1]).is_err());
    }

    #[test]
    fn opcode_discriminants_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Bitstream::opcode_of(op as u8), Some(op));
        }
        assert_eq!(Bitstream::opcode_of(200), None);
    }

    #[test]
    fn timing_encode_programs_static_delays() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        // Re-evaluate to obtain timing facts.
        let eval = dsagen_scheduler::evaluate(
            &problem,
            &sched,
            &dsagen_scheduler::Weights::default(),
        );
        let bs = Bitstream::encode_with_timing(&problem, &sched, &eval);
        // The axpy add consumes the mul result and a port value — their
        // arrival times differ, so at least one static instruction carries
        // a nonzero balancing delay.
        let any_delay = bs
            .configs
            .values()
            .flat_map(|c| c.instrs.iter())
            .any(|i| i.delay > 0);
        assert!(any_delay, "expected a nonzero balancing delay");
        // And the result still roundtrips.
        let decoded = Bitstream::from_words(&bs.to_words()).unwrap();
        assert_eq!(bs, decoded);
    }

    #[test]
    fn operand_ports_recorded() {
        let (adg, ck, sched) = scheduled();
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &sched);
        // Every instruction has at least one routed operand.
        for cfg in bs.configs.values() {
            for i in &cfg.instrs {
                assert!(
                    i.operands.iter().any(|p| *p != 0xFF),
                    "instruction with no routed operands"
                );
            }
        }
    }
}
