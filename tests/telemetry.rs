//! Telemetry conservation-law and invisibility tests.
//!
//! Two contracts are verified here, across presets × workloads:
//!
//! 1. **Conservation laws** — the simulator's hardware counters account
//!    for every cycle exactly: per PE, `busy + stalled + idle == cycles`
//!    and the stall taxonomy sums to the stalled total; in aggregate the
//!    taxonomy ties out against the public [`StallBreakdown`] plus the
//!    barrier and configuration charges.
//! 2. **Invisibility** — enabling telemetry never changes functional
//!    outputs: the instrumented simulator returns the same report as the
//!    plain one, instrumented compilation picks the same version, and an
//!    instrumented DSE run reproduces the uninstrumented trace
//!    step-for-step.

use dsagen::prelude::*;
use dsagen::sim::{simulate, simulate_instrumented, SimConfig, SimTelemetry};
use dsagen::telemetry::{chrome_trace, Telemetry};
use proptest::prelude::*;

fn quick_opts() -> CompileOptions {
    CompileOptions {
        max_unroll: 4,
        scheduler: SchedulerConfig {
            max_iters: 150,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    }
}

/// The preset × workload matrix: three fabrics, five kernels.
fn presets() -> Vec<Adg> {
    vec![
        dsagen::adg::presets::softbrain(),
        dsagen::adg::presets::spu(),
        dsagen::adg::presets::revel(),
    ]
}

fn workloads() -> Vec<dsagen::dfg::Kernel> {
    vec![
        dsagen::workloads::polybench::mvt(),
        dsagen::workloads::polybench::atax(),
        dsagen::workloads::machsuite::mm(),
        dsagen::workloads::dsp::fir16(),
        dsagen::workloads::sparse::histogram(),
    ]
}

/// Runs both simulators and checks every conservation law for one
/// (adg, compiled) pair. Returns the telemetry for extra checks.
fn check_conservation(adg: &Adg, compiled: &dsagen::Compiled) -> SimTelemetry {
    let cfg = SimConfig::default();
    let plain = simulate(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &cfg,
    )
    .expect("healthy fabric simulates");
    let tel = Telemetry::in_memory();
    let (report, hw) = simulate_instrumented(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &cfg,
        &tel,
    )
    .expect("healthy fabric simulates");

    // Invisibility: the instrumented run returns the plain report.
    assert_eq!(report, plain, "instrumentation changed the simulation");
    assert_eq!(hw.cycles, report.cycles);

    // Per-PE conservation: busy + stalled + idle == cycles, and the
    // taxonomy sums to the stalled total.
    for pe in &hw.pes {
        assert_eq!(
            pe.busy + pe.stalled + pe.idle,
            pe.cycles,
            "PE {} on {}: busy {} + stalled {} + idle {} != cycles {}",
            pe.node,
            adg.name(),
            pe.busy,
            pe.stalled,
            pe.idle,
            pe.cycles
        );
        assert_eq!(
            pe.stalls.total(),
            pe.stalled,
            "PE {} taxonomy does not sum to its stalled total",
            pe.node
        );
        assert!(pe.utilization() <= 1.0 + 1e-9);
    }

    // Aggregate conservation: the taxonomy ties out against the public
    // stall breakdown plus the barrier and configuration charges.
    let s = &report.stalls;
    assert_eq!(hw.taxonomy.memory, s.memory);
    assert_eq!(hw.taxonomy.operand_wait, s.operands);
    assert_eq!(hw.taxonomy.backpressure, s.backpressure);
    assert_eq!(hw.taxonomy.ii, s.ii);
    assert_eq!(hw.taxonomy.ctrl, s.ctrl);
    assert_eq!(hw.taxonomy.barrier, hw.barrier_cycles);
    assert_eq!(hw.taxonomy.config, hw.config_cycles);
    assert_eq!(
        hw.taxonomy.total(),
        s.memory + s.operands + s.backpressure + s.ii + s.ctrl + hw.barrier_cycles + hw.config_cycles,
    );

    // Per-region tallies are exclusive per cycle, so they cannot exceed
    // their group's timeline.
    for (ri, tally) in hw.region_tallies.iter().enumerate() {
        let group_cycles = hw.group_cycles.get(tally.group).copied().unwrap_or(0);
        assert!(
            tally.fired_cycles + tally.ii + tally.operands + tally.backpressure <= group_cycles,
            "region {ri} tally exceeds its group timeline"
        );
    }

    // Stream counters stay within capacity.
    for st in &hw.streams {
        if st.fifo_cap > 0.0 {
            assert!(
                st.fifo_highwater <= st.fifo_cap + 1e-9,
                "stream {}/{} high-water {} exceeds capacity {}",
                st.region,
                st.index,
                st.fifo_highwater,
                st.fifo_cap
            );
        }
        assert!(st.occupancy_peak() <= 1.0 + 1e-9);
    }

    // The run emitted a simulate span.
    assert!(
        tel.events().iter().any(|e| e.name == "simulate"),
        "no simulate span emitted"
    );
    hw
}

#[test]
fn conservation_laws_hold_across_presets_and_workloads() {
    let opts = quick_opts();
    let mut ran = 0;
    let mut with_pes = 0;
    for adg in presets() {
        for kernel in workloads() {
            let Ok(compiled) = dsagen::compile(&adg, &kernel, &opts) else {
                // A fabric with no legal version for this kernel is
                // allowed (e.g. missing feature class); the floor below
                // keeps the matrix honest.
                continue;
            };
            let hw = check_conservation(&adg, &compiled);
            // Some kernels (e.g. pure scatter/update loops) legitimately
            // map no entities onto PEs; most of the matrix must.
            if !hw.pes.is_empty() {
                with_pes += 1;
            }
            ran += 1;
        }
    }
    assert!(ran >= 10, "only {ran}/15 preset x workload pairs ran");
    assert!(with_pes >= 8, "only {with_pes}/{ran} runs produced PE counters");
}

#[test]
fn instrumented_compile_is_invisible_and_produces_loadable_trace() {
    let adg = dsagen::adg::presets::softbrain();
    let kernel = dsagen::workloads::polybench::mvt();
    let opts = quick_opts();

    let plain = dsagen::compile(&adg, &kernel, &opts).expect("mvt compiles on softbrain");
    let tel = Telemetry::in_memory();
    let traced = dsagen::compile_traced(&adg, &kernel, &opts, &tel).expect("traced compile");

    // Invisibility: identical winner (the Debug form captures every field).
    assert_eq!(format!("{traced:?}"), format!("{plain:?}"));

    // The phase spans landed: compile, config-paths, schedule, model.
    let events = tel.events();
    let compile_span = format!("compile {}", kernel.name);
    for phase in [compile_span.as_str(), "config-paths", "schedule", "model"] {
        assert!(
            events.iter().any(|e| e.cat == "phase" && e.name == phase),
            "missing phase span {phase}"
        );
    }

    // The Chrome-trace export is loadable JSON: one traceEvents array,
    // balanced braces, span events carrying durations.
    let trace = chrome_trace(&events);
    assert!(trace.starts_with("{\n\"traceEvents\": ["), "{trace}");
    assert!(trace.trim_end().ends_with('}'), "{trace}");
    let opens = trace.matches('{').count();
    let closes = trace.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in chrome trace");
    assert!(trace.contains("\"ph\": \"X\""), "no complete (span) events");
}

#[test]
fn attribution_report_joins_model_and_simulation() {
    let adg = dsagen::adg::presets::softbrain();
    let opts = quick_opts();
    let tel = Telemetry::in_memory();
    let mut rows = Vec::new();
    for kernel in [
        dsagen::workloads::polybench::mvt(),
        dsagen::workloads::machsuite::mm(),
    ] {
        let compiled = dsagen::compile_traced(&adg, &kernel, &opts, &tel).expect("compiles");
        rows.push(
            attribute(&adg, &kernel.name, &compiled, &SimConfig::default(), &tel)
                .expect("healthy fabric simulates"),
        );
    }
    for row in &rows {
        assert!(row.measured_cycles > 0);
        assert!(row.error.is_finite());
        assert!(!row.regions.is_empty());
        assert!((0.0..=1.0).contains(&row.agreement_rate()));
        // The JSON artifact is balanced.
        let json = row.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
    let table = dsagen::attribution::attribution_table(&rows);
    assert!(table.contains("mvt"), "{table}");
    assert!(table.contains("mm"), "{table}");
    assert!(table.contains("err%"), "{table}");
    // Attribution events were emitted alongside the phase spans.
    assert!(tel.events().iter().any(|e| e.cat == "attribution"));
}

#[test]
fn dse_telemetry_is_invisible_and_timeline_folds_the_trace() {
    use dsagen::dse::{DseConfig, DseTimeline, Explorer};
    let kernels = vec![
        dsagen::workloads::polybench::mvt(),
        dsagen::workloads::dsp::fir16(),
    ];
    let cfg = DseConfig {
        max_iters: 8,
        patience: 8,
        sched_iters: 40,
        max_unroll: 2,
        shards: 2,
        threads: 2,
        ..DseConfig::default()
    };
    let adg = dsagen::adg::presets::dse_initial();

    let plain = Explorer::new(adg.clone(), &kernels, cfg).run();
    let tel = Telemetry::in_memory();
    let mut ex = Explorer::new(adg, &kernels, cfg).with_telemetry(tel.clone());
    let traced = ex.run();

    // Invisibility: identical traces (IterRecord equality ignores only
    // wall_ms) and identical winner.
    assert_eq!(traced.trace, plain.trace);
    assert_eq!(traced.shard_traces, plain.shard_traces);
    assert_eq!(traced.best.objective, plain.best.objective);
    assert_eq!(traced.best_adg, plain.best_adg);

    // The dse span and per-iteration events landed.
    let events = tel.events();
    assert!(events.iter().any(|e| e.cat == "phase" && e.name == "dse"));
    let iters = events.iter().filter(|e| e.cat == "dse" && e.name == "iteration").count();
    let expected: usize = traced.shard_traces.iter().map(Vec::len).sum();
    assert_eq!(iters, expected, "one iteration event per trace record");

    // The timeline folds the trace: totals agree with the records.
    let timeline = DseTimeline::from_result(&traced, ex.telemetry_snapshot());
    assert_eq!(timeline.iters, traced.trace.len());
    assert_eq!(
        timeline.accepted,
        traced.trace.iter().filter(|r| r.accepted).count()
    );
    assert_eq!(timeline.shards.len(), traced.shard_traces.len());
    let rendered = timeline.render();
    assert!(rendered.contains("DSE timeline"), "{rendered}");
    assert!(rendered.contains("shard"), "{rendered}");
    let json = timeline.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"shards\":["), "{json}");
}

#[test]
fn explorer_stats_aggregate_across_shards() {
    use dsagen::dse::{DseConfig, Explorer};
    let kernels = vec![dsagen::workloads::polybench::mvt()];
    let cfg = DseConfig {
        max_iters: 6,
        patience: 6,
        sched_iters: 40,
        max_unroll: 2,
        shards: 3,
        threads: 2,
        ..DseConfig::default()
    };
    let mut ex = Explorer::new(dsagen::adg::presets::dse_initial(), &kernels, cfg);
    let before = ex.telemetry_snapshot();
    let result = ex.run();
    let after = ex.telemetry_snapshot();
    let delta = after.delta_since(&before);

    // The run did real work, and all three getters read from the same
    // aggregated counters the snapshot exposes.
    assert!(delta.sched_invocations > 0);
    assert!(result.trace.len() > 1);
    assert_eq!(after.sched_invocations, ex.sched_invocations());
    assert_eq!(after.config_rejections, ex.config_rejections());
    assert_eq!(after.cache.lookups(), ex.cache_stats().lookups());

    // Shard-aggregation: the whole-run work counters are at least the
    // winning shard's trace totals (other shards add on top).
    let trace_passes: u64 = result.trace.iter().map(|r| r.sched_passes).sum();
    assert!(
        delta.sched_invocations >= trace_passes,
        "aggregate {} < winning shard {}",
        delta.sched_invocations,
        trace_passes
    );
}

/// Sharded DSE with the metrics registry and flight recorder on is
/// bit-identical to a plain run, and the merged registry snapshot is
/// itself (seed, shards)-deterministic: the same exploration at a
/// different executor width merges to the identical snapshot.
#[test]
fn dse_metrics_and_recorder_are_invisible_and_merge_deterministically() {
    use dsagen::dse::{DseConfig, Explorer};
    use dsagen::telemetry::{FlightRecorder, MetricsRegistry};
    let kernels = vec![
        dsagen::workloads::polybench::mvt(),
        dsagen::workloads::dsp::fir16(),
    ];
    let cfg = DseConfig {
        max_iters: 8,
        patience: 8,
        sched_iters: 40,
        max_unroll: 2,
        shards: 2,
        threads: 2,
        ..DseConfig::default()
    };
    let adg = dsagen::adg::presets::dse_initial();

    let plain = Explorer::new(adg.clone(), &kernels, cfg).run();

    let run_observed = |threads: usize| {
        let reg = MetricsRegistry::enabled();
        let tel = Telemetry::in_memory()
            .with_metrics(reg.clone())
            .with_recorder(FlightRecorder::enabled());
        let cfg = DseConfig { threads, ..cfg };
        let recorder = tel.recorder().clone();
        let mut ex = Explorer::new(adg.clone(), &kernels, cfg).with_telemetry(tel);
        let result = ex.run();
        (result, reg.snapshot(), recorder)
    };
    let (observed, snap2, recorder) = run_observed(2);

    // Invisibility: identical traces and identical winner.
    assert_eq!(observed.trace, plain.trace);
    assert_eq!(observed.shard_traces, plain.shard_traces);
    assert_eq!(observed.best.objective.to_bits(), plain.best.objective.to_bits());
    assert_eq!(observed.best_adg, plain.best_adg);

    // The registry saw the exploration: per-shard counters were merged.
    let iters: usize = observed.shard_traces.iter().map(Vec::len).sum();
    assert_eq!(snap2.counter("dse.iterations"), Some(iters as u64));
    assert!(snap2.counter("dse.sched_invocations").unwrap_or(0) > 0);
    // The recorder ring holds structured events (cache decisions and
    // rejections both count); a bounded ring is allowed to be shorter
    // than the run, never required to be empty here.
    assert!(
        !recorder.is_empty(),
        "flight recorder saw no cache/rejection events across {iters} iterations"
    );

    // Determinism of the merge: a serial executor produces the identical
    // snapshot, so counters depend on (seed, shards), not thread timing.
    let (serial, snap1, _) = run_observed(1);
    assert_eq!(serial.trace, plain.trace);
    assert_eq!(snap1, snap2, "metrics merge depends on executor width");
}

proptest! {
    // Each case compiles + simulates twice; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Enabling telemetry never changes functional outputs, for any
    /// scheduler seed: same chosen version, same schedule, same simulated
    /// report.
    #[test]
    fn telemetry_is_invisible_for_any_seed(seed in any::<u64>()) {
        let adg = dsagen::adg::presets::softbrain();
        let kernel = dsagen::workloads::polybench::bicg();
        let opts = CompileOptions {
            max_unroll: 2,
            scheduler: SchedulerConfig { max_iters: 60, seed, ..SchedulerConfig::default() },
            ..CompileOptions::default()
        };
        let plain = dsagen::compile(&adg, &kernel, &opts);
        let tel = Telemetry::in_memory();
        let traced = dsagen::compile_traced(&adg, &kernel, &opts, &tel);
        match (plain, traced) {
            (Ok(p), Ok(t)) => {
                prop_assert_eq!(format!("{:?}", &t), format!("{:?}", &p));
                let cfg = SimConfig::default();
                let plain_report = simulate(
                    &adg, &p.version, &p.schedule, &p.eval, p.config_path_len, &cfg,
                );
                let traced_result = simulate_instrumented(
                    &adg, &t.version, &t.schedule, &t.eval, t.config_path_len, &cfg, &tel,
                );
                match (plain_report, traced_result) {
                    (Ok(pr), Ok((tr, _))) => prop_assert_eq!(tr, pr),
                    (Err(pe), Err(te)) => prop_assert_eq!(format!("{te}"), format!("{pe}")),
                    (pr, tr) => prop_assert!(
                        false,
                        "sim divergence: plain {:?} vs traced {:?}",
                        pr.is_ok(),
                        tr.is_ok()
                    ),
                }
            }
            (Err(p), Err(t)) => prop_assert_eq!(format!("{t}"), format!("{p}")),
            (p, t) => prop_assert!(false, "divergence: plain {:?} vs traced {:?}", p.is_ok(), t.is_ok()),
        }
    }

    /// The other two observability pillars are invisible too: with the
    /// metrics registry and flight recorder enabled (event sink off),
    /// the simulated report — firing traces included — is bit-identical
    /// for any scheduler seed, and the engine counters actually landed.
    #[test]
    fn metrics_and_recorder_are_invisible_for_any_seed(seed in any::<u64>()) {
        use dsagen::telemetry::{FlightRecorder, MetricsRegistry};
        let adg = dsagen::adg::presets::softbrain();
        let kernel = dsagen::workloads::polybench::bicg();
        let opts = CompileOptions {
            max_unroll: 2,
            scheduler: SchedulerConfig { max_iters: 60, seed, ..SchedulerConfig::default() },
            ..CompileOptions::default()
        };
        let Ok(c) = dsagen::compile(&adg, &kernel, &opts) else {
            return Ok(()); // unmappable under this seed: nothing to compare
        };
        let cfg = SimConfig::default();
        let plain = simulate(&adg, &c.version, &c.schedule, &c.eval, c.config_path_len, &cfg)
            .expect("compiled schedule simulates");
        let reg = MetricsRegistry::enabled();
        let tel = Telemetry::disabled()
            .with_metrics(reg.clone())
            .with_recorder(FlightRecorder::enabled());
        let (observed, _) = simulate_instrumented(
            &adg, &c.version, &c.schedule, &c.eval, c.config_path_len, &cfg, &tel,
        )
        .expect("instrumented run simulates");
        prop_assert_eq!(observed, plain); // SimReport equality covers firings
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("sim.engine.runs"), Some(1));
        prop_assert!(snap.counter("sim.engine.ticks").unwrap_or(0) > 0);
    }
}
