//! Corruption matrix: every config-plane fault kind crossed with paper
//! workloads and multiple seeds, driven through the CRC-framed
//! programming session.
//!
//! Contract under injection:
//!
//! - **No panics.** Every session runs to a terminal state no matter what
//!   the channel does to the framed words.
//! - **Transient faults recover.** A fault injected only on the first
//!   round is healed by selective retransmission within the retry budget
//!   and the session ends [`SessionState::Verified`].
//! - **Persistent faults degrade gracefully.** A channel that corrupts
//!   every round either still converges (when the corruption is benign,
//!   e.g. reordering of self-sequenced frames) or fails *typed*: the
//!   report carries a [`SessionError`] and names the unreachable nodes.
//!
//! The second half of the file is the **runtime-fault recovery matrix**:
//! mid-execution fabric faults (dead PE arriving while streams are in
//! flight) crossed with every simulating preset and ≥5 workloads, driven
//! through the full `detect → checkpoint rollback → repair → verified
//! reprogramming → resume` pipeline. Contract:
//!
//! - **Transient faults fully recover.** Detected within the watchdog
//!   bound, rolled back, and the final firings equal the fault-free run.
//! - **Permanent faults recover or fail typed.** Either the victim is
//!   decommissioned and the schedule repaired + reprogrammed (firings
//!   again equal fault-free), or a typed [`dsagen::RecoveryError`] names
//!   the reason. Never a panic.
//!
//! The seed set is overridable via `DSAGEN_CORRUPTION_SEED` — see
//! [`seeds`] — so CI can shard the matrix across jobs.

use std::error::Error;

use dsagen::adg::presets;
use dsagen::dfg::{compile_kernel, Kernel, TransformConfig};
use dsagen::faults::{corrupt_frames, FaultKind, FaultPlan};
use dsagen::hwgen::{
    verify_round_trip, Bitstream, ProgrammingSession, SessionConfig, SessionState,
};
use dsagen::scheduler::{schedule, Problem, SchedulerConfig};
use dsagen::workloads::{machsuite, polybench};

type TestResult = Result<(), Box<dyn Error>>;

/// Seeds for the corruption matrix. `DSAGEN_CORRUPTION_SEED=<u64>`
/// narrows the run to a single seed so CI can fan the matrix out.
fn seeds() -> Vec<u64> {
    match std::env::var("DSAGEN_CORRUPTION_SEED") {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(v) => vec![v],
            Err(_) => vec![0xC0FFEE, 11, 2024],
        },
        Err(_) => vec![0xC0FFEE, 11, 2024],
    }
}

fn workloads() -> Vec<(&'static str, Kernel)> {
    vec![
        ("mvt", polybench::mvt()),
        ("mm", machsuite::mm()),
        ("atax", polybench::atax()),
        ("bicg", polybench::bicg()),
        ("spmv-crs", machsuite::spmv_crs()),
    ]
}

/// Workloads for the runtime-fault matrix: same breadth (≥5 kernels),
/// but the large gemm is shrunk so the cycle-accurate replay stays fast
/// in debug builds.
fn rt_workloads() -> Vec<(&'static str, Kernel)> {
    vec![
        ("mvt", polybench::mvt()),
        ("mm16", machsuite::gemm_kernel("mm16", 16)),
        ("atax", polybench::atax()),
        ("bicg", polybench::bicg()),
        ("spmv-crs", machsuite::spmv_crs()),
    ]
}

/// Encodes one scheduled workload to its configuration bitstream.
fn encode_workload(kernel: &Kernel, seed: u64) -> Result<Bitstream, Box<dyn Error>> {
    let adg = presets::softbrain();
    let ck = compile_kernel(kernel, &TransformConfig::fallback(), &adg.features())?;
    let cfg = SchedulerConfig {
        max_iters: 60,
        seed,
        ..SchedulerConfig::default()
    };
    let s = schedule(&adg, &ck, &cfg);
    let problem = Problem::new(&adg, &ck);
    // The encoder side must round-trip before we bother delivering it.
    let token = verify_round_trip(&problem, &s.schedule)?;
    assert!(token.word_count() > 0, "non-empty configuration");
    Ok(Bitstream::encode(&problem, &s.schedule))
}

/// A fault injected on the first round only must be healed by the retry
/// machinery: the session ends Verified within the budget, and detected
/// corruption shows up in the counters rather than in the payload.
#[test]
fn transient_config_plane_faults_recover() -> TestResult {
    for seed in seeds() {
        for (name, kernel) in workloads() {
            let bs = encode_workload(&kernel, seed)?;
            for (ki, kind) in FaultKind::CONFIG_PLANE.into_iter().enumerate() {
                let plan = FaultPlan::new(seed ^ (ki as u64) << 8).with(kind);
                let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
                let report = session.program(|round, framed| {
                    if round == 0 {
                        corrupt_frames(framed, &plan).0
                    } else {
                        framed.to_vec()
                    }
                });
                assert!(
                    report.is_verified(),
                    "{name} seed={seed} {kind}: transient fault must recover, got {report}"
                );
                assert_eq!(session.state(), SessionState::Verified);
                assert!(
                    report.attempts <= 1 + SessionConfig::default().max_retries,
                    "{name} seed={seed} {kind}: attempts {} over budget",
                    report.attempts
                );
                assert!(
                    report.unreachable_nodes.is_empty(),
                    "{name} seed={seed} {kind}: verified session left unreachable nodes"
                );
                if kind == FaultKind::BitFlip {
                    assert!(
                        report.crc_failures >= 1,
                        "{name} seed={seed}: a bit flip must trip the CRC"
                    );
                }
            }
        }
    }
    Ok(())
}

/// A channel that corrupts *every* round can exhaust the retry budget.
/// The session must still terminate, and a failure must be typed: an
/// error in the report plus the set of nodes left unprogrammed.
#[test]
fn persistent_config_plane_faults_fail_typed() -> TestResult {
    for seed in seeds() {
        for (name, kernel) in workloads() {
            let bs = encode_workload(&kernel, seed)?;
            for (ki, kind) in FaultKind::CONFIG_PLANE.into_iter().enumerate() {
                let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
                let report = session.program(|round, framed| {
                    let plan =
                        FaultPlan::new(seed ^ (ki as u64) << 8 ^ u64::from(round)).with(kind);
                    corrupt_frames(framed, &plan).0
                });
                match report.state {
                    SessionState::Verified => {
                        // Benign persistent corruption (e.g. reordering of
                        // self-sequenced frames, idempotent duplicates)
                        // converges anyway; the counters must still show
                        // the channel was not clean when frames were
                        // dropped or damaged.
                        assert!(report.error.is_none());
                    }
                    SessionState::Failed => {
                        let err = report.error.as_ref().ok_or_else(|| {
                            format!("{name} seed={seed} {kind}: failed without a typed error")
                        })?;
                        assert!(
                            !err.to_string().is_empty(),
                            "{name} seed={seed} {kind}: error must render"
                        );
                        assert!(
                            !report.unreachable_nodes.is_empty()
                                || !matches!(
                                    err,
                                    dsagen::hwgen::SessionError::Undelivered { .. }
                                ),
                            "{name} seed={seed} {kind}: undelivered failure must name nodes"
                        );
                    }
                    other => {
                        return Err(format!(
                            "{name} seed={seed} {kind}: non-terminal state {other}"
                        )
                        .into())
                    }
                }
            }
        }
    }
    Ok(())
}

/// Structural fault kinds aimed at a word stream are skipped with a
/// typed reason, never applied and never a panic — the config plane and
/// the fabric plane stay disjoint end to end.
#[test]
fn structural_kinds_never_touch_the_stream() -> TestResult {
    let seed = seeds()[0];
    let (_, kernel) = workloads().swap_remove(0);
    let bs = encode_workload(&kernel, seed)?;
    let words = bs.to_words();
    for kind in FaultKind::ALL {
        let plan = FaultPlan::new(seed).with(kind);
        let (out, report) = corrupt_frames(&words, &plan);
        assert_eq!(out, words, "{kind}: structural kind must not alter words");
        assert!(!report.any_applied(), "{kind}: must be skipped");
        assert_eq!(report.skipped.len(), 1, "{kind}: skip must be recorded");
    }
    Ok(())
}

/// A zero-retry budget turns any detected corruption into an immediate,
/// typed failure — the degenerate end of graceful degradation.
#[test]
fn zero_retry_budget_fails_loud_not_wrong() -> TestResult {
    let seed = seeds()[0];
    let (name, kernel) = workloads().swap_remove(0);
    let bs = encode_workload(&kernel, seed)?;
    let plan = FaultPlan::new(seed).with(FaultKind::BitFlip);
    let cfg = SessionConfig {
        max_retries: 0,
        ..SessionConfig::default()
    };
    let mut session = ProgrammingSession::new(&bs, cfg);
    let report = session.program(|_, framed| corrupt_frames(framed, &plan).0);
    assert_eq!(
        report.state,
        SessionState::Failed,
        "{name}: no retries, flipped bit must fail: {report}"
    );
    assert!(report.error.is_some());
    assert_eq!(report.attempts, 1);
    assert!(
        !report.unreachable_nodes.is_empty(),
        "{name}: the starved node must be reported"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Runtime-fault recovery matrix: mid-execution fabric faults across every
// simulating preset × ≥5 workloads × the seed set.
// ---------------------------------------------------------------------------

use dsagen::adg::Adg;
use dsagen::faults::{FaultLifetime, FaultSchedule};
use dsagen::sim::{try_simulate, RecoveryAction, RecoveryPolicy, SimConfig};
use dsagen::{compile, recover, CompileOptions, Compiled};

fn rt_presets() -> Vec<(&'static str, Adg)> {
    vec![
        ("softbrain", presets::softbrain()),
        ("spu", presets::spu()),
        ("revel", presets::revel()),
    ]
}

/// Compiles one runtime-matrix cell; unroll is capped to keep the
/// cycle-accurate replay affordable in debug builds.
fn rt_compile(adg: &Adg, kernel: &Kernel, seed: u64) -> Result<Compiled, Box<dyn Error>> {
    let opts = CompileOptions {
        max_unroll: 2,
        scheduler: SchedulerConfig {
            seed,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    };
    Ok(compile(adg, kernel, &opts)?)
}

/// A transient dead PE arriving one third into the run is detected by the
/// watchdog within its bound, rolled back, and the run completes with
/// firings identical to the fault-free baseline — on every preset, every
/// workload, every seed.
#[test]
fn transient_runtime_pe_fault_recovers_on_every_preset() -> TestResult {
    let policy = RecoveryPolicy::default();
    let tel = dsagen::telemetry::Telemetry::disabled();
    for seed in seeds() {
        for (pname, adg) in rt_presets() {
            for (kname, kernel) in rt_workloads() {
                let compiled = rt_compile(&adg, &kernel, seed)?;
                let cfg = SimConfig::default();
                let plain = try_simulate(
                    &adg,
                    &compiled.version,
                    &compiled.schedule,
                    &compiled.eval,
                    compiled.config_path_len,
                    &cfg,
                )?;
                let arrival = (plain.cycles / 3).max(1);
                // Outage longer than the watchdog bound => detection is
                // guaranteed; the detected fault is consumed, so the
                // rolled-back replay runs clean.
                let faults = FaultSchedule::new(seed).with(
                    arrival,
                    FaultLifetime::Transient { duration: 1024 },
                    FaultKind::DeadPe,
                );
                let rep = recover(&adg, &compiled, &cfg, &faults, &policy, &tel).map_err(
                    |e| format!("{pname}/{kname} seed={seed}: transient must recover: {e}"),
                )?;
                assert!(
                    !rep.events.is_empty(),
                    "{pname}/{kname} seed={seed}: the fault must be detected"
                );
                for ev in &rep.events {
                    assert!(
                        ev.detection_latency <= policy.rt.watchdog_bound,
                        "{pname}/{kname} seed={seed}: detection latency {} over the \
watchdog bound {}",
                        ev.detection_latency,
                        policy.rt.watchdog_bound
                    );
                }
                assert_eq!(
                    rep.report.firings, plain.firings,
                    "{pname}/{kname} seed={seed}: recovered firings must equal fault-free"
                );
                assert!(
                    rep.total_cycles >= plain.cycles,
                    "{pname}/{kname} seed={seed}: recovery cannot be faster than fault-free"
                );
            }
        }
    }
    Ok(())
}

/// The `residue_eager` column of the runtime matrix: every cell is run
/// against a transient stuck lane — *silent* corruption, the residue
/// detector's fault class — twice, with the residue check at interval
/// boundaries (the default) and on every cycle (`residue_eager`).
///
/// Contract for the column:
///
/// - **Both modes recover.** Detected, rolled back past the corruption
///   onset, and the final firings equal the fault-free run.
/// - **Eager is never slower.** Per cell, the eager detection latency is
///   bounded by the interval-mode latency, and both respect the
///   documented `residue_interval` bound.
/// - **Eager is measurably faster.** Across the matrix the mean latency
///   must drop — the detection side of the latency-vs-throughput
///   tradeoff `residue_eager` buys (the check runs every cycle instead
///   of once per epoch). The measured means are printed for DESIGN.md.
#[test]
fn residue_eager_column_detects_silent_corruption_faster() -> TestResult {
    let tel = dsagen::telemetry::Telemetry::disabled();
    let mut lat = [0u64; 2]; // [interval, eager] latency sums
    let mut cells = 0u64;
    let mut strictly_faster = 0u64;
    for seed in seeds() {
        for (pname, adg) in rt_presets() {
            for (kname, kernel) in rt_workloads() {
                let compiled = rt_compile(&adg, &kernel, seed)?;
                let cfg = SimConfig::default();
                let plain = try_simulate(
                    &adg,
                    &compiled.version,
                    &compiled.schedule,
                    &compiled.eval,
                    compiled.config_path_len,
                    &cfg,
                )?;
                let arrival = (plain.cycles / 3).max(1);
                let faults = FaultSchedule::new(seed).with(
                    arrival,
                    FaultLifetime::Transient { duration: 1024 },
                    FaultKind::StuckLane,
                );
                let mut cell = [0u64; 2];
                for (col, eager) in [(0usize, false), (1usize, true)] {
                    let policy = RecoveryPolicy {
                        rt: dsagen::sim::RuntimeConfig {
                            residue_eager: eager,
                            ..dsagen::sim::RuntimeConfig::default()
                        },
                        ..RecoveryPolicy::default()
                    };
                    let rep = recover(&adg, &compiled, &cfg, &faults, &policy, &tel)
                        .map_err(|e| {
                            format!("{pname}/{kname} seed={seed} eager={eager}: {e}")
                        })?;
                    assert_eq!(
                        rep.report.firings, plain.firings,
                        "{pname}/{kname} seed={seed} eager={eager}: silent corruption \
must be rolled back, not delivered"
                    );
                    assert!(
                        !rep.events.is_empty(),
                        "{pname}/{kname} seed={seed} eager={eager}: a stuck lane on a \
routed link must be detected"
                    );
                    for ev in &rep.events {
                        assert!(
                            ev.detection_latency <= policy.rt.residue_interval,
                            "{pname}/{kname} seed={seed} eager={eager}: latency {} over \
the residue bound {}",
                            ev.detection_latency,
                            policy.rt.residue_interval
                        );
                    }
                    cell[col] = rep.events.iter().map(|e| e.detection_latency).sum();
                }
                assert!(
                    cell[1] <= cell[0],
                    "{pname}/{kname} seed={seed}: eager detection ({}) slower than \
interval-mode ({})",
                    cell[1],
                    cell[0]
                );
                lat[0] += cell[0];
                lat[1] += cell[1];
                strictly_faster += u64::from(cell[1] < cell[0]);
                cells += 1;
            }
        }
    }
    println!(
        "residue column: mean detection latency interval={:.1} eager={:.1} cycles \
over {cells} cells ({strictly_faster} strictly faster)",
        lat[0] as f64 / cells as f64,
        lat[1] as f64 / cells as f64,
    );
    assert!(
        strictly_faster > 0,
        "eager residue checking never beat interval mode anywhere in the matrix"
    );
    Ok(())
}

/// A permanent dead PE either recovers — victim decommissioned, schedule
/// repaired on the degraded fabric, configuration re-verified and
/// reprogrammed, firings equal to fault-free — or fails *typed* with a
/// rendering [`dsagen::RecoveryError`]. Never a panic, on any cell of the
/// matrix.
#[test]
fn permanent_runtime_pe_fault_repairs_or_fails_typed() -> TestResult {
    let policy = RecoveryPolicy::default();
    let tel = dsagen::telemetry::Telemetry::disabled();
    let mut recovered = 0usize;
    let mut cells = 0usize;
    for seed in seeds() {
        for (pname, adg) in rt_presets() {
            for (kname, kernel) in rt_workloads() {
                let compiled = rt_compile(&adg, &kernel, seed)?;
                let cfg = SimConfig::default();
                let plain = try_simulate(
                    &adg,
                    &compiled.version,
                    &compiled.schedule,
                    &compiled.eval,
                    compiled.config_path_len,
                    &cfg,
                )?;
                let arrival = (plain.cycles / 3).max(1);
                let faults = FaultSchedule::new(seed).with(
                    arrival,
                    FaultLifetime::Permanent,
                    FaultKind::DeadPe,
                );
                cells += 1;
                match recover(&adg, &compiled, &cfg, &faults, &policy, &tel) {
                    Ok(rep) => {
                        recovered += 1;
                        assert_eq!(
                            rep.report.firings, plain.firings,
                            "{pname}/{kname} seed={seed}: repaired run must match fault-free"
                        );
                        // A permanent victim cannot be resumed onto: the
                        // recovery must have gone through the repair +
                        // reprogram path (or the fault resolved to nothing
                        // on this schedule, in which case no event fired).
                        for ev in &rep.events {
                            assert!(
                                matches!(ev.action, RecoveryAction::Repaired { .. }),
                                "{pname}/{kname} seed={seed}: permanent fault recovered \
without repair: {:?}",
                                ev.action
                            );
                            assert!(ev.reprogram_cycles > 0);
                        }
                    }
                    Err(e) => {
                        // Typed, rendering failure — the accepted outcome
                        // when the degraded fabric can no longer host the
                        // kernel.
                        assert!(
                            !e.to_string().is_empty(),
                            "{pname}/{kname} seed={seed}: error must render"
                        );
                    }
                }
            }
        }
    }
    // The matrix must not degenerate into all-failures: the repair path
    // has to demonstrably work on a majority of cells.
    assert!(
        recovered * 2 > cells,
        "only {recovered}/{cells} permanent faults recovered"
    );
    Ok(())
}
