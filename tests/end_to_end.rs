//! Workspace integration tests: full compile → schedule → model → simulate
//! flows across crates.

use dsagen::prelude::*;
use dsagen::sim::{simulate, SimConfig};

fn quick_opts() -> CompileOptions {
    CompileOptions {
        max_unroll: 4,
        scheduler: SchedulerConfig {
            max_iters: 200,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    }
}

fn compile_and_sim(adg: &Adg, kernel: &dsagen::dfg::Kernel) -> (dsagen::Compiled, u64) {
    let compiled = dsagen::compile(adg, kernel, &quick_opts())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, adg.name()));
    let report = simulate(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, adg.name()));
    (compiled, report.cycles)
}

#[test]
fn mm_on_softbrain_vectorizes_and_simulates() {
    let adg = dsagen::adg::presets::softbrain();
    let kernel = dsagen::workloads::machsuite::mm();
    let (compiled, cycles) = compile_and_sim(&adg, &kernel);
    // Dense mm should pick an unrolled version on a 16-PE fabric.
    assert!(compiled.version.config.unroll >= 2);
    // 64^3 MACs: at best instances = 64^3 / unroll cycles.
    let min_cycles = 64u64 * 64 * 64 / u64::from(compiled.version.config.unroll);
    assert!(cycles >= min_cycles / 2);
    assert!(cycles <= min_cycles * 8, "cycles {cycles} vs min {min_cycles}");
}

#[test]
fn join_uses_stream_join_on_spu_but_not_softbrain() {
    let kernel = dsagen::workloads::sparse::join();
    let spu = dsagen::adg::presets::spu();
    let (on_spu, spu_cycles) = compile_and_sim(&spu, &kernel);
    assert!(on_spu.version.config.stream_join);

    let soft = dsagen::adg::presets::softbrain();
    let (on_soft, soft_cycles) = compile_and_sim(&soft, &kernel);
    assert!(!on_soft.version.config.stream_join);
    assert!(
        spu_cycles * 2 < soft_cycles,
        "stream-join hardware should win: spu {spu_cycles} vs softbrain {soft_cycles}"
    );
}

#[test]
fn histogram_uses_atomic_update_on_spu() {
    let kernel = dsagen::workloads::sparse::histogram();
    let spu = dsagen::adg::presets::spu();
    let (compiled, spu_cycles) = compile_and_sim(&spu, &kernel);
    assert!(compiled.version.config.indirect);
    assert!(compiled.version.config.atomic_update);

    let soft = dsagen::adg::presets::softbrain();
    let (fallback, soft_cycles) = compile_and_sim(&soft, &kernel);
    assert!(!fallback.version.config.atomic_update);
    assert!(spu_cycles < soft_cycles);
}

#[test]
fn qr_pipelines_producer_consumer() {
    let adg = dsagen::adg::presets::revel();
    let kernel = dsagen::workloads::dsp::qr();
    let (compiled, cycles) = compile_and_sim(&adg, &kernel);
    assert!(compiled.version.config.forward);
    assert!(compiled.version.regions[0].pipelined_with_next);
    assert!(cycles > 0);
}

#[test]
fn model_tracks_simulation_across_dense_workloads() {
    // Fig 15 bottom: the performance model should track the simulator with
    // modest error on regular kernels.
    let adg = dsagen::adg::presets::softbrain();
    let mut errors = Vec::new();
    for kernel in [
        dsagen::workloads::polybench::mm(),
        dsagen::workloads::nn::classifier(),
        dsagen::workloads::dsp::centro_fir(),
    ] {
        let (compiled, cycles) = compile_and_sim(&adg, &kernel);
        let err = (cycles as f64 - compiled.perf.cycles).abs() / cycles as f64;
        errors.push((kernel.name.clone(), err));
    }
    let mean = errors.iter().map(|(_, e)| e).sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.30, "mean model error {mean:.2}: {errors:?}");
}

#[test]
fn all_table1_workloads_compile_on_the_full_capability_mesh() {
    let adg = dsagen::adg::presets::dse_initial();
    for w in dsagen::workloads::all() {
        let compiled = dsagen::compile(&adg, &w.kernel, &quick_opts())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(compiled.eval.feasible, "{} schedule infeasible", w.name);
    }
}

#[test]
fn generated_artifacts_are_consistent_with_the_schedule() {
    let adg = dsagen::adg::presets::softbrain();
    let kernel = dsagen::workloads::polybench::mvt();
    let compiled = dsagen::compile(&adg, &kernel, &quick_opts()).unwrap();
    let hw = dsagen::generate(&adg, &compiled, 4, 9);
    // Every scheduled instruction appears in the bitstream.
    let encoded_instrs: usize = hw.bitstream.configs.values().map(|c| c.instrs.len()).sum();
    assert_eq!(encoded_instrs, compiled.version.inst_count());
    // Config paths cover all configurable nodes.
    let configurable = adg.nodes().filter(|n| n.kind.is_configurable()).count();
    assert_eq!(hw.config_paths.covered().len(), configurable);
    // The Verilog instantiates the same number of PEs the graph has.
    assert_eq!(
        hw.verilog.matches("dsagen_pe #(").count(),
        adg.pes().count() + 1 // +1 for the leaf module definition
    );
}

#[test]
fn fft_is_slower_per_op_than_fir_due_to_strided_scratchpad_access() {
    // The fft pathology (§VIII-A): small-stride butterfly accesses generate
    // per-element scratchpad requests.
    let adg = dsagen::adg::presets::revel();
    let fft = dsagen::workloads::dsp::fft();
    let fir = dsagen::workloads::dsp::centro_fir();
    let (fft_c, fft_cycles) = compile_and_sim(&adg, &fft);
    let (fir_c, fir_cycles) = compile_and_sim(&adg, &fir);
    let fft_ops: f64 = fft_c
        .version
        .regions
        .iter()
        .map(|r| r.dfg.inst_count() as f64 * r.instances)
        .sum();
    let fir_ops: f64 = fir_c
        .version
        .regions
        .iter()
        .map(|r| r.dfg.inst_count() as f64 * r.instances)
        .sum();
    let fft_cpo = fft_cycles as f64 / fft_ops;
    let fir_cpo = fir_cycles as f64 / fir_ops;
    assert!(
        fft_cpo > fir_cpo,
        "fft cycles/op {fft_cpo:.3} should exceed fir {fir_cpo:.3}"
    );
}

#[test]
fn fir16_packs_subword_only_on_decomposable_fabrics() {
    // §III-A decomposable FUs: 16-bit data packs four lanes per 64-bit PE.
    let kernel = dsagen::workloads::dsp::fir16();
    let decomp = dsagen::adg::presets::dse_initial();
    let (packed, _) = compile_and_sim(&decomp, &kernel);
    assert!(
        packed.version.config.sub_word,
        "decomposable fabric should pick the sub-word version"
    );

    let plain = dsagen::adg::presets::softbrain();
    let (unpacked, _) = compile_and_sim(&plain, &kernel);
    assert!(!unpacked.version.config.sub_word);
    // Packing shrinks the firing count at equal unroll.
    let per_unroll_packed =
        packed.version.regions[0].instances * f64::from(packed.version.config.unroll);
    let per_unroll_plain =
        unpacked.version.regions[0].instances * f64::from(unpacked.version.config.unroll);
    assert!(
        per_unroll_packed < per_unroll_plain,
        "packed {per_unroll_packed} vs plain {per_unroll_plain}"
    );
}

#[test]
fn adg_text_roundtrips_through_compile() {
    // A graph written to the textual format and re-parsed accepts the same
    // schedule-bearing artifacts.
    let adg = dsagen::adg::presets::spu();
    let text = dsagen::adg::text::to_text(&adg);
    let parsed = dsagen::adg::text::from_text(&text).expect("parses");
    assert_eq!(adg, parsed);
    let kernel = dsagen::workloads::sparse::join();
    let c1 = dsagen::compile(&adg, &kernel, &quick_opts()).unwrap();
    let c2 = dsagen::compile(&parsed, &kernel, &quick_opts()).unwrap();
    assert_eq!(c1.perf.cycles, c2.perf.cycles);
    assert_eq!(c1.schedule.placement, c2.schedule.placement);
}
