//! Integration tests for the crash-consistent artifact store and the
//! admission-controlled codesign service (PR 9):
//!
//! * a **crash matrix** killing the record at every structurally distinct
//!   frame boundary and injecting every storage-plane fault kind, proving
//!   zero panics and typed quarantine;
//! * typed admission control (queue-full shedding), per-request
//!   deadlines, and cooperative cancellation, each asserted by type;
//! * `FlightRecorder::dump_on_error` firing on shed storms and store
//!   quarantines (a dump lands in `$DSAGEN_FLIGHT_DIR`);
//! * `store.quarantine.*` metrics snapshots identical at 1 and 4 reader
//!   threads.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dsagen::adg::{presets, EdgeId, NodeId};
use dsagen::dfg::Kernel;
use dsagen::dse::{DseConfig, Explorer, RunControl, StopCause};
use dsagen::scheduler::Schedule;
use dsagen::service::{CompileRequest, Rejected, Service, ServiceConfig};
use dsagen::store::{
    artifact, encode, frame_boundaries, open_default, Artifact, ArtifactKey, ArtifactStore,
    StoreConfig,
};
use dsagen::telemetry::{FlightRecorder, MetricsRegistry, Telemetry};
use dsagen::workloads::{suite_kernels, Suite};
use dsagen_faults::{corrupt_record_bytes, kill_points, StorageFaultKind};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dsagen-svcstore-{}-{name}", std::process::id()))
}

/// A small deterministic artifact with a distinct key per (seed, salt).
fn mk_artifact(seed: u64, salt: u64) -> Artifact {
    let placement = (0..5)
        .map(|i| (i != 3).then(|| NodeId::from_index(i + seed as usize % 7)))
        .collect();
    let mut routes = BTreeMap::new();
    routes.insert(0usize, vec![EdgeId::from_index(2), EdgeId::from_index(4)]);
    routes.insert(1usize, vec![EdgeId::from_index(seed as usize % 9)]);
    artifact(
        ArtifactKey {
            adg_fp: 0xF00 ^ seed,
            kernel_hash: 0xBEEF ^ (seed << 4),
            sched_seed: salt,
        },
        Schedule {
            placement,
            routes,
        },
        Some(2.5 + seed as f64),
        Some(0xFACE ^ seed),
        (0..8).map(|w| w * 3 + seed).collect(),
    )
}

fn tiny_request(tenant: &str, seed: u64, cancel: Option<Arc<AtomicBool>>) -> CompileRequest {
    tiny_request_iters(tenant, seed, 2, cancel)
}

fn tiny_request_iters(
    tenant: &str,
    seed: u64,
    max_iters: u32,
    cancel: Option<Arc<AtomicBool>>,
) -> CompileRequest {
    let kernels: Vec<Kernel> = suite_kernels(Suite::Dsp)
        .into_iter()
        .filter(|k| k.name == "centro-fir")
        .collect();
    assert!(!kernels.is_empty());
    CompileRequest {
        tenant: tenant.to_string(),
        adg: presets::dse_initial(),
        kernels,
        dse: DseConfig {
            seed,
            max_iters,
            patience: max_iters,
            sched_iters: 30,
            max_unroll: 1,
            shards: 1,
            threads: 1,
            ..DseConfig::default()
        },
        deadline_ms: None,
        cancel,
    }
}

/// The crash matrix: for two seeds, kill a record write at every
/// structurally distinct frame boundary and inject every storage-plane
/// fault kind on committed bytes. Every damaged entry must be handled as
/// a typed quarantine (`get` returns `Ok(None)`, never panics, never
/// `Err`), faults that leave committed bytes untouched must still load,
/// and an undamaged neighbor entry must survive the whole storm.
#[test]
fn crash_matrix_every_frame_boundary_and_fault_kind_is_typed() {
    // CI shards the matrix by seed; locally both run in one invocation.
    let seeds: Vec<u64> = match std::env::var("DSAGEN_STORE_SEED") {
        Ok(s) => vec![s.parse().expect("DSAGEN_STORE_SEED must be a u64")],
        Err(_) => vec![3, 11],
    };
    for &seed in &seeds {
        let root = tmp(&format!("matrix-{seed}"));
        let _ = std::fs::remove_dir_all(&root);
        let store = open_default(&root).expect("open store");

        let template = mk_artifact(seed, 0);
        let bytes = encode(&template);
        let kps = kill_points(bytes.len(), &frame_boundaries(&bytes));
        assert!(kps.len() >= 10, "matrix must cover all frame boundaries");

        // Torn states: the write died at every interesting offset.
        let mut damaged: Vec<ArtifactKey> = Vec::new();
        for (i, &kp) in kps.iter().enumerate() {
            let mut a = template.clone();
            a.key.sched_seed = 1_000 + i as u64;
            let full = encode(&a);
            let cut = kp.min(full.len().saturating_sub(1));
            std::fs::write(store.entries_dir().join(a.key.file_name()), &full[..cut])
                .expect("write torn state");
            damaged.push(a.key);
        }

        // At-rest faults on committed bytes, every kind, two sub-seeds.
        let mut maybe_intact: Vec<(ArtifactKey, Artifact, String)> = Vec::new();
        for (ki, kind) in StorageFaultKind::STORAGE_PLANE.iter().enumerate() {
            for sub in 0..2u64 {
                let mut a = template.clone();
                a.key.sched_seed = 2_000 + (ki as u64) * 10 + sub;
                let mut b = encode(&a);
                let what = corrupt_record_bytes(*kind, seed ^ sub, &mut b);
                std::fs::write(store.entries_dir().join(a.key.file_name()), &b)
                    .expect("write faulted state");
                if matches!(
                    kind,
                    StorageFaultKind::StaleTempFile | StorageFaultKind::TransientIo
                ) {
                    maybe_intact.push((a.key, a, what)); // bytes untouched by design
                } else {
                    damaged.push(a.key);
                }
            }
        }

        // One clean entry committed through the real write path.
        let clean = mk_artifact(seed, 9_999);
        store.put(&clean).expect("clean put");

        for key in &damaged {
            match store.get(*key) {
                Ok(None) => {}
                Ok(Some(a)) => panic!("damaged entry {key} decoded: {a:?}"),
                Err(e) => panic!("damaged entry {key} surfaced an I/O error: {e}"),
            }
        }
        for (key, original, what) in &maybe_intact {
            let got = store
                .get(*key)
                .unwrap_or_else(|e| panic!("{what}: {e}"))
                .unwrap_or_else(|| panic!("{what}: untouched bytes must load"));
            assert_eq!(&got, original, "{what}");
        }

        // The storm quarantined every damaged entry and spared the rest.
        let stats = store.stats();
        assert_eq!(stats.quarantined, damaged.len() as u64, "seed {seed}");
        let survivor = store.get(clean.key).expect("clean get").expect("present");
        assert_eq!(survivor, clean);
        let quarantined_files = std::fs::read_dir(store.quarantine_dir())
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(quarantined_files, damaged.len(), "seed {seed}");

        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Admission control sheds with the typed `QueueFull` (never blocks),
/// and a cancellation token stops the in-flight request cooperatively at
/// an iteration boundary with `StopCause::Cancelled`.
#[test]
fn queue_full_is_typed_and_cancellation_stops_cooperatively() {
    let svc = Service::start_basic(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        default_deadline_ms: None,
    });
    // A long request occupies the single worker...
    let token = Arc::new(AtomicBool::new(false));
    let slow = svc
        .submit(tiny_request_iters("slow", 1, 500, Some(Arc::clone(&token))))
        .expect("first request admitted");
    // ...so a burst must overflow the depth-1 queue with a typed shed.
    let mut sheds = 0;
    for i in 0..4 {
        match svc.submit(tiny_request("burst", 10 + i, None)) {
            Ok(_) => {}
            Err(Rejected::QueueFull { depth }) => {
                assert_eq!(depth, 1);
                sheds += 1;
            }
            Err(other) => panic!("expected QueueFull, got {other}"),
        }
    }
    assert!(sheds > 0, "burst against a full depth-1 queue must shed");

    // Flip the token: the 500-iteration run stops at its next iteration
    // boundary instead of running to convergence.
    token.store(true, Ordering::Release);
    let outcome = slow.wait().expect("worker replies");
    assert_eq!(outcome.stopped, Some(StopCause::Cancelled));

    let report = svc.drain();
    assert_eq!(report.shed, sheds);
    assert!(report.cancelled >= 1);
}

/// Deadlines are measured from submission: a request whose deadline
/// expired while queued is answered immediately with the typed stop
/// cause, and an in-flight deadline stops at an iteration boundary.
#[test]
fn deadline_exceeded_is_typed_from_submission_and_mid_run() {
    // Expired-in-queue path: a 0 ms deadline is over before any worker
    // can pick the job up.
    let svc = Service::start_basic(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        default_deadline_ms: None,
    });
    let mut req = tiny_request("hurried", 5, None);
    req.deadline_ms = Some(0);
    let outcome = svc
        .submit(req)
        .expect("admitted")
        .wait()
        .expect("worker replies");
    assert_eq!(outcome.stopped, Some(StopCause::DeadlineExceeded));
    let report = svc.drain();
    assert_eq!(report.deadline_stopped, 1);

    // Iteration-boundary path, exercised directly on the explorer: a
    // 1 ms budget cannot cover a 500-iteration run, so the result stops
    // with the typed cause but remains a coherent best-so-far.
    let kernels: Vec<Kernel> = suite_kernels(Suite::Dsp)
        .into_iter()
        .filter(|k| k.name == "centro-fir")
        .collect();
    let cfg = DseConfig {
        seed: 7,
        max_iters: 500,
        patience: 500,
        sched_iters: 30,
        max_unroll: 1,
        shards: 1,
        threads: 1,
        ..DseConfig::default()
    };
    let mut ex = Explorer::new(presets::dse_initial(), &kernels, cfg)
        .with_control(RunControl::with_deadline_in(Duration::from_millis(1)));
    let result = ex.run();
    assert_eq!(result.stopped, Some(StopCause::DeadlineExceeded));
    assert!(result.trace.len() < 500, "deadline must cut the run short");
}

/// A request cancelled before a worker dequeues it short-circuits
/// without burning exploration time, and the default deadline from
/// `ServiceConfig` applies when the request carries none.
#[test]
fn precancelled_request_short_circuits() {
    let svc = Service::start_basic(ServiceConfig {
        workers: 2,
        queue_depth: 4,
        default_deadline_ms: None,
    });
    let token = Arc::new(AtomicBool::new(true)); // cancelled at birth
    let outcome = svc
        .submit(tiny_request("stillborn", 21, Some(token)))
        .expect("admitted")
        .wait()
        .expect("worker replies");
    assert_eq!(outcome.stopped, Some(StopCause::Cancelled));
    assert_eq!(outcome.objective, 0.0, "no exploration happened");
    let report = svc.drain();
    assert_eq!(report.cancelled, 1);

    // Config-level default deadline: same typed cause, no per-request one.
    let svc = Service::start_basic(ServiceConfig {
        workers: 1,
        queue_depth: 2,
        default_deadline_ms: Some(0),
    });
    let outcome = svc
        .submit(tiny_request("defaulted", 22, None))
        .expect("admitted")
        .wait()
        .expect("worker replies");
    assert_eq!(outcome.stopped, Some(StopCause::DeadlineExceeded));
    let _ = svc.drain();
}

/// Satellite: error paths dump the flight ring. Both a store quarantine
/// and a service shed storm must leave a `flight_*.jsonl` dump in
/// `$DSAGEN_FLIGHT_DIR`. (One test owns the env var to avoid races.)
#[test]
fn error_paths_dump_flight_recordings() {
    let flight_dir = tmp("flight");
    let _ = std::fs::remove_dir_all(&flight_dir);
    std::fs::create_dir_all(&flight_dir).expect("flight dir");
    std::env::set_var("DSAGEN_FLIGHT_DIR", &flight_dir);

    let dumps = |needle: &str| -> usize {
        std::fs::read_dir(&flight_dir)
            .map(|d| {
                d.flatten()
                    .filter(|e| {
                        let n = e.file_name().to_string_lossy().to_string();
                        n.starts_with("flight_") && n.contains(needle)
                    })
                    .count()
            })
            .unwrap_or(0)
    };

    // Store quarantine path.
    let root = tmp("flight-store");
    let _ = std::fs::remove_dir_all(&root);
    let tel = Telemetry::disabled().with_recorder(FlightRecorder::enabled());
    let store =
        ArtifactStore::open(&root, StoreConfig::default(), tel.clone()).expect("open store");
    let a = mk_artifact(1, 77);
    let mut b = encode(&a);
    corrupt_record_bytes(StorageFaultKind::BitFlippedPayload, 9, &mut b);
    std::fs::write(store.entries_dir().join(a.key.file_name()), &b).expect("write corrupt");
    assert!(store.get(a.key).expect("typed").is_none());
    assert!(
        dumps("store-quarantine") > 0,
        "quarantine must dump the flight ring"
    );

    // Service shed-storm path.
    let svc = Service::start(
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            default_deadline_ms: None,
        },
        None,
        tel,
    );
    let token = Arc::new(AtomicBool::new(false));
    let slow = svc
        .submit(tiny_request_iters("slow", 2, 500, Some(Arc::clone(&token))))
        .expect("admitted");
    let mut shed = 0;
    for i in 0..4 {
        if svc.submit(tiny_request("storm", 30 + i, None)).is_err() {
            shed += 1;
        }
    }
    assert!(shed > 0);
    assert!(dumps("service-shed") > 0, "shed must dump the flight ring");

    token.store(true, Ordering::Release);
    let _ = slow.wait();
    let _ = svc.drain();
    std::env::remove_var("DSAGEN_FLIGHT_DIR");
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&flight_dir);
}

/// Satellite: quarantine observability is deterministic under
/// concurrency — the `store.*` metrics snapshot after quarantining a
/// fixed entry set is identical whether 1 or 4 threads do the reading.
#[test]
fn quarantine_metrics_snapshot_is_thread_count_independent() {
    const ENTRIES: usize = 8;

    let run = |threads: usize| -> String {
        let root = tmp(&format!("qdet-{threads}"));
        let _ = std::fs::remove_dir_all(&root);
        let reg = MetricsRegistry::enabled();
        let tel = Telemetry::disabled().with_metrics(reg.clone());
        let store =
            ArtifactStore::open(&root, StoreConfig::default(), tel).expect("open store");
        let mut keys = Vec::new();
        for i in 0..ENTRIES {
            let mut a = mk_artifact(5, 3_000 + i as u64);
            let mut b = encode(&a);
            // Rotate through the at-rest fault kinds for label variety.
            let kind = StorageFaultKind::STORAGE_PLANE[i % 3]; // torn/truncated/bit-flip
            corrupt_record_bytes(kind, i as u64, &mut b);
            a.key.sched_seed = 3_000 + i as u64;
            std::fs::write(store.entries_dir().join(a.key.file_name()), &b)
                .expect("write corrupt entry");
            keys.push(a.key);
        }
        // Disjoint partition: each entry is read by exactly one thread,
        // so the event multiset is identical at any width.
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = store.clone();
                let mine: Vec<ArtifactKey> = keys
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(_, k)| *k)
                    .collect();
                scope.spawn(move || {
                    for key in mine {
                        assert!(store.get(key).expect("typed").is_none());
                    }
                });
            }
        });
        let json = reg.snapshot().to_json();
        let _ = std::fs::remove_dir_all(&root);
        json
    };

    let one = run(1);
    let four = run(4);
    assert_eq!(one, four, "metrics must not depend on reader thread count");
    assert!(
        one.contains("store.quarantine.total"),
        "quarantine total must be counted: {one}"
    );
    assert!(
        one.contains(&format!("\"store.quarantine.total\": {ENTRIES}")),
        "every corrupt entry quarantines exactly once: {one}"
    );
}

/// Warm start across processes: a second store handle over the same
/// directory serves the first explorer's persisted schedules, and the
/// cache stats attribute those lookups to the store tier.
#[test]
fn explorer_warm_starts_from_a_reopened_store() {
    let root = tmp("warm");
    let _ = std::fs::remove_dir_all(&root);
    let kernels: Vec<Kernel> = suite_kernels(Suite::Dsp)
        .into_iter()
        .filter(|k| k.name == "centro-fir")
        .collect();
    let cfg = DseConfig {
        seed: 31,
        max_iters: 2,
        patience: 2,
        sched_iters: 30,
        max_unroll: 1,
        shards: 1,
        threads: 1,
        ..DseConfig::default()
    };

    let store = open_default(&root).expect("open store");
    let mut cold =
        Explorer::new(presets::dse_initial(), &kernels, cfg).with_store(store.clone());
    let cold_result = cold.run();
    assert!(!store.is_empty(), "cold run must persist artifacts");
    assert_eq!(cold.cache_stats().store_hits, 0, "nothing to warm-start from");

    // A fresh process: new store handle, new explorer, same inputs.
    let store2 = open_default(&root).expect("reopen store");
    let mut warm =
        Explorer::new(presets::dse_initial(), &kernels, cfg).with_store(store2);
    let warm_result = warm.run();
    assert!(
        warm.cache_stats().store_hits > 0,
        "warm run must hit the store tier: {:?}",
        warm.cache_stats()
    );
    // Warm start is an accelerator, not a result-changer.
    assert_eq!(
        warm_result.best.objective.to_bits(),
        cold_result.best.objective.to_bits(),
        "store tier must not change the explored outcome"
    );

    let _ = std::fs::remove_dir_all(&root);
}
