//! Cross-product test: the five §VII target accelerators each run a
//! representative workload slice, exercising the modular compiler's
//! feature gating on real topologies.

use dsagen::prelude::*;

fn opts() -> CompileOptions {
    CompileOptions {
        max_unroll: 4,
        scheduler: SchedulerConfig {
            max_iters: 200,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    }
}

fn accelerators() -> Vec<Adg> {
    vec![
        dsagen::adg::presets::softbrain(),
        dsagen::adg::presets::maeri(),
        dsagen::adg::presets::triggered(),
        dsagen::adg::presets::spu(),
        dsagen::adg::presets::revel(),
    ]
}

#[test]
fn dense_mm_maps_on_every_accelerator() {
    let kernel = dsagen::workloads::polybench::mm();
    for adg in accelerators() {
        let c = dsagen::compile(&adg, &kernel, &opts())
            .unwrap_or_else(|e| panic!("mm on {}: {e}", adg.name()));
        assert!(c.eval.feasible, "mm infeasible on {}", adg.name());
        assert!(c.perf.cycles > 0.0);
    }
}

#[test]
fn fir_maps_on_every_accelerator() {
    let kernel = dsagen::workloads::dsp::centro_fir();
    for adg in accelerators() {
        let c = dsagen::compile(&adg, &kernel, &opts())
            .unwrap_or_else(|e| panic!("fir on {}: {e}", adg.name()));
        assert!(c.eval.feasible, "fir infeasible on {}", adg.name());
    }
}

#[test]
fn histogram_maps_everywhere_but_only_spu_gets_atomics() {
    let kernel = dsagen::workloads::sparse::histogram();
    for adg in accelerators() {
        let c = dsagen::compile(&adg, &kernel, &opts())
            .unwrap_or_else(|e| panic!("histogram on {}: {e}", adg.name()));
        let has_atomic_hw = adg.features().atomic_update;
        assert_eq!(
            c.version.config.atomic_update,
            has_atomic_hw,
            "atomic transformation gating wrong on {}",
            adg.name()
        );
    }
}

#[test]
fn join_gating_follows_stream_join_capability() {
    let kernel = dsagen::workloads::sparse::join();
    for adg in accelerators() {
        let c = dsagen::compile(&adg, &kernel, &opts())
            .unwrap_or_else(|e| panic!("join on {}: {e}", adg.name()));
        let capable = adg.features().stream_join_pes > 0;
        assert_eq!(
            c.version.config.stream_join,
            capable,
            "stream-join gating wrong on {}",
            adg.name()
        );
    }
}

#[test]
fn shared_pe_fabrics_absorb_outer_loop_work() {
    // qr has outer-rate sqrt/div work. On Triggered Instructions (shared
    // PEs) it must map; the chosen version's schedule is legal.
    let kernel = dsagen::workloads::dsp::qr();
    let triggered = dsagen::adg::presets::triggered();
    let c = dsagen::compile(&triggered, &kernel, &opts()).unwrap();
    assert!(c.eval.feasible);
    // The multiplexed fabric tolerates more instructions than PEs.
    let insts = c.version.inst_count();
    assert!(insts > 0);
}

#[test]
fn every_accelerator_reports_distinct_costs() {
    let model = dsagen::model::AreaPowerModel::default();
    let mut areas: Vec<(String, f64)> = accelerators()
        .iter()
        .map(|a| (a.name().to_string(), model.estimate_adg(a).area_mm2))
        .collect();
    areas.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for w in areas.windows(2) {
        assert!(
            (w[1].1 - w[0].1).abs() > 1e-6,
            "{} and {} have identical area",
            w[0].0,
            w[1].0
        );
    }
}

#[test]
fn plasticine_and_tabla_run_dense_kernels() {
    // The §III-C approximation examples: both should host the regular
    // PolyBench matvec.
    let kernel = dsagen::workloads::polybench::mvt();
    for adg in [
        dsagen::adg::presets::plasticine(),
        dsagen::adg::presets::tabla(),
    ] {
        let c = dsagen::compile(&adg, &kernel, &opts())
            .unwrap_or_else(|e| panic!("mvt on {}: {e}", adg.name()));
        assert!(c.eval.feasible, "mvt infeasible on {}", adg.name());
    }
}

#[test]
fn tabla_absorbs_many_instructions_on_temporal_pes() {
    // 16 shared PEs × 8 slots: stencil-2d's 17 instructions fit even
    // though there are only 16 PEs. This mapping is tight, so the
    // stochastic scheduler gets a larger iteration budget than the
    // rest of the matrix.
    let adg = dsagen::adg::presets::tabla();
    let kernel = dsagen::workloads::machsuite::stencil2d();
    let opts = CompileOptions {
        max_unroll: 4,
        scheduler: SchedulerConfig {
            max_iters: 800,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    };
    let c = dsagen::compile(&adg, &kernel, &opts).expect("temporal PEs absorb the graph");
    assert!(c.version.inst_count() >= 17);
}
