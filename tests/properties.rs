//! Property-based tests (proptest) over the core data structures and
//! invariants: ADG validity under mutation, affine-expression algebra,
//! bitstream roundtrips, configuration-path coverage, and stream-pattern
//! accounting.

use dsagen::adg::{presets, Adg, BitWidth, OpSet, Opcode};
use dsagen::dfg::{AffineExpr, LoopVar, StreamPattern, TripCount};
use dsagen::hwgen::{generate_config_paths, Bitstream, InstrConfig, NodeConfig, RouteConfig, SyncConfig};
use proptest::prelude::*;

proptest! {
    // Structural properties are cheap; a moderate case count keeps the
    // suite fast in debug builds while covering wide input ranges.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitwidth_accepts_exactly_powers_of_two(bits in 0u16..=u16::MAX) {
        let ok = bits != 0 && bits.is_power_of_two() && bits <= 4096;
        prop_assert_eq!(BitWidth::new(bits).is_ok(), ok);
    }

    #[test]
    fn affine_eval_is_linear(
        c1 in -100i64..100, k1 in -8i64..8,
        c2 in -100i64..100, k2 in -8i64..8,
        x in -50i64..50, y in -50i64..50,
    ) {
        let a = AffineExpr::var(LoopVar(0)).scaled(k1).plus_const(c1);
        let b = AffineExpr::var(LoopVar(1)).scaled(k2).plus_const(c2);
        let sum = a.clone().plus(&b);
        let vals = [x, y];
        prop_assert_eq!(sum.eval(&vals), a.eval(&vals) + b.eval(&vals));
        let scaled = a.clone().scaled(3);
        prop_assert_eq!(scaled.eval(&vals), 3 * a.eval(&vals));
    }

    #[test]
    fn affine_stride_matches_finite_difference(
        k0 in -8i64..8, k1 in -8i64..8, c in -100i64..100,
        x in -10i64..10, y in -10i64..10,
    ) {
        let e = AffineExpr::var(LoopVar(0)).scaled(k0)
            .plus(&AffineExpr::var(LoopVar(1)).scaled(k1))
            .plus_const(c);
        prop_assert_eq!(e.eval(&[x + 1, y]) - e.eval(&[x, y]), e.stride_of(LoopVar(0)));
        prop_assert_eq!(e.eval(&[x, y + 1]) - e.eval(&[x, y]), e.stride_of(LoopVar(1)));
    }

    #[test]
    fn trip_count_total_is_sum_of_ats(base in 0i64..64, per in -4i64..4, outer in 1u64..32) {
        let t = TripCount::inductive(base, per);
        let total: u64 = (0..outer as i64).map(|o| t.at(o)).sum();
        prop_assert_eq!(t.total_over(outer), total);
    }

    #[test]
    fn opset_union_intersection_laws(bits_a in any::<u64>(), bits_b in any::<u64>()) {
        let a: OpSet = Opcode::ALL.iter().enumerate()
            .filter(|(i, _)| bits_a & (1 << i) != 0).map(|(_, op)| *op).collect();
        let b: OpSet = Opcode::ALL.iter().enumerate()
            .filter(|(i, _)| bits_b & (1 << i) != 0).map(|(_, op)| *op).collect();
        let u = a.union(b);
        let i = a.intersection(b);
        prop_assert!(u.is_superset(a) && u.is_superset(b));
        prop_assert!(a.is_superset(i) && b.is_superset(i));
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());
    }

    #[test]
    fn stream_pattern_line_requests_bounded(
        elems in 1.0f64..100_000.0,
        stride in prop::sample::select(vec![0i64, 8, 16, 64, 512]),
    ) {
        let p = StreamPattern::linear(elems, stride);
        let reqs = p.line_requests(64, 8);
        // Never fewer than perfectly-coalesced, never more than per-element.
        let coalesced = (elems * 8.0 / 64.0).ceil();
        prop_assert!(reqs + 1e-9 >= coalesced.min(elems) || stride == 0);
        prop_assert!(reqs <= elems + 1.0);
    }

    #[test]
    fn mutations_preserve_adg_validity(seed in any::<u64>(), steps in 1usize..40) {
        let mut adg = presets::dse_initial();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let used = OpSet::integer_alu().union(OpSet::floating_point());
        for _ in 0..steps {
            let _ = dsagen::dse::mutate(&mut adg, &mut rng, &used);
        }
        prop_assert!(adg.validate().is_ok());
    }

    #[test]
    fn config_paths_cover_any_mesh(rows in 2usize..5, cols in 2usize..5, p in 1usize..6, seed in any::<u64>()) {
        let pe = dsagen::adg::PeSpec::new(
            dsagen::adg::Scheduling::Static,
            dsagen::adg::Sharing::Dedicated,
            OpSet::integer_alu(),
        );
        let adg: Adg = dsagen::adg::presets::mesh(&dsagen::adg::presets::MeshConfig::new("m", rows, cols, pe));
        let configurable = adg.nodes().filter(|n| n.kind.is_configurable()).count();
        let cp = generate_config_paths(&adg, p, seed);
        prop_assert_eq!(cp.covered().len(), configurable);
        prop_assert!(cp.longest() >= dsagen::hwgen::ConfigPaths::ideal(configurable, cp.paths.len()));
    }

    #[test]
    fn bitstream_words_roundtrip_arbitrary_configs(
        n_nodes in 1usize..8,
        data in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..6),
        sync_lanes in any::<u8>(),
        sync_delay in 0u16..4096,
    ) {
        let mut bs = Bitstream::default();
        for node in 0..n_nodes {
            let mut cfg = NodeConfig::default();
            for (op, a, b, c) in &data {
                cfg.instrs.push(InstrConfig {
                    opcode: *op,
                    operands: [*a, *b, *c],
                    delay: a.wrapping_add(*b),
                    tag: *c,
                });
                cfg.routes.push(RouteConfig { in_port: *a, out_port: *b });
            }
            if node % 2 == 0 {
                cfg.sync = Some(SyncConfig { lanes: sync_lanes, delay: sync_delay, group: 3 });
            }
            bs.configs.insert(dsagen::adg::NodeId::from_index(node), cfg);
        }
        let words = bs.to_words();
        let decoded = Bitstream::from_words(&words).unwrap();
        prop_assert_eq!(bs, decoded);
    }

    #[test]
    fn removing_nodes_keeps_other_ids_stable(victims in prop::collection::vec(0usize..40, 1..8)) {
        let mut adg = presets::softbrain();
        let ids: Vec<_> = adg.pes().collect();
        let mut removed = std::collections::HashSet::new();
        for v in victims {
            let id = ids[v % ids.len()];
            if removed.insert(id) && adg.pes().count() > 1 {
                let _ = adg.remove_node(id);
            }
        }
        for node in adg.nodes() {
            prop_assert!(adg.node(node.id()).is_some());
        }
        for id in removed {
            prop_assert!(adg.node(id).is_none());
        }
    }
}

#[test]
fn regression_model_underestimates_synthesis_by_a_few_percent() {
    // The deterministic heart of Fig 15's validation claim.
    let model = dsagen::model::AreaPowerModel::default();
    for adg in [presets::softbrain(), presets::spu(), presets::dse_initial()] {
        let est = model.estimate_adg(&adg);
        let syn = dsagen::model::synthesize_adg(&adg);
        let gap = (syn.area_mm2 - est.area_mm2) / syn.area_mm2;
        assert!((0.0..0.12).contains(&gap), "{}: gap {gap}", adg.name());
    }
}

proptest! {
    // Heavy properties: each case runs real scheduling work, so keep the
    // case count modest (they still cover plenty of seeds).
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn text_format_roundtrips_mutated_graphs(seed in any::<u64>(), steps in 0usize..25) {
        let mut adg = presets::spu();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let used = OpSet::all();
        for _ in 0..steps {
            let _ = dsagen::dse::mutate(&mut adg, &mut rng, &used);
        }
        let rendered = dsagen::adg::text::to_text(&adg);
        let parsed = dsagen::adg::text::from_text(&rendered)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(adg, parsed);
    }

    #[test]
    fn repair_of_unchanged_hardware_never_regresses(seed in any::<u64>()) {
        use dsagen::scheduler::{repair, schedule, SchedulerConfig};
        use dsagen::dfg::{compile_kernel, TransformConfig};
        let adg = presets::softbrain();
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .expect("compiles");
        let cfg = SchedulerConfig { max_iters: 60, seed, ..SchedulerConfig::default() };
        let first = schedule(&adg, &ck, &cfg);
        let again = repair(&adg, &ck, first.schedule.clone(), &cfg);
        prop_assert!(again.eval.objective <= first.eval.objective + 1e-9);
        if first.is_legal() {
            prop_assert!(again.is_legal());
        }
    }

    #[test]
    fn window_offset_detection(k0 in -8i64..8, c0 in -40i64..40, c1 in -40i64..40) {
        use dsagen::dfg::{AffineExpr, LoopVar};
        let a = AffineExpr::var(LoopVar(0)).scaled(k0).plus_const(c0);
        let b = AffineExpr::var(LoopVar(0)).scaled(k0).plus_const(c1);
        prop_assert_eq!(a.offset_from(&b), Some(c0 - c1));
        if k0 != k0 + 1 {
            let c = AffineExpr::var(LoopVar(0)).scaled(k0 + 1).plus_const(c1);
            prop_assert_eq!(a.offset_from(&c), None);
        }
    }
}

proptest! {
    // Fault-injection properties over every preset: structural cases are
    // cheap, so a generous case count covers many (preset, plan) pairs.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_injection_always_yields_valid_hardware(
        seed in any::<u64>(),
        count in 0usize..12,
        which in 0usize..7,
    ) {
        use dsagen::faults::{inject, inject_with_telemetry, FaultPlan};
        use dsagen::telemetry::Telemetry;
        let all = [
            presets::softbrain(),
            presets::spu(),
            presets::dse_initial(),
            presets::maeri(),
            presets::triggered(),
            presets::revel(),
            presets::plasticine(),
        ];
        let adg = &all[which];
        let plan = FaultPlan::random(seed, count);
        let tel = Telemetry::in_memory();
        let (faulty, report) = inject_with_telemetry(adg, &plan, &tel);
        // Degraded hardware is still legal hardware.
        prop_assert!(faulty.validate().is_ok(), "{}: {:?}", adg.name(), faulty.validate());
        // Every requested fault is accounted for: applied or skipped-with-reason.
        prop_assert_eq!(report.applied.len() + report.skipped.len(), plan.faults.len());
        // Log/plan equivalence: telemetry logged exactly one `fault` event
        // per plan entry, in plan order, kinds matching the plan, with the
        // injected/skipped split mirroring the report.
        let log: Vec<_> = tel.events().into_iter().filter(|e| e.cat == "fault").collect();
        prop_assert_eq!(log.len(), plan.faults.len());
        for (i, ev) in log.iter().enumerate() {
            let kind = ev.args.iter().find(|(k, _)| *k == "kind")
                .map(|(_, v)| v.to_string()).unwrap_or_default();
            prop_assert_eq!(kind.trim_matches('"'), plan.faults[i].to_string());
        }
        prop_assert_eq!(
            log.iter().filter(|e| e.name == "injected").count(),
            report.applied.len()
        );
        prop_assert_eq!(
            log.iter().filter(|e| e.name == "skipped").count(),
            report.skipped.len()
        );
        // Injection never touches the input graph.
        prop_assert!(adg.validate().is_ok());
        // Determinism + telemetry invisibility: the plain, uninstrumented
        // call reproduces the same degraded graph and report.
        let (again, report2) = inject(adg, &plan);
        prop_assert_eq!(&faulty, &again);
        prop_assert_eq!(&report, &report2);
    }
}

proptest! {
    // Each case schedules + repairs + simulates, so keep the count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn codesign_pipeline_never_panics_under_faults(seed in any::<u64>(), count in 1usize..8) {
        use dsagen::dfg::{compile_kernel, TransformConfig};
        use dsagen::faults::{inject, FaultPlan};
        use dsagen::scheduler::{repair_with_escalation, schedule, SchedulerConfig};
        use dsagen::sim::{try_simulate, SimConfig};

        let adg = presets::softbrain();
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let cfg = SchedulerConfig { max_iters: 40, patience: 40, ..SchedulerConfig::default() };
        let first = schedule(&adg, &ck, &cfg);

        let plan = FaultPlan::random(seed, count);
        let (faulty, _report) = inject(&adg, &plan);

        // Repair on degraded hardware must terminate without panicking,
        // legal or not.
        let repaired = repair_with_escalation(&faulty, &ck, &first.schedule, &cfg, 2);
        if repaired.is_legal() {
            // A legal repaired schedule simulates cleanly on the degraded
            // hardware.
            let sim = try_simulate(
                &faulty, &ck, &repaired.schedule, &repaired.eval, 4, &SimConfig::default(),
            );
            prop_assert!(sim.is_ok(), "legal schedule rejected: {:?}", sim.err());
        }
        // The *stale* pre-fault schedule must produce a typed result on the
        // degraded hardware — an error is fine, an index panic is not.
        let _ = try_simulate(&faulty, &ck, &first.schedule, &first.eval, 4, &SimConfig::default());
    }
}

proptest! {
    // Each case runs full (small) DSE evaluations; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cache soundness: memoization is an optimization, never a semantic
    /// change. For any seed, an explorer with the schedule cache enabled
    /// evaluates the same design to the same `DsePoint` as one with the
    /// cache disabled — and re-evaluating with a warm cache replays the
    /// identical point without invoking the stochastic scheduler again.
    #[test]
    fn schedule_cache_is_semantically_invisible(seed in any::<u64>()) {
        use dsagen::dse::{DseConfig, Explorer};

        let kernels = vec![dsagen::workloads::polybench::atax()];
        let cfg = |use_cache: bool| DseConfig {
            seed,
            use_cache,
            shards: 1,
            threads: 1,
            max_iters: 4,
            patience: 4,
            sched_iters: 40,
            max_unroll: 2,
            ..DseConfig::default()
        };

        let mut raw = Explorer::new(presets::dse_initial(), &kernels, cfg(false));
        let mut cached = Explorer::new(presets::dse_initial(), &kernels, cfg(true));

        let p_raw = raw.evaluate();
        let p_cached = cached.evaluate();
        prop_assert_eq!(&p_raw, &p_cached);

        // Warm replay: bit-identical point, zero new scheduler passes.
        let passes_before = cached.sched_invocations();
        let p_again = cached.evaluate();
        prop_assert_eq!(&p_cached, &p_again);
        prop_assert_eq!(cached.sched_invocations(), passes_before);
        prop_assert!(cached.cache_stats().exact_hits > 0);

        // The raw explorer is itself deterministic (the baseline the
        // cache must reproduce).
        prop_assert_eq!(&p_raw, &raw.evaluate());
    }

    /// Thread-count invariance: for a fixed `(seed, shards)` the sharded
    /// explorer returns byte-identical traces and the same selected best
    /// whatever the executor width.
    #[test]
    fn sharded_exploration_is_thread_count_invariant(seed in any::<u64>()) {
        use dsagen::dse::{explore, DseConfig};

        let kernels = vec![dsagen::workloads::polybench::atax()];
        let cfg = |threads: usize| DseConfig {
            seed,
            shards: 3,
            threads,
            max_iters: 6,
            patience: 6,
            sched_iters: 40,
            max_unroll: 2,
            ..DseConfig::default()
        };

        let narrow = explore(presets::dse_initial(), &kernels, cfg(1));
        let wide = explore(presets::dse_initial(), &kernels, cfg(4));

        prop_assert_eq!(
            narrow.best.objective.to_bits(),
            wide.best.objective.to_bits()
        );
        prop_assert_eq!(&narrow.trace, &wide.trace);
        prop_assert_eq!(&narrow.shard_traces, &wide.shard_traces);
        prop_assert_eq!(
            narrow.best_adg.fingerprint(),
            wide.best_adg.fingerprint()
        );
    }
}

proptest! {
    // Framing properties are pure word-shuffling — cheap, so cover many
    // (stream, flip) pairs.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-bit flip anywhere in a CRC-framed stream — payload,
    /// sequence number, or checksum bits alike — is *detected*: deframing
    /// never silently accepts a corrupted stream.
    #[test]
    fn single_bit_flip_in_framed_stream_is_detected(
        payloads in prop::collection::vec(any::<u64>(), 1..24),
        word_pick in any::<usize>(),
        bit in 0u32..64,
    ) {
        use dsagen::hwgen::{deframe_words, frame_words};
        let framed = frame_words(&payloads);
        // Sanity: the clean stream deframes to the original payloads.
        let clean = deframe_words(&framed, payloads.len())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&clean, &payloads);
        // One flipped bit, anywhere: never silently accepted.
        let mut corrupt = framed.clone();
        let w = word_pick % corrupt.len();
        corrupt[w] ^= 1u64 << bit;
        prop_assert!(
            deframe_words(&corrupt, payloads.len()).is_err(),
            "flip of bit {} in word {} went undetected",
            bit,
            w
        );
    }
}

proptest! {
    // Each case runs a real scheduling pass before encoding; keep the
    // count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// encode → decode → re-encode is bit-identical for random
    /// (preset, scheduling-seed) pairs, and verification mints a token
    /// bound to exactly that schedule — the contract `simulate` and the
    /// explorer gate on.
    #[test]
    fn encode_decode_reencode_is_bit_identical(seed in any::<u64>(), which in 0usize..4) {
        use dsagen::dfg::{compile_kernel, TransformConfig};
        use dsagen::hwgen::{verify_round_trip, verify_round_trip_timed};
        use dsagen::scheduler::{schedule, Problem, SchedulerConfig};

        let all = [
            presets::softbrain(),
            presets::spu(),
            presets::revel(),
            presets::dse_initial(),
        ];
        let adg = &all[which];
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let cfg = SchedulerConfig { max_iters: 40, seed, ..SchedulerConfig::default() };
        let s = schedule(adg, &ck, &cfg);
        let problem = Problem::new(adg, &ck);
        // Whatever schedule the stochastic search produced (legal or not),
        // encode∘decode must be the identity on it.
        let config = verify_round_trip(&problem, &s.schedule)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert!(config.matches(&s.schedule));
        let words = dsagen::hwgen::Bitstream::encode(&problem, &s.schedule).to_words();
        prop_assert_eq!(config.words(), &words[..]);
        // The timing-annotated encode round-trips too.
        let timed = verify_round_trip_timed(&problem, &s.schedule, &s.eval)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert!(timed.matches(&s.schedule));
    }

    /// A transient single-bit flip on the configuration channel is
    /// recovered within the session retry budget: the corrupted frame is
    /// detected (CRC), re-requested, and the session still reaches
    /// `Verified` — never a silent misconfiguration, never a panic.
    #[test]
    fn transient_bit_flip_recovers_within_retry_budget(
        seed in any::<u64>(),
        flip_word in any::<usize>(),
        bit in 0u32..64,
    ) {
        use dsagen::dfg::{compile_kernel, TransformConfig};
        use dsagen::hwgen::{Bitstream, ProgrammingSession, SessionConfig, SessionState};
        use dsagen::scheduler::{schedule, Problem, SchedulerConfig};

        let adg = presets::softbrain();
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let cfg = SchedulerConfig { max_iters: 40, seed, ..SchedulerConfig::default() };
        let s = schedule(&adg, &ck, &cfg);
        let problem = Problem::new(&adg, &ck);
        let bs = Bitstream::encode(&problem, &s.schedule);

        let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
        let report = session.program(|round, frames| {
            let mut out = frames.to_vec();
            if round == 0 && !out.is_empty() {
                let idx = flip_word % out.len();
                out[idx] ^= 1u64 << bit;
            }
            out
        });
        prop_assert!(report.is_verified(), "{}", report);
        prop_assert_eq!(session.state(), SessionState::Verified);
        prop_assert!(report.crc_failures >= 1, "the flip must be detected");
        prop_assert!(
            report.attempts <= 1 + SessionConfig::default().max_retries,
            "attempts {} exceed the retry budget",
            report.attempts
        );
    }
}

proptest! {
    // Each case compiles, schedules, and simulates three timelines; keep
    // the count modest (3 presets × several seeds is still wide coverage).
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// Stream checkpointing is invisible: with no faults scheduled,
    /// pausing a run at an arbitrary wall cycle, snapshotting it with
    /// `checkpoint()`, and resuming the *snapshot* produces a final
    /// report bit-identical to (a) the paused original run continuing
    /// and (b) a plain uninterrupted `try_simulate` of the same
    /// configuration — for random scheduling seeds across three presets.
    #[test]
    fn checkpoint_resume_is_identity_without_faults(
        seed in any::<u64>(),
        which in 0usize..3,
        pause_num in 1u64..8,
    ) {
        use dsagen::dfg::{compile_kernel, TransformConfig};
        use dsagen::faults::FaultSchedule;
        use dsagen::scheduler::{schedule, SchedulerConfig};
        use dsagen::sim::{try_simulate, RuntimeConfig, RuntimeSim, SimConfig, StepOutcome};

        let all = [presets::softbrain(), presets::spu(), presets::revel()];
        let adg = &all[which];
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let cfg = SchedulerConfig { max_iters: 60, seed, ..SchedulerConfig::default() };
        let s = schedule(adg, &ck, &cfg);
        if !s.is_legal() {
            // An occasional unlucky stochastic seed is not this property's
            // concern; legality is covered elsewhere.
            return Ok(());
        }

        let sim_cfg = SimConfig::default();
        let plain = try_simulate(adg, &ck, &s.schedule, &s.eval, 4, &sim_cfg)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;

        let fresh = || {
            RuntimeSim::new(
                adg, &ck, &s.schedule, &s.eval, 4,
                sim_cfg, RuntimeConfig::default(), &FaultSchedule::new(0),
            )
        };
        // Pause somewhere strictly inside the run (1/8 .. 7/8 of it).
        let pause_at = (plain.cycles * pause_num / 8).max(1);
        let mut rt = fresh().map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let early = rt.run_for(pause_at);
        let ckpt = rt.checkpoint();
        prop_assert_eq!(ckpt.wall(), rt.wall());

        // Timeline A: the paused original continues to completion.
        if early.is_none() {
            prop_assert_eq!(rt.run_until_event(), StepOutcome::Finished);
        }
        let from_pause = rt.report();

        // Timeline B: a *different* instance resumes from the snapshot.
        let mut resumed = fresh().map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        resumed.restore(&ckpt);
        prop_assert_eq!(resumed.wall(), ckpt.wall());
        prop_assert_eq!(resumed.run_until_event(), StepOutcome::Finished);
        let from_snapshot = resumed.report();

        // All three timelines agree bit-for-bit.
        prop_assert_eq!(&from_pause, &plain);
        prop_assert_eq!(&from_snapshot, &plain);
    }
}

proptest! {
    // Masked-repair properties: each case builds schedules on masked
    // fabrics, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Port-level repair is a *refinement* of node decommission: the
    /// port-masked fabric keeps strictly more hardware than the
    /// node-masked one, so any schedule that is legal after
    /// decommissioning a link's endpoint must still evaluate feasible on
    /// the fabric that only masked the link. (This is why the ladder may
    /// try the cheap rung first: it can never be *less* repairable.)
    #[test]
    fn port_mask_repair_refines_node_decommission(
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        use dsagen::dfg::{compile_kernel, TransformConfig};
        use dsagen::scheduler::{
            evaluate, schedule, CapabilityMask, Problem, SchedulerConfig, Weights,
        };

        let adg = presets::softbrain();
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;

        // Pick a maskable link: both the port mask (edge only) and the
        // node mask (edge's dst) must structurally validate.
        let candidates: Vec<_> = adg
            .edges()
            .filter(|e| {
                let port = CapabilityMask::new().with_edge(e.id());
                let node = CapabilityMask::new().with_node(e.dst);
                port.apply(&adg).is_ok() && node.apply(&adg).is_ok()
            })
            .map(|e| (e.id(), e.dst))
            .collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let (eid, dst) = candidates[(pick as usize) % candidates.len()];

        let node_masked = CapabilityMask::new().with_node(dst).apply(&adg).expect("validated");
        let port_masked = CapabilityMask::new().with_edge(eid).apply(&adg).expect("validated");

        let cfg = SchedulerConfig { max_iters: 60, seed, ..SchedulerConfig::default() };
        let under_node = schedule(&node_masked, &ck, &cfg);
        if !under_node.is_legal() {
            // The decommissioned fabric may genuinely be too small; the
            // refinement claim is vacuous for this draw.
            return Ok(());
        }

        let problem = Problem::new(&port_masked, &ck);
        let eval = evaluate(&problem, &under_node.schedule, &Weights::default());
        prop_assert!(
            eval.feasible,
            "schedule legal without the node must stay feasible with only the port masked"
        );
    }
}

/// Partial re-placement is a *refinement* of node decommission, the way
/// port masking refines it one rung earlier (see
/// `port_mask_repair_refines_node_decommission`): wherever whole-kernel
/// repair after decommissioning a link's endpoint finds a legal schedule,
/// the partial-replace rung — which masks only the link and re-places
/// only the afflicted recovery domain from scratch, every other domain
/// pinned — must also find one, and its result must leave the pinned
/// domains bit-identical. The finer rung never trades away repairability
/// for containment.
#[test]
fn partial_replacement_refines_node_decommission() {
    use std::collections::{BTreeMap, BTreeSet};

    use dsagen::adg::EdgeId;
    use dsagen::dfg::{compile_kernel, TransformConfig};
    use dsagen::scheduler::{
        repair_with_mask, repair_with_mask_scoped, schedule, CapabilityMask, Entity, Problem,
        SchedulerConfig,
    };
    use dsagen::sim::RecoveryDomains;

    let mut exercised = 0usize;
    'search: for adg in [presets::softbrain(), presets::revel(), presets::spu()] {
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .expect("mvt compiles");
        for seed in 0u64..6 {
            let cfg = SchedulerConfig { max_iters: 120, seed, ..SchedulerConfig::default() };
            let s = schedule(&adg, &ck, &cfg);
            if !s.is_legal() {
                continue;
            }
            let domains = RecoveryDomains::derive(&adg, &ck, &s.schedule);
            if domains.len() < 2 {
                continue;
            }
            // Routed links used by exactly one (proper-subset) domain:
            // the fault class whose blast radius the partition bounds.
            let problem = Problem::new(&adg, &ck);
            let mut edge_regions: BTreeMap<EdgeId, BTreeSet<usize>> = BTreeMap::new();
            for (idx, path) in &s.schedule.routes {
                let Some(ri) = problem
                    .edges
                    .get(*idx)
                    .and_then(|v| problem.entities.get(v.src))
                    .map(Entity::region)
                else {
                    continue;
                };
                for eid in path {
                    edge_regions.entry(*eid).or_default().insert(ri);
                }
            }
            for (eid, regions) in &edge_regions {
                let rvec: Vec<usize> = regions.iter().copied().collect();
                let Some(dom) = domains.domain_of_regions(&rvec) else { continue };
                let afflicted: BTreeSet<usize> =
                    domains.regions_in(dom).iter().copied().collect();
                if afflicted.len() >= domains.region_count() {
                    continue;
                }
                let Some(dst) = adg.edge(*eid).map(|e| e.dst) else { continue };
                let node_mask = CapabilityMask::new().with_node(dst);
                let edge_mask = CapabilityMask::new().with_edge(*eid);
                if node_mask.apply(&adg).is_err() || edge_mask.apply(&adg).is_err() {
                    continue;
                }
                // Coarse rung: decommission the endpoint, repair the
                // whole kernel. Skip candidates it cannot handle — the
                // refinement claim is about where it *succeeds*.
                let Ok((coarse, _)) =
                    repair_with_mask(&adg, &ck, &s.schedule, &cfg, 4, &node_mask)
                else {
                    continue;
                };
                if !coarse.is_legal() {
                    continue;
                }
                // Fine rung: mask only the link, re-place only the
                // afflicted domain from scratch with the others pinned.
                let pr_cfg = SchedulerConfig { max_iters: 800, ..cfg };
                let (fine, _) = repair_with_mask_scoped(
                    &adg, &ck, &s.schedule, &afflicted, &pr_cfg, 4, &edge_mask, true,
                )
                .expect("pins hold: the masked link is used only inside the scope");
                assert!(
                    fine.is_legal(),
                    "{}: decommission of {dst:?} repairs, so partial re-placement of \
domain {dom} around {eid:?} must too (eval: {:?})",
                    adg.name(),
                    fine.eval
                );
                assert!(
                    fine.schedule.agrees_outside(&problem, &s.schedule, &afflicted),
                    "{}: partial re-placement must leave pinned domains bit-identical",
                    adg.name()
                );
                exercised += 1;
                continue 'search;
            }
        }
    }
    assert!(
        exercised > 0,
        "no (preset, seed) produced a multi-domain mapping with a decommission-repairable \
single-domain link — the refinement claim was never exercised"
    );
}

proptest! {
    // Each case runs two cycle-accurate timelines (fault-free and
    // recovered) per preset draw; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The blast-radius isolation invariant: a fault whose victim sits in
    /// one recovery domain leaves every *other* domain's per-cycle firing
    /// trace bit-identical to the fault-free run. Rollback is sliced (or
    /// replayed deterministically), repair pins the untouched domains'
    /// placements, so nothing outside the afflicted domain may observe
    /// the fault — across presets and fault seeds.
    #[test]
    fn fault_in_one_domain_leaves_other_domains_bit_identical(
        seed in any::<u64>(),
        which in 0usize..3,
        arrival_num in 1u64..8,
    ) {
        use dsagen::dfg::{compile_kernel, TransformConfig};
        use dsagen::faults::{FaultKind, FaultLifetime, FaultSchedule};
        use dsagen::scheduler::{schedule, SchedulerConfig};
        use dsagen::sim::{
            run_with_recovery, try_simulate, RecoveryDomains, RecoveryPolicy, RuntimeConfig,
            RuntimeSim, SimConfig, StepOutcome,
        };

        let all = [presets::softbrain(), presets::spu(), presets::revel()];
        let adg = &all[which];
        // mvt: two independent pipeline regions — the smallest kernel on
        // which the partition can produce more than one domain.
        let kernel = dsagen::workloads::polybench::mvt();
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let s = schedule(adg, &ck, &SchedulerConfig::default());
        if !s.is_legal() {
            return Ok(());
        }
        let domains = RecoveryDomains::derive(adg, &ck, &s.schedule);
        if domains.len() < 2 {
            // Single-domain mappings have no "other" domain to protect;
            // the invariant is vacuous for this draw.
            return Ok(());
        }

        let rt = RuntimeConfig { record_traces: true, ..RuntimeConfig::default() };
        let sim_cfg = SimConfig::default();
        let plain = try_simulate(adg, &ck, &s.schedule, &s.eval, 4, &sim_cfg)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;

        // Fault-free baseline traces.
        let mut base_sim = RuntimeSim::new(
            adg, &ck, &s.schedule, &s.eval, 4, sim_cfg, rt, &FaultSchedule::new(0),
        )
        .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(base_sim.run_until_event(), StepOutcome::Finished);
        let baseline: Vec<Vec<(usize, u64)>> =
            base_sim.firing_traces().expect("record_traces on").to_vec();

        // One permanent fault strictly inside the run.
        let arrival = (plain.cycles * arrival_num / 8).max(1);
        let faults = FaultSchedule::new(seed)
            .with(arrival, FaultLifetime::Permanent, FaultKind::DeadPe);
        let policy = RecoveryPolicy { rt, ..RecoveryPolicy::default() };
        let tel = dsagen::telemetry::Telemetry::disabled();
        let rep = match run_with_recovery(
            adg, &ck, &s.schedule, &s.eval, 4, &sim_cfg, &faults, &policy, &tel,
        ) {
            Ok(rep) => rep,
            // A typed failure (e.g. the degraded fabric cannot host the
            // kernel) is outside this property's scope.
            Err(_) => return Ok(()),
        };
        // Late arrivals may land after the run finished; nothing to check.
        if rep.events.is_empty() {
            return Ok(());
        }
        // The invariant is stated for single-domain faults resolved at
        // domain scope: a whole-kernel reschedule (or a victim spanning
        // domains) legitimately moves every region.
        if rep.events.iter().any(|e| e.domain.is_none() || e.action.label() == "full-reschedule")
        {
            return Ok(());
        }
        // Restrict to single-event runs so `domains` (derived from the
        // original mapping) still describes the partition each event saw.
        let [event] = &rep.events[..] else { return Ok(()) };
        let afflicted = event.domain.expect("checked above");
        let traces = rep.firing_traces.as_ref().expect("record_traces on");
        prop_assert_eq!(traces.len(), baseline.len());
        for region in 0..domains.region_count() {
            if domains.domain_of(region) == Some(afflicted) {
                continue;
            }
            prop_assert!(
                traces[region] == baseline[region],
                "region {} (outside afflicted domain {}) must be bit-identical",
                region,
                afflicted
            );
        }
    }
}

proptest! {
    // Each case runs several cycle-accurate timelines through the
    // degraded rung; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint/restore identity across a degraded-mode resume: on a
    /// saturated fabric (decommission is never feasible) a permanent
    /// fault forces the degraded rung, which resumes from the checkpoint
    /// ring. The run must terminate typed, lose no work versus the
    /// fault-free baseline, and replay bit-identically — for arbitrary
    /// fault seeds and arrival points.
    #[test]
    fn degraded_mode_resume_preserves_checkpoint_identity(
        seed in any::<u64>(),
        arrival_num in 1u64..8,
    ) {
        use dsagen::adg::{PeSpec, Scheduling, Sharing};
        use dsagen::faults::{FaultKind, FaultLifetime, FaultSchedule};
        use dsagen::sim::{
            run_with_degradation, try_simulate, RecoveryAction, RecoveryPolicy, SimConfig,
        };
        use dsagen::dfg::{
            compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
        };
        use dsagen::scheduler::{schedule, SchedulerConfig};

        let pe = PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu().union(OpSet::integer_mul()),
        );
        let adg = presets::mesh(&presets::MeshConfig::new("prop-tiny", 1, 2, pe));
        let mut k = KernelBuilder::new("prop-dot");
        let a = k.array("a", BitWidth::B64, 512, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 512, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(512), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().expect("dot builds");
        let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let s = schedule(&adg, &ck, &SchedulerConfig::default());
        if !s.is_legal() {
            return Ok(());
        }

        let sim_cfg = SimConfig::default();
        let plain = try_simulate(&adg, &ck, &s.schedule, &s.eval, 0, &sim_cfg)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        // Strike strictly inside the run so the checkpoint ring has
        // state to resume from.
        let arrival = (plain.cycles * arrival_num / 8).max(1);
        let faults = FaultSchedule::new(seed)
            .with(arrival, FaultLifetime::Permanent, FaultKind::DeadPe);

        let policy = RecoveryPolicy::default();
        let tel = dsagen::telemetry::Telemetry::disabled();
        let run = || {
            run_with_degradation(
                &adg, &ck, &s.schedule, &s.eval, 0, &sim_cfg, &faults, &policy, &tel,
            )
        };
        let out = run().map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        let report = out.report();
        // The fault may land after the run finished (late arrival_num on
        // short runs); when it strikes, the saturated fabric forces the
        // degraded rung.
        if !report.events.is_empty() {
            prop_assert!(out.is_degraded(), "saturated fabric must degrade, got {}", out);
            let rescheduled = matches!(
                report.events[0].action,
                RecoveryAction::DegradedReschedule { .. }
            );
            prop_assert!(rescheduled, "first event must be a degraded reschedule");
            let ratio = out.throughput_ratio();
            prop_assert!(ratio > 0.0 && ratio <= 1.0, "ratio {}", ratio);
        }
        prop_assert_eq!(&report.report.firings, &plain.firings);

        // Bit-identical replay: checkpoint capture + restore is pure.
        let again = run().map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(out, again);
    }
}
