//! Fault-storm soak matrix: seeded multi-fault storms (bursts,
//! correlated neighbors, escalating permanence) driven through the full
//! degradation ladder across ≥3 presets × ≥5 workloads × multiple seeds.
//!
//! Contract under storm injection:
//!
//! - **No panics, no avoidable aborts.** Every run terminates in a typed
//!   outcome; a [`RecoveryError`] abort is a test failure (the
//!   degradation ladder must always find a rung that serves).
//! - **Bounded detection latency.** Blocking faults are caught by the
//!   watchdog within its bound; silent corruption by the residue check
//!   within two scrub intervals.
//! - **Functional correctness.** Recovered *and* degraded runs complete
//!   exactly the fault-free firing count — degraded mode trades
//!   throughput, never results.
//! - **Monotonic degradation.** Over growing prefixes of the same storm,
//!   throughput never *improves* beyond jitter tolerance: more damage
//!   can only slow the fabric down.
//! - **Bit-identical replay.** The same (storm seed, preset, workload)
//!   triple reproduces the identical outcome, event log and cycle count.
//!
//! The seed set is overridable via `DSAGEN_SOAK_SEED=<u64>` so CI can
//! fan the matrix out across jobs.

use dsagen::adg::presets;
use dsagen::dfg::Kernel;
use dsagen::faults::{FaultSchedule, StormConfig};
use dsagen::prelude::*;
use dsagen::sim::SimConfig;
use dsagen::telemetry::Telemetry;

/// Seeds for the soak matrix. `DSAGEN_SOAK_SEED=<u64>` narrows the run
/// to a single seed so CI can shard storms across jobs.
fn seeds() -> Vec<u64> {
    match std::env::var("DSAGEN_SOAK_SEED") {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(v) => vec![v],
            Err(_) => vec![0x50AC, 77],
        },
        Err(_) => vec![0x50AC, 77],
    }
}

fn fixtures() -> Vec<(&'static str, Adg)> {
    vec![
        ("softbrain", presets::softbrain()),
        ("spu", presets::spu()),
        ("revel", presets::revel()),
    ]
}

fn workloads() -> Vec<(&'static str, Kernel)> {
    vec![
        ("mvt", dsagen::workloads::polybench::mvt()),
        ("atax", dsagen::workloads::polybench::atax()),
        ("bicg", dsagen::workloads::polybench::bicg()),
        ("mm16", dsagen::workloads::machsuite::gemm_kernel("mm16", 16)),
        ("spmv-crs", dsagen::workloads::machsuite::spmv_crs()),
        ("pipe-split", dsagen::workloads::polybench::pipe_split()),
    ]
}

/// Compiles `kernel` onto `adg`; `None` when the kernel does not map.
/// Unroll is capped to keep the cycle-accurate storm replay affordable
/// in debug builds.
fn build(adg: &Adg, kernel: &Kernel) -> Option<(Compiled, u64)> {
    let opts = CompileOptions {
        max_unroll: 2,
        ..CompileOptions::default()
    };
    let compiled = dsagen::compile(adg, kernel, &opts).ok()?;
    let plain = dsagen::sim::try_simulate(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &SimConfig::default(),
    )
    .ok()?;
    Some((compiled, plain.firings.iter().sum()))
}

/// A storm sized to the run: bursts land inside the fault-free cycle
/// span so every arrival strikes mid-execution.
fn storm_for(seed: u64, horizon: u64) -> FaultSchedule {
    FaultSchedule::storm(
        seed,
        &StormConfig {
            horizon: horizon.max(256),
            ..StormConfig::default()
        },
    )
}

/// The documented detection-latency ceiling: watchdog bound for blocking
/// faults, two scrub intervals for silent corruption.
fn detection_bound(policy: &RecoveryPolicy) -> u64 {
    policy.rt.watchdog_bound.max(2 * policy.rt.residue_interval)
}

#[test]
fn storm_matrix_terminates_typed_with_bounded_detection() {
    let policy = RecoveryPolicy::default();
    let bound = detection_bound(&policy);
    let mut ran = 0usize;
    let mut degraded_runs = 0usize;
    for (preset, adg) in fixtures() {
        for (kname, kernel) in &workloads() {
            let Some((compiled, plain_firings)) = build(&adg, kernel) else {
                continue;
            };
            for seed in seeds() {
                let storm = storm_for(seed, compiled.perf.cycles as u64);
                let out = recover_with_degradation(
                    &adg,
                    &compiled,
                    &SimConfig::default(),
                    &storm,
                    &policy,
                    &Telemetry::disabled(),
                )
                .unwrap_or_else(|e| {
                    panic!("{preset}/{kname} seed {seed:#x}: storm aborted: {e}")
                });
                let report = out.report();
                for ev in &report.events {
                    assert!(
                        ev.detection_latency <= bound,
                        "{preset}/{kname} seed {seed:#x}: {} detected after {} cycles \
(bound {bound})",
                        ev.fault.kind,
                        ev.detection_latency
                    );
                }
                let total: u64 = report.report.firings.iter().sum();
                assert_eq!(
                    total, plain_firings,
                    "{preset}/{kname} seed {seed:#x}: storm run lost work"
                );
                let ratio = out.throughput_ratio();
                assert!(
                    ratio > 0.0 && ratio <= 1.0,
                    "{preset}/{kname} seed {seed:#x}: ratio {ratio}"
                );
                if out.is_degraded() {
                    degraded_runs += 1;
                }
                ran += 1;
            }
        }
    }
    assert!(ran >= 10, "soak matrix too small: only {ran} runs mapped");
    // Not asserted > 0: whether a storm exhausts the structural rungs
    // depends on the seed. Tracked so a future regression that silently
    // disables the ladder shows up as a changed count under fixed seeds.
    let _ = degraded_runs;
}

#[test]
fn storm_replay_is_bit_identical() {
    let policy = RecoveryPolicy::default();
    for (preset, adg) in fixtures() {
        let (kname, kernel) = &workloads()[0];
        let Some((compiled, _)) = build(&adg, kernel) else {
            continue;
        };
        let seed = seeds()[0];
        let storm = storm_for(seed, compiled.perf.cycles as u64);
        let run = || {
            recover_with_degradation(
                &adg,
                &compiled,
                &SimConfig::default(),
                &storm,
                &policy,
                &Telemetry::disabled(),
            )
            .unwrap_or_else(|e| panic!("{preset}/{kname} seed {seed:#x}: {e}"))
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "{preset}/{kname} seed {seed:#x}: replay diverged");
    }
}

#[test]
fn degradation_is_monotonic_over_storm_prefixes() {
    let policy = RecoveryPolicy::default();
    let (_, adg) = &fixtures()[0];
    let (kname, kernel) = &workloads()[0];
    let (compiled, plain_firings) = build(adg, kernel).expect("softbrain/mvt maps");
    // One seed (the sharded one under DSAGEN_SOAK_SEED): each prefix is
    // a full cycle-accurate replay, so the sweep is kept narrow.
    {
        let seed = seeds()[0];
        let storm = storm_for(seed, compiled.perf.cycles as u64);
        let mut prev_ratio = f64::INFINITY;
        for k in 0..=storm.len() {
            let prefix = storm.prefix(k);
            let out = recover_with_degradation(
                adg,
                &compiled,
                &SimConfig::default(),
                &prefix,
                &policy,
                &Telemetry::disabled(),
            )
            .unwrap_or_else(|e| panic!("{kname} seed {seed:#x} prefix {k}: {e}"));
            let total: u64 = out.report().report.firings.iter().sum();
            assert_eq!(total, plain_firings, "{kname} seed {seed:#x} prefix {k}");
            let ratio = out.throughput_ratio();
            // More faults can only slow the fabric down. Repair is a
            // stochastic search, so allow a small jitter tolerance.
            assert!(
                ratio <= prev_ratio + 0.10,
                "{kname} seed {seed:#x}: prefix {k} ratio {ratio:.3} improved past \
{prev_ratio:.3}"
            );
            prev_ratio = ratio.min(prev_ratio);
        }
    }
}

#[test]
fn degraded_telemetry_spans_are_emitted_when_the_ladder_bottoms_out() {
    // A saturated 1×2 fabric forces the ladder past its structural rungs
    // deterministically (decommissioning either busy PE is infeasible),
    // so the `recovery/degraded` spans must appear.
    use dsagen::adg::{OpSet, PeSpec, Scheduling, Sharing};
    use dsagen::faults::FaultKind;
    let pe = PeSpec::new(
        Scheduling::Static,
        Sharing::Dedicated,
        OpSet::integer_alu().union(OpSet::integer_mul()),
    );
    let adg = presets::mesh(&presets::MeshConfig::new("soak-tiny", 1, 2, pe));
    // A 256-element dot product: one Mul and one reducing Add, exactly
    // filling the two dedicated PEs.
    let mut k = KernelBuilder::new("soak-dot");
    let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
    let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
    let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
    let mut r = k.region("body", 1.0);
    let i = r.for_loop(TripCount::fixed(256), true);
    let va = r.load(a, AffineExpr::var(i));
    let vb = r.load(b, AffineExpr::var(i));
    let p = r.bin(Opcode::Mul, va, vb);
    let acc = r.reduce(Opcode::Add, p, i);
    r.store(c, AffineExpr::constant(0), acc);
    k.finish_region(r);
    let kernel = k.build().expect("dot builds");
    let Some((compiled, _)) = build(&adg, &kernel) else {
        panic!("dot must map onto the 1x2 mesh");
    };
    let faults = FaultSchedule::new(seeds()[0]).with(
        200,
        FaultLifetime::Permanent,
        FaultKind::DeadPe,
    );
    let tel = Telemetry::in_memory();
    let out = recover_with_degradation(
        &adg,
        &compiled,
        &SimConfig::default(),
        &faults,
        &RecoveryPolicy::default(),
        &tel,
    )
    .expect("degraded rung must serve");
    assert!(out.is_degraded(), "got {out}");
    let events = tel.events();
    assert!(
        events
            .iter()
            .any(|e| e.cat == "recovery/degraded" && e.name == "reschedule"),
        "missing recovery/degraded reschedule span"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "recovery/degraded" && e.name == "entered"),
        "missing recovery/degraded entered event"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "recovery/degraded" && e.name == "throughput"),
        "missing recovery/degraded throughput event"
    );
    assert!(
        events.iter().any(|e| e.cat == "recovery" && e.name == "rung"),
        "missing recovery rung attribution"
    );
}

/// The concurrent multi-domain workload: `pipe-split`'s two live
/// pipeline stages touch disjoint memories, so they must partition into
/// two recovery domains on every soak preset — and across a small seed
/// sweep, domain-sliced rollback must actually engage (non-zero
/// `replayed_cycles_saved`), the ROADMAP gap this fixture closes.
#[test]
fn pipe_split_forms_two_live_domains_and_scoped_rollback_saves_replay() {
    let policy = RecoveryPolicy::default();
    let mut saved_total: u64 = 0;
    let mut mapped = 0usize;
    for (preset, adg) in fixtures() {
        let kernel = dsagen::workloads::polybench::pipe_split();
        let Some((compiled, plain_firings)) = build(&adg, &kernel) else {
            continue;
        };
        mapped += 1;
        let doms = dsagen::sim::RecoveryDomains::derive(
            &adg,
            &compiled.version,
            &compiled.schedule,
        );
        assert!(
            doms.len() >= 2,
            "{preset}: pipe-split stages collapsed into {} domain(s)",
            doms.len()
        );
        for seed in [0x50ACu64, 77, 3, 5] {
            let storm = storm_for(seed, compiled.perf.cycles as u64);
            let out = recover_with_degradation(
                &adg,
                &compiled,
                &SimConfig::default(),
                &storm,
                &policy,
                &Telemetry::disabled(),
            )
            .unwrap_or_else(|e| panic!("{preset}/pipe-split seed {seed:#x}: {e}"));
            let report = out.report();
            let total: u64 = report.report.firings.iter().sum();
            assert_eq!(
                total, plain_firings,
                "{preset}/pipe-split seed {seed:#x}: storm run lost work"
            );
            saved_total += report.replayed_cycles_saved();
        }
    }
    assert!(mapped >= 2, "pipe-split must map on most presets, got {mapped}");
    assert!(
        saved_total > 0,
        "domain-sliced rollback never engaged across the pipe-split sweep"
    );
}
