//! Golden-file regression tests for the §VI hardware generator.
//!
//! For two preset accelerators the full flow — compile a workload, encode
//! its configuration bitstream, emit the fabric's structural Verilog — is
//! pinned against checked-in snapshots under `tests/golden/`. The entire
//! pipeline is deterministic (the stochastic scheduler is seeded, the
//! vendored PRNG is platform-stable), so any diff is a real behavioral
//! change in the compiler, scheduler, or generator.
//!
//! To bless intentional changes, regenerate the snapshots:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dsagen --test golden
//! ```
//!
//! On mismatch the test prints a unified-style excerpt around the first
//! diverging line, so CI logs show *what* changed, not just that it did.

use std::fmt::Write as _;
use std::path::PathBuf;

use dsagen::prelude::*;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn update_mode() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Compares `actual` against the snapshot `name`, regenerating it when
/// `UPDATE_GOLDEN` is set. Prints a context diff around the first
/// mismatching line on failure.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if update_mode() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        dsagen::telemetry::log(
            dsagen::telemetry::Level::Warn,
            format!("updated golden file {}", path.display()),
        );
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    panic!("{}", render_diff(name, &expected, actual));
}

/// First-divergence excerpt: a few lines of shared context, then the
/// expected vs actual lines, then how much trailing content differs.
fn render_diff(name: &str, expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let first = exp
        .iter()
        .zip(&act)
        .position(|(e, a)| e != a)
        .unwrap_or(exp.len().min(act.len()));
    let ctx_start = first.saturating_sub(3);
    let mut out = format!(
        "golden mismatch in {name}: first divergence at line {} (expected {} lines, got {})\n",
        first + 1,
        exp.len(),
        act.len()
    );
    for (i, line) in exp.iter().enumerate().take(first).skip(ctx_start) {
        let _ = writeln!(out, "   {:>5} | {line}", i + 1);
    }
    for line in exp.iter().skip(first).take(4) {
        let _ = writeln!(out, " - {:>5} | {line}", first + 1);
    }
    for line in act.iter().skip(first).take(4) {
        let _ = writeln!(out, " + {:>5} | {line}", first + 1);
    }
    let _ = writeln!(
        out,
        "(re-bless with UPDATE_GOLDEN=1 cargo test -p dsagen --test golden)"
    );
    out
}

fn opts() -> CompileOptions {
    CompileOptions {
        max_unroll: 2,
        scheduler: SchedulerConfig {
            max_iters: 200,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    }
}

/// Renders the bitstream as one hex word per line — stable, diffable, and
/// round-trippable through `Bitstream::from_words`.
fn bitstream_text(adg: &dsagen::adg::Adg, kernel: &dsagen::dfg::Kernel) -> String {
    let compiled = dsagen::compile(adg, kernel, &opts())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, adg.name()));
    let hw = dsagen::generate(adg, &compiled, 4, 1);
    // Self-check before pinning: the encoding must round-trip.
    let words = hw.bitstream.to_words();
    let back = dsagen::hwgen::Bitstream::from_words(&words).expect("round-trip");
    assert_eq!(back.to_words(), words, "bitstream round-trip is lossy");
    let mut s = String::with_capacity(words.len() * 17);
    for w in &words {
        let _ = writeln!(s, "{w:016x}");
    }
    s
}

#[test]
fn softbrain_mm_bitstream_matches_golden() {
    let adg = dsagen::adg::presets::softbrain();
    let kernel = dsagen::workloads::machsuite::mm();
    check_golden("softbrain_mm.bitstream.hex", &bitstream_text(&adg, &kernel));
}

#[test]
fn softbrain_rtl_matches_golden() {
    let adg = dsagen::adg::presets::softbrain();
    check_golden("softbrain.v", &dsagen::hwgen::emit_verilog(&adg));
}

#[test]
fn spu_histogram_bitstream_matches_golden() {
    let adg = dsagen::adg::presets::spu();
    let kernel = dsagen::workloads::sparse::histogram();
    check_golden("spu_histogram.bitstream.hex", &bitstream_text(&adg, &kernel));
}

#[test]
fn spu_rtl_matches_golden() {
    let adg = dsagen::adg::presets::spu();
    check_golden("spu.v", &dsagen::hwgen::emit_verilog(&adg));
}

#[test]
fn diff_renderer_pinpoints_first_divergence() {
    let d = render_diff("x", "a\nb\nc\n", "a\nB\nc\n");
    assert!(d.contains("line 2"), "{d}");
    assert!(d.contains(" - "), "{d}");
    assert!(d.contains(" + "), "{d}");
}
