//! Differential test harness: every workload kernel that compiles and
//! schedules on a preset ADG is executed through the *co-simulator*
//! ([`dsagen::sim::simulate_functional`]) and its functional outputs are
//! compared against an independent run of the dataflow reference
//! interpreter ([`dsagen::dfg::interp::execute`]) over the same seeded
//! inputs.
//!
//! The cycle-level engine is value-free, so the differential contract has
//! two halves that must hold together:
//!
//! * **delivery** — the timing engine accepts the schedule and fires every
//!   region exactly its compiled instance count (a stalled or under-fired
//!   region is how real hardware silently drops work);
//! * **values** — the outputs produced by the verified execution are
//!   bit-identical to the reference interpreter's.
//!
//! Kernels that legitimately fail to map on the target (e.g. no FP units)
//! are recorded as `unmapped` and skipped; the test still requires a
//! minimum number of verified kernels so the harness keeps its teeth. On
//! any failure a per-kernel pass table is printed.

use std::collections::BTreeMap;

use dsagen::adg::Adg;
use dsagen::dfg::interp::execute;
use dsagen::prelude::*;
use dsagen::sim::{simulate_functional, SimConfig};
use dsagen::workloads::{all, data, Workload};

fn opts() -> CompileOptions {
    CompileOptions {
        // Modest enumeration keeps the whole-suite sweep fast; the
        // unroll-heavy versions are covered by the end-to-end tests.
        max_unroll: 2,
        scheduler: SchedulerConfig {
            max_iters: 200,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    }
}

/// Seeded inputs per kernel, mirroring `tests/functional.rs`: index-like
/// arrays (neighbor lists, sparse columns, scatter indices) must be valid,
/// everything else is seeded dense data. Kernels not listed here run on
/// zero-filled arrays, which every kernel accepts.
fn seeded_inputs(name: &str) -> BTreeMap<String, Vec<f64>> {
    let pairs: Vec<(&str, Vec<f64>)> = match name {
        "mm" => vec![
            ("a", data::dense_f64(64 * 64, -1.0, 1.0, 1)),
            ("b", data::dense_f64(64 * 64, -1.0, 1.0, 2)),
        ],
        "stencil-2d" => vec![
            ("src", data::dense_f64(130 * 130, 0.0, 1.0, 3)),
            ("coef", data::dense_f64(9, -1.0, 1.0, 4)),
        ],
        "stencil-3d" => vec![(
            "src",
            data::dense_f64(32 * 32 * 16 + 2 * 32 * 32, -1.0, 1.0, 6),
        )],
        "md" => {
            let (atoms, neighbors) = (128usize, 16usize);
            let mut nl = Vec::with_capacity(atoms * neighbors);
            for i in 0..atoms {
                for j in 0..neighbors {
                    nl.push(((i + j + 1) % atoms) as f64); // never self
                }
            }
            vec![
                ("pos_x", data::dense_f64(atoms, -4.0, 4.0, 80)),
                ("pos_y", data::dense_f64(atoms, -4.0, 4.0, 81)),
                ("pos_z", data::dense_f64(atoms, -4.0, 4.0, 82)),
                ("neigh", nl),
            ]
        }
        "spmv-crs" | "spmv-ellpack" => {
            let (rows, width, cols) = (464usize, 4usize, 512usize);
            let (sv, sc, sx) = if name == "spmv-crs" {
                (110, 111, 112)
            } else {
                (20, 21, 22)
            };
            let mut col_idx = Vec::with_capacity(rows * width);
            for r in 0..rows {
                for c in data::sparse_row_cols(width, cols, sc + r as u64) {
                    col_idx.push(f64::from(c));
                }
            }
            vec![
                ("vals", data::dense_f64(rows * width, -1.0, 1.0, sv)),
                ("cols", col_idx),
                ("x", data::dense_f64(cols, -1.0, 1.0, sx)),
            ]
        }
        "histogram" => vec![(
            "samples",
            data::histogram_samples(1 << 16, 1 << 10, 5)
                .into_iter()
                .map(f64::from)
                .collect(),
        )],
        "join" => vec![
            (
                "key0",
                data::sorted_keys(768, 0.33, 10)
                    .into_iter()
                    .map(|k| k as f64)
                    .collect(),
            ),
            ("val0", data::dense_f64(768, 1.0, 5.0, 12)),
            (
                "key1",
                data::sorted_keys(768, 0.33, 11)
                    .into_iter()
                    .map(|k| k as f64)
                    .collect(),
            ),
            ("val1", data::dense_f64(768, 1.0, 5.0, 13)),
        ],
        "qr" | "cholesky" => {
            let n = 32usize;
            let mut a = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    a[i * n + j] = if i == j {
                        8.0
                    } else {
                        1.0 / (1.0 + (i as f64 - j as f64).abs())
                    };
                }
            }
            vec![("a", a)]
        }
        "fft" => vec![
            ("re", data::dense_f64(1 << 10, -1.0, 1.0, 70)),
            ("im", data::dense_f64(1 << 10, -1.0, 1.0, 71)),
            ("tw_re", data::dense_f64(1 << 9, -1.0, 1.0, 72)),
            ("tw_im", data::dense_f64(1 << 9, -1.0, 1.0, 73)),
        ],
        "centro-fir" => vec![
            ("x", data::dense_f64(2048 + 32, -1.0, 1.0, 30)),
            ("coef", data::dense_f64(16, -1.0, 1.0, 31)),
        ],
        // 16-bit integer FIR: keep values small and integral so the
        // narrow datapath cannot wrap.
        "fir16" => vec![
            (
                "x",
                data::dense_f64(2048 + 32, 0.0, 4.0, 32)
                    .into_iter()
                    .map(f64::trunc)
                    .collect(),
            ),
            (
                "coef",
                data::dense_f64(16, 0.0, 3.0, 33)
                    .into_iter()
                    .map(f64::trunc)
                    .collect(),
            ),
        ],
        "poly-2mm" => vec![
            ("a", data::dense_f64(32 * 32, -1.0, 1.0, 90)),
            ("b", data::dense_f64(32 * 32, -1.0, 1.0, 91)),
            ("c", data::dense_f64(32 * 32, -1.0, 1.0, 92)),
        ],
        "poly-3mm" => vec![
            ("a", data::dense_f64(32 * 32, -1.0, 1.0, 90)),
            ("b", data::dense_f64(32 * 32, -1.0, 1.0, 91)),
            ("c", data::dense_f64(32 * 32, -1.0, 1.0, 92)),
            ("d", data::dense_f64(32 * 32, -1.0, 1.0, 93)),
        ],
        "poly-atax" => vec![
            ("a", data::dense_f64(32 * 32, -1.0, 1.0, 60)),
            ("x", data::dense_f64(32, -1.0, 1.0, 61)),
        ],
        "poly-mvt" => vec![
            ("a", data::dense_f64(32 * 32, -1.0, 1.0, 94)),
            ("y1", data::dense_f64(32, -1.0, 1.0, 95)),
            ("y2", data::dense_f64(32, -1.0, 1.0, 96)),
        ],
        "poly-bicg" => vec![
            ("a", data::dense_f64(32 * 32, -1.0, 1.0, 94)),
            ("r", data::dense_f64(32, -1.0, 1.0, 97)),
            ("p", data::dense_f64(32, -1.0, 1.0, 98)),
        ],
        "nn-conv" => vec![
            ("input", data::dense_f64(28 * 28, -1.0, 1.0, 100)),
            ("weights", data::dense_f64(8 * 9, -1.0, 1.0, 101)),
        ],
        "nn-pool" => vec![("input", data::dense_f64(8 * 26 * 26, -1.0, 1.0, 50))],
        "nn-classifier" => vec![
            ("x", data::dense_f64(256, -0.5, 0.5, 40)),
            ("w", data::dense_f64(256 * 128, -0.2, 0.2, 41)),
        ],
        "sparse-cnn" => vec![
            ("val_a", data::dense_f64(256, -1.0, 1.0, 120)),
            (
                "idx_a",
                data::sparse_row_cols(256, 4096, 121)
                    .into_iter()
                    .map(f64::from)
                    .collect(),
            ),
            ("val_b", data::dense_f64(256, -1.0, 1.0, 123)),
            (
                "idx_b",
                data::sparse_row_cols(256, 4096, 122)
                    .into_iter()
                    .map(f64::from)
                    .collect(),
            ),
        ],
        _ => vec![],
    };
    pairs
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect()
}

/// Outcome of one (kernel, accelerator) differential run.
#[derive(Debug, Clone, PartialEq)]
enum Status {
    /// Delivery held and outputs matched the reference bit-for-bit.
    Verified { cycles: u64 },
    /// No legal mapping on this accelerator — legitimate, recorded.
    Unmapped(String),
    /// The reference interpreter itself rejected the kernel/input pair;
    /// there is nothing to differentiate against.
    RefError(String),
    /// Divergence: delivery broke or outputs mismatched. Always fatal.
    Failed(String),
}

impl Status {
    fn label(&self) -> String {
        match self {
            Status::Verified { cycles } => format!("verified ({cycles} cycles)"),
            Status::Unmapped(e) => format!("unmapped: {e}"),
            Status::RefError(e) => format!("ref-error: {e}"),
            Status::Failed(e) => format!("FAILED: {e}"),
        }
    }
}

fn first_mismatch(got: &BTreeMap<String, Vec<f64>>, want: &BTreeMap<String, Vec<f64>>) -> Option<String> {
    if got.keys().ne(want.keys()) {
        return Some(format!(
            "output arrays differ: sim {:?} vs ref {:?}",
            got.keys().collect::<Vec<_>>(),
            want.keys().collect::<Vec<_>>()
        ));
    }
    for (name, g) in got {
        let w = &want[name];
        if g.len() != w.len() {
            return Some(format!("{name}: length {} vs {}", g.len(), w.len()));
        }
        for (i, (a, b)) in g.iter().zip(w).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(format!("{name}[{i}]: sim {a} vs ref {b}"));
            }
        }
    }
    None
}

/// One differential run: compile onto `adg`, co-simulate with seeded
/// inputs, compare against the independent reference execution.
fn run_one(adg: &Adg, w: &Workload) -> Status {
    let inputs = seeded_inputs(w.name);
    let reference = match execute(&w.kernel, &inputs) {
        Ok(r) => r,
        Err(e) => return Status::RefError(e.to_string()),
    };
    let compiled = match dsagen::compile(adg, &w.kernel, &opts()) {
        Ok(c) => c,
        Err(e) => return Status::Unmapped(e.to_string()),
    };
    let report = match simulate_functional(
        adg,
        &w.kernel,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &SimConfig::default(),
        &inputs,
    ) {
        Ok(r) => r,
        Err(e) => return Status::Failed(e.to_string()),
    };
    match first_mismatch(&report.outputs, &reference) {
        Some(m) => Status::Failed(m),
        None => Status::Verified {
            cycles: report.timing.cycles,
        },
    }
}

/// Renders the per-kernel pass table and logs it at `info` level
/// (visible with `DSAGEN_LOG=info`); failures are still reported through
/// panics, so the table is informational only.
fn print_table(rows: &[(String, &'static str, Status)]) {
    use std::fmt::Write as _;
    let mut table = String::new();
    let _ = write!(
        table,
        "\n{:-<76}\n{:<16} {:<12} result\n{:-<76}",
        "", "kernel", "adg", ""
    );
    for (name, adg, status) in rows {
        let _ = write!(table, "\n{name:<16} {adg:<12} {}", status.label());
    }
    let _ = write!(table, "\n{:-<76}", "");
    dsagen::telemetry::log(dsagen::telemetry::Level::Info, table);
}

#[test]
fn every_workload_matches_the_reference_interpreter() {
    let adg = dsagen::adg::presets::softbrain();
    let mut rows = Vec::new();
    for w in all() {
        let status = run_one(&adg, &w);
        rows.push((w.name.to_string(), "softbrain", status));
    }

    let verified = rows
        .iter()
        .filter(|(_, _, s)| matches!(s, Status::Verified { .. }))
        .count();
    let failed: Vec<_> = rows
        .iter()
        .filter(|(_, _, s)| matches!(s, Status::Failed(_)))
        .collect();
    if !failed.is_empty() || verified < 15 {
        print_table(&rows);
        panic!(
            "differential harness: {verified}/{} verified, {} diverged",
            rows.len(),
            failed.len()
        );
    }
}

#[test]
fn delivery_contract_holds_across_accelerators() {
    // A representative slice per idiom family, re-verified on topologies
    // with different capabilities: outputs are hardware-independent, so
    // every accelerator the kernel maps onto must reproduce the identical
    // reference values while honoring the delivery contract on its own
    // (different) schedule.
    let wanted = ["mm", "centro-fir", "histogram", "join", "poly-atax"];
    let accelerators = [
        dsagen::adg::presets::spu(),
        dsagen::adg::presets::revel(),
    ];
    let mut rows = Vec::new();
    for w in all() {
        if !wanted.contains(&w.name) {
            continue;
        }
        for adg in &accelerators {
            let status = run_one(adg, &w);
            rows.push((
                w.name.to_string(),
                match adg.name() {
                    "spu" => "spu",
                    _ => "revel",
                },
                status,
            ));
        }
    }
    let bad: Vec<_> = rows
        .iter()
        .filter(|(_, _, s)| matches!(s, Status::Failed(_)))
        .collect();
    let verified = rows
        .iter()
        .filter(|(_, _, s)| matches!(s, Status::Verified { .. }))
        .count();
    if !bad.is_empty() || verified < 6 {
        print_table(&rows);
        panic!(
            "cross-accelerator differential: {verified}/{} verified, {} diverged",
            rows.len(),
            bad.len()
        );
    }
}
