//! Functional validation: every evaluation workload, executed by the
//! value-level interpreter over seeded data, must match a hand-written
//! reference implementation. This pins down the *semantics* of the kernel
//! IR — the timing results of the other tests are meaningless if the
//! kernels don't compute what the paper's kernels compute.

use std::collections::BTreeMap;

use dsagen::dfg::interp::execute;
use dsagen::workloads::data;

fn inputs(pairs: &[(&str, Vec<f64>)]) -> BTreeMap<String, Vec<f64>> {
    pairs
        .iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect()
}

fn assert_close(actual: &[f64], expected: &[f64], tol: f64, what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: length mismatch");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!(
            (a - e).abs() <= tol * (1.0 + e.abs()),
            "{what}[{i}]: got {a}, expected {e}"
        );
    }
}

#[test]
fn gemm_matches_naive_matmul() {
    let n = 64usize;
    let a = data::dense_f64(n * n, -1.0, 1.0, 1);
    let b = data::dense_f64(n * n, -1.0, 1.0, 2);
    let kernel = dsagen::workloads::machsuite::mm();
    let out = execute(&kernel, &inputs(&[("a", a.clone()), ("b", b.clone())])).unwrap();

    let mut expected = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            expected[i * n + j] = acc;
        }
    }
    assert_close(&out["c"], &expected, 1e-9, "gemm");
}

#[test]
fn stencil2d_matches_direct_convolution() {
    let (n, m) = (130usize, 128usize);
    let src = data::dense_f64(n * n, 0.0, 1.0, 3);
    let coef = data::dense_f64(9, -1.0, 1.0, 4);
    let kernel = dsagen::workloads::machsuite::stencil2d();
    let out = execute(&kernel, &inputs(&[("src", src.clone()), ("coef", coef.clone())])).unwrap();

    let mut expected = vec![0.0; m * m];
    for r in 0..m {
        for c in 0..m {
            let mut acc = 0.0;
            for dr in 0..3 {
                for dc in 0..3 {
                    acc += src[(r + dr) * n + (c + dc)] * coef[dr * 3 + dc];
                }
            }
            expected[r * m + c] = acc;
        }
    }
    assert_close(&out["dst"], &expected, 1e-9, "stencil2d");
}

#[test]
fn histogram_matches_counting() {
    let (bins, samples) = (1usize << 10, 1usize << 14); // smaller sample set, same bins
    let idx: Vec<f64> = data::histogram_samples(samples, bins, 5)
        .into_iter()
        .map(f64::from)
        .collect();
    // The Table I kernel uses 2^16 samples; the interpreter accepts any
    // prefix by zero-padding — instead build the same kernel shape at
    // reduced size via the public builder for an exact comparison.
    let kernel = dsagen::workloads::sparse::histogram();
    let mut padded = idx.clone();
    padded.resize(1 << 16, 0.0);
    let out = execute(&kernel, &inputs(&[("samples", padded.clone())])).unwrap();

    let mut expected = vec![0.0; bins];
    for s in &padded {
        expected[*s as usize] += 1.0;
    }
    assert_close(&out["hist"], &expected, 0.0, "histogram");
}

#[test]
fn join_matches_sorted_merge_reference() {
    let len = 768usize;
    let k0: Vec<f64> = data::sorted_keys(len, 0.33, 10).into_iter().map(|k| k as f64).collect();
    let k1: Vec<f64> = data::sorted_keys(len, 0.33, 11).into_iter().map(|k| k as f64).collect();
    let v0 = data::dense_f64(len, 1.0, 5.0, 12);
    let v1 = data::dense_f64(len, 1.0, 5.0, 13);
    let kernel = dsagen::workloads::sparse::join();
    let out = execute(
        &kernel,
        &inputs(&[
            ("key0", k0.clone()),
            ("val0", v0.clone()),
            ("key1", k1.clone()),
            ("val1", v1.clone()),
        ]),
    )
    .unwrap();

    // Reference two-pointer merge. The kernel's values are integers
    // (Opcode::Mul/Add truncate), so truncate in the reference too.
    let (mut i0, mut i1, mut acc) = (0usize, 0usize, 0i64);
    let mut matches = 0;
    while i0 < len && i1 < len {
        if k0[i0] == k1[i1] {
            acc += (v0[i0] as i64).wrapping_mul(v1[i1] as i64);
            matches += 1;
            i0 += 1;
            i1 += 1;
        } else if k0[i0] < k1[i1] {
            i0 += 1;
        } else {
            i1 += 1;
        }
    }
    assert!(matches > 50, "want a meaningful match count, got {matches}");
    assert_eq!(out["out"][0], acc as f64, "join accumulation");
}

#[test]
fn spmv_ellpack_matches_reference() {
    let (rows, width, cols) = (464usize, 4usize, 512usize);
    let vals = data::dense_f64(rows * width, -1.0, 1.0, 20);
    let mut col_idx = Vec::with_capacity(rows * width);
    for r in 0..rows {
        for c in data::sparse_row_cols(width, cols, 21 + r as u64) {
            col_idx.push(f64::from(c));
        }
    }
    let x = data::dense_f64(cols, -1.0, 1.0, 22);
    let kernel = dsagen::workloads::machsuite::spmv_ellpack();
    let out = execute(
        &kernel,
        &inputs(&[
            ("vals", vals.clone()),
            ("cols", col_idx.clone()),
            ("x", x.clone()),
        ]),
    )
    .unwrap();

    let mut expected = vec![0.0; rows];
    for r in 0..rows {
        for j in 0..width {
            expected[r] += vals[r * width + j] * x[col_idx[r * width + j] as usize];
        }
    }
    assert_close(&out["y"], &expected, 1e-9, "spmv-ellpack");
}

#[test]
fn centro_fir_matches_reference() {
    let (n, taps) = (2048usize, 32usize);
    let x = data::dense_f64(n + taps, -1.0, 1.0, 30);
    let coef = data::dense_f64(taps / 2, -1.0, 1.0, 31);
    let kernel = dsagen::workloads::dsp::centro_fir();
    let out = execute(&kernel, &inputs(&[("x", x.clone()), ("coef", coef.clone())])).unwrap();

    let mut expected = vec![0.0; n];
    for i in 0..n {
        for j in 0..taps / 2 {
            expected[i] += (x[i + j] + x[i + taps - 1 - j]) * coef[j];
        }
    }
    assert_close(&out["y"], &expected, 1e-9, "centro-fir");
}

#[test]
fn classifier_matches_matvec_sigmoid() {
    let (nin, nout) = (256usize, 128usize);
    let x = data::dense_f64(nin, -0.5, 0.5, 40);
    let w = data::dense_f64(nin * nout, -0.2, 0.2, 41);
    let kernel = dsagen::workloads::nn::classifier();
    let out = execute(&kernel, &inputs(&[("x", x.clone()), ("w", w.clone())])).unwrap();

    let mut expected = vec![0.0; nout];
    for o in 0..nout {
        let mut acc = 0.0;
        for i in 0..nin {
            acc += w[o * nin + i] * x[i];
        }
        expected[o] = 1.0 / (1.0 + (-acc).exp());
    }
    assert_close(&out["y"], &expected, 1e-9, "classifier");
}

#[test]
fn pool_matches_max_pooling() {
    let (dim, odim, ch) = (26usize, 13usize, 8usize);
    let input = data::dense_f64(ch * dim * dim, -1.0, 1.0, 50);
    let kernel = dsagen::workloads::nn::pool();
    let out = execute(&kernel, &inputs(&[("input", input.clone())])).unwrap();

    let mut expected = vec![0.0; ch * odim * odim];
    for c in 0..ch {
        for r in 0..odim {
            for q in 0..odim {
                let base = c * dim * dim + 2 * r * dim + 2 * q;
                expected[c * odim * odim + r * odim + q] = input[base]
                    .max(input[base + 1])
                    .max(input[base + dim])
                    .max(input[base + dim + 1]);
            }
        }
    }
    assert_close(&out["output"], &expected, 0.0, "pool");
}

#[test]
fn atax_matches_reference() {
    let n = 32usize;
    let a = data::dense_f64(n * n, -1.0, 1.0, 60);
    let x = data::dense_f64(n, -1.0, 1.0, 61);
    let kernel = dsagen::workloads::polybench::atax();
    let out = execute(&kernel, &inputs(&[("a", a.clone()), ("x", x.clone())])).unwrap();

    let mut expected = vec![0.0; n];
    for i in 0..n {
        let mut tmp = 0.0;
        for j in 0..n {
            tmp += a[i * n + j] * x[j];
        }
        for j in 0..n {
            expected[j] += a[i * n + j] * tmp;
        }
    }
    assert_close(&out["y"], &expected, 1e-9, "atax");
}

#[test]
fn qr_and_cholesky_produce_finite_structured_output() {
    // Full factorization references are out of scope; pin the semantics:
    // spd-ish inputs yield finite outputs with nonzero content.
    let n = 32usize;
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = if i == j { 8.0 } else { 1.0 / (1.0 + (i as f64 - j as f64).abs()) };
        }
    }
    for kernel in [dsagen::workloads::dsp::qr(), dsagen::workloads::dsp::cholesky()] {
        let out = execute(&kernel, &inputs(&[("a", a.clone())])).unwrap();
        for (name, arr) in &out {
            assert!(
                arr.iter().all(|v| v.is_finite()),
                "{}: {name} has non-finite values",
                kernel.name
            );
        }
        let result = out.values().flat_map(|v| v.iter()).filter(|v| **v != 0.0).count();
        assert!(result > 0, "{}: all-zero output", kernel.name);
    }
}

#[test]
fn fft_kernel_matches_its_own_reference_loops() {
    // The kernel models repeated butterfly stages; the reference executes
    // the identical arithmetic directly.
    let n = 1usize << 10;
    let half = n / 2;
    let re0 = data::dense_f64(n, -1.0, 1.0, 70);
    let im0 = data::dense_f64(n, -1.0, 1.0, 71);
    let twr = data::dense_f64(half, -1.0, 1.0, 72);
    let twi = data::dense_f64(half, -1.0, 1.0, 73);
    let kernel = dsagen::workloads::dsp::fft();
    let out = execute(
        &kernel,
        &inputs(&[
            ("re", re0.clone()),
            ("im", im0.clone()),
            ("tw_re", twr.clone()),
            ("tw_im", twi.clone()),
        ]),
    )
    .unwrap();

    let (mut re, mut im) = (re0, im0);
    for _stage in 0..10 {
        for b in 0..half {
            let (ar, ai) = (re[2 * b], im[2 * b]);
            let (br, bi) = (re[2 * b + 1], im[2 * b + 1]);
            let tr = br * twr[b] - bi * twi[b];
            let ti = br * twi[b] + bi * twr[b];
            re[2 * b] = ar + tr;
            im[2 * b] = ai + ti;
            re[2 * b + 1] = ar - tr;
            im[2 * b + 1] = ai - ti;
        }
    }
    assert_close(&out["re"], &re, 1e-9, "fft re");
    assert_close(&out["im"], &im, 1e-9, "fft im");
}


#[test]
fn md_matches_lennard_jones_reference() {
    let (atoms, neighbors) = (128usize, 16usize);
    let px = data::dense_f64(atoms, -4.0, 4.0, 80);
    let py = data::dense_f64(atoms, -4.0, 4.0, 81);
    let pz = data::dense_f64(atoms, -4.0, 4.0, 82);
    // Neighbor list: any indices except self (self would divide by zero).
    let mut nl = Vec::with_capacity(atoms * neighbors);
    for i in 0..atoms {
        for j in 0..neighbors {
            nl.push(((i + j + 1) % atoms) as f64);
        }
    }
    let kernel = dsagen::workloads::machsuite::md();
    let out = execute(
        &kernel,
        &inputs(&[
            ("pos_x", px.clone()),
            ("pos_y", py.clone()),
            ("pos_z", pz.clone()),
            ("neigh", nl.clone()),
        ]),
    )
    .unwrap();

    // Reference: the exact arithmetic of the kernel (LJ-flavored).
    let mut fx = vec![0.0; atoms];
    let mut fy = vec![0.0; atoms];
    let mut fz = vec![0.0; atoms];
    for i in 0..atoms {
        for j in 0..neighbors {
            let n = nl[i * neighbors + j] as usize;
            let (dx, dy, dz) = (px[i] - px[n], py[i] - py[n], pz[i] - pz[n]);
            let r2 = dx * dx + dy * dy + dz * dz;
            let r2inv = 1.0 / r2;
            let r6 = r2inv * r2inv * r2inv;
            let force = r6 * (r6 - 0.0) * r2inv;
            fx[i] += force * dx;
            fy[i] += force * dy;
            fz[i] += force * dz;
        }
    }
    assert_close(&out["force_x"], &fx, 1e-9, "md fx");
    assert_close(&out["force_y"], &fy, 1e-9, "md fy");
    assert_close(&out["force_z"], &fz, 1e-9, "md fz");
}

#[test]
fn mm2_and_mm3_match_chained_matmuls() {
    let n = 32usize;
    let matmul = |x: &[f64], y: &[f64]| {
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    out[i * n + j] += x[i * n + k] * y[k * n + j];
                }
            }
        }
        out
    };
    let a = data::dense_f64(n * n, -1.0, 1.0, 90);
    let b = data::dense_f64(n * n, -1.0, 1.0, 91);
    let c = data::dense_f64(n * n, -1.0, 1.0, 92);
    let d = data::dense_f64(n * n, -1.0, 1.0, 93);

    let out2 = execute(
        &dsagen::workloads::polybench::mm2(),
        &inputs(&[("a", a.clone()), ("b", b.clone()), ("c", c.clone())]),
    )
    .unwrap();
    assert_close(&out2["d"], &matmul(&matmul(&a, &b), &c), 1e-9, "2mm");

    let out3 = execute(
        &dsagen::workloads::polybench::mm3(),
        &inputs(&[
            ("a", a.clone()),
            ("b", b.clone()),
            ("c", c.clone()),
            ("d", d.clone()),
        ]),
    )
    .unwrap();
    assert_close(
        &out3["g"],
        &matmul(&matmul(&a, &b), &matmul(&c, &d)),
        1e-9,
        "3mm",
    );
}

#[test]
fn mvt_and_bicg_match_references() {
    let n = 32usize;
    let a = data::dense_f64(n * n, -1.0, 1.0, 94);
    let y1 = data::dense_f64(n, -1.0, 1.0, 95);
    let y2 = data::dense_f64(n, -1.0, 1.0, 96);

    let out = execute(
        &dsagen::workloads::polybench::mvt(),
        &inputs(&[("a", a.clone()), ("y1", y1.clone()), ("y2", y2.clone())]),
    )
    .unwrap();
    let mut x1 = vec![0.0; n];
    let mut x2 = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            x1[i] += a[i * n + j] * y1[j];
            x2[i] += a[j * n + i] * y2[j];
        }
    }
    assert_close(&out["x1"], &x1, 1e-9, "mvt x1");
    assert_close(&out["x2"], &x2, 1e-9, "mvt x2");

    let r = data::dense_f64(n, -1.0, 1.0, 97);
    let p = data::dense_f64(n, -1.0, 1.0, 98);
    let out = execute(
        &dsagen::workloads::polybench::bicg(),
        &inputs(&[("a", a.clone()), ("r", r.clone()), ("p", p.clone())]),
    )
    .unwrap();
    let mut s = vec![0.0; n];
    let mut q = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            s[j] += a[i * n + j] * r[i];
            q[i] += a[i * n + j] * p[j];
        }
    }
    assert_close(&out["s"], &s, 1e-9, "bicg s");
    assert_close(&out["q"], &q, 1e-9, "bicg q");
}

#[test]
fn conv_matches_direct_convolution() {
    let (dim, odim, ch) = (28usize, 26usize, 8usize);
    let input = data::dense_f64(dim * dim, -1.0, 1.0, 100);
    let weights = data::dense_f64(ch * 9, -1.0, 1.0, 101);
    let kernel = dsagen::workloads::nn::conv();
    let out = execute(
        &kernel,
        &inputs(&[("input", input.clone()), ("weights", weights.clone())]),
    )
    .unwrap();

    let mut expected = vec![0.0; ch * odim * odim];
    for oc in 0..ch {
        for r in 0..odim {
            for c in 0..odim {
                let mut acc = 0.0;
                for dr in 0..3 {
                    for dc in 0..3 {
                        acc += input[(r + dr) * dim + (c + dc)] * weights[oc * 9 + dr * 3 + dc];
                    }
                }
                expected[oc * odim * odim + r * odim + c] = acc;
            }
        }
    }
    assert_close(&out["output"], &expected, 1e-9, "conv");
}

#[test]
fn spmv_crs_matches_reference() {
    // The kernel models CRS with a fixed average row length of 4.
    let (rows, avg) = (464usize, 4usize);
    let vals = data::dense_f64(rows * avg, -1.0, 1.0, 110);
    let mut cols = Vec::with_capacity(rows * avg);
    for r in 0..rows {
        for c in data::sparse_row_cols(avg, 512, 111 + r as u64) {
            cols.push(f64::from(c));
        }
    }
    let x = data::dense_f64(512, -1.0, 1.0, 112);
    let kernel = dsagen::workloads::machsuite::spmv_crs();
    let out = execute(
        &kernel,
        &inputs(&[("vals", vals.clone()), ("cols", cols.clone()), ("x", x.clone())]),
    )
    .unwrap();

    let mut expected = vec![0.0; rows];
    for r in 0..rows {
        for j in 0..avg {
            expected[r] += vals[r * avg + j] * x[cols[r * avg + j] as usize];
        }
    }
    assert_close(&out["y"], &expected, 1e-9, "spmv-crs");
}
