//! Control-dependent memory access: run the sorted-key database join on
//! SPU-style hardware (dynamic PEs with stream-join) versus Softbrain
//! (static PEs, scalar fallback), showing why the stream-join
//! transformation is a *modular* feature (§IV-E).
//!
//! Run with: `cargo run --release -p dsagen --example sparse_join`

use dsagen::prelude::*;
use dsagen::sim::{simulate, SimConfig};

fn run_on(adg: &Adg, kernel: &dsagen::dfg::Kernel) -> (u64, bool, u16) {
    let compiled =
        dsagen::compile(adg, kernel, &CompileOptions::default()).expect("join always compiles");
    let report = simulate(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &SimConfig::default(),
    )
    .expect("join always simulates");
    (
        report.cycles,
        compiled.version.config.stream_join,
        compiled.version.config.unroll,
    )
}

fn main() {
    let kernel = dsagen::workloads::sparse::join();
    println!("kernel: sorted-key join, 768 x 2 keys, ~33% match ratio\n");

    let spu = dsagen::adg::presets::spu();
    let (spu_cycles, spu_join, _) = run_on(&spu, &kernel);
    println!(
        "SPU        : {:>8} cycles  (stream-join transformation used: {})",
        spu_cycles, spu_join
    );

    let softbrain = dsagen::adg::presets::softbrain();
    let (soft_cycles, soft_join, _) = run_on(&softbrain, &kernel);
    println!(
        "Softbrain  : {:>8} cycles  (stream-join transformation used: {})",
        soft_cycles, soft_join
    );

    println!(
        "\nThe dynamic-scheduled, stream-join-capable fabric wins {:.1}x:",
        soft_cycles as f64 / spu_cycles as f64
    );
    println!("the static fabric must fall back to running the two-pointer merge");
    println!("on the control core (§IV-C scalar fallback), while SPU's PEs pop");
    println!("the lesser key in hardware every cycle (§IV-E, Fig 8).");
}
