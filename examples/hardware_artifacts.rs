//! Hardware generation: compile a kernel, then produce the §VI artifacts —
//! configuration bitstream, configuration paths, and structural Verilog.
//!
//! Run with: `cargo run --release -p dsagen --example hardware_artifacts`

use dsagen::prelude::*;
use dsagen::hwgen::Bitstream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adg = dsagen::adg::presets::revel();
    let kernel = dsagen::workloads::dsp::cholesky();
    let compiled = dsagen::compile(&adg, &kernel, &CompileOptions::default())?;
    let hw = dsagen::generate(&adg, &compiled, 4, 42);

    println!("== bitstream ==");
    println!("configured components : {}", hw.bitstream.configs.len());
    println!("configuration words   : {}", hw.bitstream.word_count());
    println!("bytes on the wire     : {}", hw.bitstream.to_bytes().len());
    // Roundtrip through the on-wire format.
    let decoded = Bitstream::from_words(&hw.bitstream.to_words())?;
    assert_eq!(decoded, hw.bitstream);
    println!("roundtrip decode      : ok");

    println!("\n== configuration paths ==");
    let covered = hw.config_paths.covered().len();
    println!("paths                 : {}", hw.config_paths.paths.len());
    println!("components covered    : {covered}");
    println!(
        "longest path          : {} (ideal >= {})",
        hw.config_paths.longest(),
        dsagen::hwgen::ConfigPaths::ideal(covered, hw.config_paths.paths.len())
    );

    println!("\n== structural verilog ==");
    let lines = hw.verilog.lines().count();
    let instances = hw.verilog.matches("dsagen_pe #").count();
    println!("lines                 : {lines}");
    println!("PE instances          : {instances}");
    let path = std::env::temp_dir().join("dsagen_revel.v");
    std::fs::write(&path, &hw.verilog)?;
    println!("written to            : {}", path.display());

    println!("\n== graphviz ==");
    let dot_path = std::env::temp_dir().join("dsagen_revel.dot");
    std::fs::write(&dot_path, adg.to_dot())?;
    println!("ADG rendered to       : {}", dot_path.display());
    Ok(())
}
