//! Quickstart: compile a dense matrix multiply onto the Softbrain preset,
//! inspect the chosen version, and simulate it cycle by cycle.
//!
//! Run with: `cargo run --release -p dsagen --example quickstart`

use dsagen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a target accelerator: a 4×4 mesh of static dedicated PEs
    //    with a non-banked scratchpad (Softbrain, ISCA 2017).
    let adg = dsagen::adg::presets::softbrain();
    println!("target hardware : {adg}");
    let features = adg.features();
    println!(
        "features        : {} PEs, dynamic={}, shared={}, indirect-mem={}",
        features.total_pes(),
        features.has_dynamic_pes(),
        features.has_shared_pes(),
        features.indirect_memory
    );

    // 2. Pick a kernel: MachSuite's 64x64x64 matrix multiply.
    let kernel = dsagen::workloads::machsuite::mm();
    println!("kernel          : {} ({} regions)", kernel.name, kernel.regions.len());

    // 3. Compile: the modular compiler enumerates transformation
    //    configurations (vectorization degrees here — the kernel is dense),
    //    schedules each onto the fabric, and keeps the fastest legal one.
    let compiled = dsagen::compile(&adg, &kernel, &CompileOptions::default())?;
    println!(
        "chosen version  : unroll={} ({} candidates tried)",
        compiled.version.config.unroll, compiled.candidates_tried
    );
    println!(
        "schedule        : {} network hops, max II {:.2}",
        compiled.eval.hops, compiled.eval.max_ii
    );
    println!(
        "model estimate  : {:.0} cycles (IPC {:.2})",
        compiled.perf.cycles, compiled.perf.ipc
    );

    // 4. Simulate at cycle level and compare against the model.
    let report = dsagen::sim::simulate(
        &adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &dsagen::sim::SimConfig::default(),
    )
    .expect("quickstart schedule simulates");
    let err = (report.cycles as f64 - compiled.perf.cycles).abs() / report.cycles as f64;
    println!(
        "simulated       : {} cycles (IPC {:.2}), model error {:.1}%",
        report.cycles,
        report.ipc,
        100.0 * err
    );

    // 5. Estimate the hardware cost with the regression model.
    let cost = dsagen::model::AreaPowerModel::default().estimate_adg(&adg);
    println!(
        "hardware cost   : {:.3} mm^2, {:.0} mW (estimated)",
        cost.area_mm2, cost.power_mw
    );
    Ok(())
}
