//! A tour of the design space: instantiate every preset accelerator,
//! summarize its ISA-level features and modeled cost, and write each one
//! out in the diffable `.adg` textual format.
//!
//! Run with: `cargo run --release -p dsagen --example design_space_tour`

use dsagen::adg::{presets, text, Adg};
use dsagen::model::{synthesize_adg, AreaPowerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs: Vec<Adg> = vec![
        presets::cca(),
        presets::softbrain(),
        presets::maeri(),
        presets::triggered(),
        presets::spu(),
        presets::revel(),
        presets::diannao_tree(),
        presets::plasticine(),
        presets::tabla(),
        presets::dse_initial(),
    ];
    let model = AreaPowerModel::default();

    println!(
        "{:<12} {:>4} {:>4} {:>5} {:>4} {:>4} {:>4} {:>4} {:>9} {:>8}",
        "design", "PEs", "sw", "syncs", "dyn", "shr", "join", "ind", "area(mm2)", "mW"
    );
    println!("{}", "-".repeat(72));
    for adg in &designs {
        adg.validate()?;
        let f = adg.features();
        let est = model.estimate_adg(adg);
        println!(
            "{:<12} {:>4} {:>4} {:>5} {:>4} {:>4} {:>4} {:>4} {:>9.3} {:>8.0}",
            adg.name(),
            f.total_pes(),
            adg.switches().count(),
            adg.syncs().count(),
            if f.has_dynamic_pes() { "y" } else { "-" },
            if f.has_shared_pes() { "y" } else { "-" },
            if f.stream_join_pes > 0 { "y" } else { "-" },
            if f.indirect_memory { "y" } else { "-" },
            est.area_mm2,
            est.power_mw
        );
    }
    println!("{}", "-".repeat(72));

    // Write each design out in the textual format and verify roundtrip.
    let dir = std::env::temp_dir().join("dsagen_designs");
    std::fs::create_dir_all(&dir)?;
    for adg in &designs {
        let rendered = text::to_text(adg);
        let parsed = text::from_text(&rendered)?;
        assert_eq!(adg, &parsed, "{} must roundtrip", adg.name());
        let path = dir.join(format!("{}.adg", adg.name()));
        std::fs::write(&path, &rendered)?;
        println!("wrote {} ({} lines)", path.display(), rendered.lines().count());
    }

    // Where does Softbrain's area go?
    println!("\nsoftbrain area breakdown:");
    for (class, cost) in model.estimate_breakdown(&presets::softbrain()) {
        println!("  {:<8} {:>8.3} mm^2 {:>8.0} mW", class, cost.area_mm2, cost.power_mw);
    }

    // Sanity: "synthesis" agrees with the estimate to within a few percent.
    let soft = presets::softbrain();
    let est = model.estimate_adg(&soft);
    let syn = synthesize_adg(&soft);
    println!(
        "\nsoftbrain: estimated {:.3} mm^2 vs synthesized {:.3} mm^2 ({:.1}% gap)",
        est.area_mm2,
        syn.area_mm2,
        100.0 * (syn.area_mm2 - est.area_mm2) / syn.area_mm2
    );
    Ok(())
}
