//! Hardware/software codesign: explore the accelerator design space for
//! the DenseNN suite (convolution + pooling + classifier), starting from
//! the paper's 5×4 full-capability mesh (§VIII-B).
//!
//! Run with: `cargo run --release -p dsagen --example codesign_nn`

use dsagen::prelude::*;

fn main() {
    let initial = dsagen::adg::presets::dse_initial();
    let kernels = dsagen::workloads::suite_kernels(dsagen::workloads::Suite::DenseNN);
    println!(
        "initial hardware: {} ({} PEs)",
        initial,
        initial.features().total_pes()
    );
    println!("workloads: conv, pool, classifier (DenseNN suite)\n");

    let cfg = DseConfig {
        max_iters: 60,
        patience: 30,
        sched_iters: 60,
        max_unroll: 4,
        ..DseConfig::default()
    };
    let result = explore(initial, &kernels, cfg);

    println!("iter  area(mm^2)  power(mW)  objective   accepted");
    for rec in result.trace.iter().step_by(5) {
        println!(
            "{:>4}  {:>9.3}  {:>9.1}  {:>9.3}   {}",
            rec.iter, rec.area_mm2, rec.power_mw, rec.objective, rec.accepted
        );
    }

    println!(
        "\ninitial: {:.3} mm^2 / {:.1} mW, objective {:.3}",
        result.initial.cost.area_mm2, result.initial.cost.power_mw, result.initial.objective
    );
    println!(
        "final  : {:.3} mm^2 / {:.1} mW, objective {:.3}",
        result.best.cost.area_mm2, result.best.cost.power_mw, result.best.objective
    );
    println!(
        "saved {:.0}% area, improved the perf^2/mm^2 objective {:.1}x",
        100.0 * result.area_saving().max(0.0),
        result.objective_gain()
    );
    println!(
        "final design: {} PEs, {} switches",
        result.best_adg.pes().count(),
        result.best_adg.switches().count()
    );
}
